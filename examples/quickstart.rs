//! Quickstart: run VolcanoML end to end on a classification dataset.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use volcanoml_core::{SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::{train_test_split, Metric, Task};

fn main() {
    // 1. A dataset. Any `volcanoml_data::Dataset` works — load your own CSV
    //    via `volcanoml_data::csv::from_csv`, or synthesize one:
    let dataset = make_classification(
        &ClassificationSpec {
            n_samples: 600,
            n_features: 12,
            n_informative: 6,
            n_redundant: 2,
            n_classes: 3,
            class_sep: 1.0,
            flip_y: 0.03,
            weights: Vec::new(),
        },
        42,
    );
    let (train, test) = train_test_split(&dataset, 0.2, 0).expect("split");
    println!(
        "dataset: {} samples, {} features, {} classes",
        dataset.n_samples(),
        dataset.n_features(),
        dataset.n_classes
    );

    // 2. An engine. The default options use the paper's Figure 2 plan:
    //    condition on the algorithm, alternate FE vs HP, BO leaves.
    let engine = VolcanoML::with_tier(
        Task::Classification,
        SpaceTier::Medium,
        VolcanoMlOptions {
            max_evaluations: 40,
            seed: 7,
            ..Default::default()
        },
    );
    println!(
        "search space: {} hyper-parameters over {} algorithms",
        engine.space().len(),
        engine.space().algorithms.len()
    );

    // 3. Fit. The engine searches pipelines (imputation → encoding →
    //    rescaling → balancing → transformation → model) and refits the
    //    winner on all training data.
    let fitted = engine.fit(&train).expect("search succeeds");
    println!("\nexecution plan after the run:\n{}", fitted.report.plan_explain);
    println!(
        "search: {} evaluations, {:.2}s, best validation loss {:.4}",
        fitted.report.n_evaluations, fitted.report.total_cost, fitted.report.best_loss
    );

    // 4. Inspect the winning pipeline.
    let mut best: Vec<_> = fitted.report.best_assignment.iter().collect();
    best.sort_by(|a, b| a.0.cmp(b.0));
    println!("\nwinning configuration:");
    for (k, v) in best {
        println!("  {k} = {v:.4}");
    }

    // 5. Evaluate on held-out data.
    let accuracy = fitted
        .score(&test, Metric::BalancedAccuracy)
        .expect("scoring succeeds");
    println!("\ntest balanced accuracy: {accuracy:.4}");
}
