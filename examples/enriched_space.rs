//! Search-space enrichment (§5.3, Table 2): add the `smote_balancer`
//! operator to the balancing stage and watch it pay off on an imbalanced
//! dataset — the fine-grained enrichment auto-sklearn cannot accept.
//!
//! ```bash
//! cargo run --release --example enriched_space
//! ```

use volcanoml_core::{SpaceDef, VolcanoML, VolcanoMlOptions};
use volcanoml_data::repository::imbalanced_suite;
use volcanoml_data::{train_test_split, Metric, Task};
use volcanoml_fe::pipeline::FeSpaceOptions;

fn main() {
    let dataset = imbalanced_suite().into_iter().next().expect("suite non-empty");
    let (train, test) = train_test_split(&dataset, 0.2, 0).expect("split");
    println!(
        "{}: {} samples, imbalance ratio {:.1}",
        dataset.name,
        dataset.n_samples(),
        dataset.imbalance_ratio()
    );

    // Base space: the auto-sklearn-equivalent balancing stage
    // {none, oversample, undersample}.
    let base = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    // Enriched: one line adds SMOTE (plus its conditional k_neighbors
    // hyper-parameter) to the stage.
    let enriched = SpaceDef::enriched(
        Task::Classification,
        FeSpaceOptions {
            include_smote: true,
            embedding: None,
        },
    );
    println!(
        "base space: {} vars | enriched: {} vars (smote + smote_k)",
        base.len(),
        enriched.len()
    );

    for (name, space) in [("base", base), ("enriched (+smote)", enriched)] {
        let engine = VolcanoML::new(
            space,
            VolcanoMlOptions {
                max_evaluations: 40,
                seed: 9,
                ..Default::default()
            },
        );
        let fitted = engine.fit(&train).expect("search succeeds");
        let acc = fitted
            .score(&test, Metric::BalancedAccuracy)
            .expect("score");
        let balancer = fitted
            .report
            .best_assignment
            .get("fe:balancer")
            .map(|v| match v.round() as usize {
                1 => "oversample",
                2 => "undersample",
                3 => "smote",
                _ => "none",
            })
            .unwrap_or("?");
        println!(
            "  {name:<18} test balanced accuracy {acc:.4} (winner balancer: {balancer})"
        );
    }
}
