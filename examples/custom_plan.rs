//! Composing custom execution plans — the paper's headline abstraction.
//!
//! This example builds three different decompositions of the *same* search
//! space (Figure 1 of the paper), runs each under an identical evaluation
//! budget, and prints their plan trees and results side by side.
//!
//! ```bash
//! cargo run --release --example custom_plan
//! ```

use volcanoml_core::{
    EngineKind, PlanSpec, SpaceDef, SpaceTier, VarFilter, VolcanoML, VolcanoMlOptions,
};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::{train_test_split, Metric, Task};

fn main() {
    let dataset = make_classification(
        &ClassificationSpec {
            n_samples: 500,
            n_features: 10,
            n_informative: 5,
            n_redundant: 2,
            n_classes: 2,
            class_sep: 0.9,
            flip_y: 0.05,
            weights: Vec::new(),
        },
        5,
    );
    let (train, test) = train_test_split(&dataset, 0.2, 0).expect("split");
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
    println!(
        "space: {} hyper-parameters, {} algorithms\n",
        space.len(),
        space.algorithms.len()
    );

    // Plan A — what auto-sklearn does: one joint BO block over everything.
    let plan_a = PlanSpec::single_joint(EngineKind::Bo);

    // Plan B — the paper's Figure 2 plan.
    let plan_b = PlanSpec::volcano_default(EngineKind::Bo);

    // Plan C — a hand-rolled alternative: alternate the FE subspace against
    // a conditioning block over algorithms (each arm explored jointly).
    let plan_c = PlanSpec::Alternating {
        left_filter: VarFilter::Fe,
        left: Box::new(PlanSpec::Joint(EngineKind::Bo)),
        right: Box::new(PlanSpec::Conditioning {
            on: "algorithm".to_string(),
            child: Box::new(PlanSpec::Joint(EngineKind::Bo)),
        }),
    };

    for (name, plan) in [("A: joint (auto-sklearn style)", plan_a), ("B: Figure 2 (VolcanoML default)", plan_b), ("C: alternating FE | conditioning", plan_c)] {
        let engine = VolcanoML::new(
            space.clone(),
            VolcanoMlOptions {
                plan: plan.clone(),
                max_evaluations: 35,
                seed: 1,
                ..Default::default()
            },
        );
        let fitted = engine.fit(&train).expect("search succeeds");
        let acc = fitted
            .score(&test, Metric::BalancedAccuracy)
            .expect("score");
        println!("== Plan {name} ==");
        println!("  spec: {}", plan.render());
        println!(
            "  best validation loss {:.4} | test balanced accuracy {acc:.4}",
            fitted.report.best_loss
        );
        println!("  executed tree:\n{}", indent(&fitted.report.plan_explain, 4));
    }
}

fn indent(s: &str, by: usize) -> String {
    s.lines()
        .map(|l| format!("{}{l}", " ".repeat(by)))
        .collect::<Vec<_>>()
        .join("\n")
}
