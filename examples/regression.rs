//! Regression quickstart: search the regression zoo (ridge / lasso /
//! elastic-net / forests / boosting / k-NN / MLP) on a nonlinear task, then
//! compare against the best untuned single model.
//!
//! ```bash
//! cargo run --release --example regression
//! ```

use volcanoml_core::{SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::make_friedman1;
use volcanoml_data::{train_test_split, Metric, Task};
use volcanoml_models::{AlgorithmKind, Estimator};

fn main() {
    let dataset = make_friedman1(700, 4, 0.6, 11);
    let (train, test) = train_test_split(&dataset, 0.2, 0).expect("split");
    println!(
        "Friedman #1 with noise + nuisance features: n={}, d={}",
        dataset.n_samples(),
        dataset.n_features()
    );

    // Baseline: every regression algorithm with default hyper-parameters.
    println!("\nuntuned single models (test R²):");
    let mut best_default = f64::NEG_INFINITY;
    for kind in AlgorithmKind::for_task(Task::Regression) {
        let mut model = kind.build_default(0);
        if model.fit(&train.x, &train.y).is_err() {
            continue;
        }
        let Ok(preds) = model.predict(&test.x) else { continue };
        let r2 = volcanoml_data::metrics::r2(&test.y, &preds);
        best_default = best_default.max(r2);
        println!("  {:<18} {r2:.4}", kind.name());
    }

    // VolcanoML over the full regression space.
    let engine = VolcanoML::with_tier(
        Task::Regression,
        SpaceTier::Large,
        VolcanoMlOptions {
            max_evaluations: 50,
            seed: 3,
            ..Default::default()
        },
    );
    let fitted = engine.fit(&train).expect("search succeeds");
    let r2 = fitted.score(&test, Metric::R2).expect("scoring succeeds");
    println!(
        "\nVolcanoML ({} evaluations): test R² = {r2:.4} (best untuned: {best_default:.4})",
        fitted.report.n_evaluations
    );
    println!(
        "winning algorithm index: {}",
        fitted
            .report
            .best_assignment
            .get("algorithm")
            .copied()
            .unwrap_or(-1.0)
    );
}
