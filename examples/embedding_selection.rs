//! Embedding selection (§5.3, Figure 3): extend the FE pipeline with a
//! pre-trained-embedding stage and let VolcanoML pick the right backbone for
//! a vision-like task — the enrichment that lets the paper handle
//! dogs-vs-cats at 96.5% while auto-sklearn reaches 69.7% on raw pixels.
//!
//! ```bash
//! cargo run --release --example embedding_selection
//! ```

use volcanoml_core::{SpaceDef, VolcanoML, VolcanoMlOptions};
use volcanoml_data::repository::{vision_dataset, vision_dataset_seed};
use volcanoml_data::{train_test_split, Metric, Task};
use volcanoml_fe::pipeline::{EmbeddingOptions, FeSpaceOptions};

fn main() {
    let dataset = vision_dataset();
    let (train, test) = train_test_split(&dataset, 0.2, 0).expect("split");
    println!(
        "{}: {} images as {} raw pixels each",
        dataset.name,
        dataset.n_samples(),
        dataset.n_features()
    );

    // Without the embedding stage: raw pixels only.
    let raw_space = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    // With the stage: the search chooses among {none, matched backbone,
    // generic backbone} jointly with the rest of the FE pipeline (Figure 3).
    let enriched = SpaceDef::enriched(
        Task::Classification,
        FeSpaceOptions {
            include_smote: false,
            embedding: Some(EmbeddingOptions {
                dataset_seed: vision_dataset_seed(),
                n_latent: 8,
                generic_outputs: 16,
            }),
        },
    );

    for (name, space) in [("raw pixels", raw_space), ("with embedding stage", enriched)] {
        let engine = VolcanoML::new(
            space,
            VolcanoMlOptions {
                max_evaluations: 35,
                seed: 13,
                ..Default::default()
            },
        );
        let fitted = engine.fit(&train).expect("search succeeds");
        let acc = fitted
            .score(&test, Metric::BalancedAccuracy)
            .expect("score");
        let embedding = fitted
            .report
            .best_assignment
            .get("fe:embedding")
            .map(|v| match v.round() as usize {
                1 => "matched (domain pre-trained)",
                2 => "generic backbone",
                _ => "none",
            })
            .unwrap_or("stage absent");
        println!("  {name:<22} accuracy {acc:.4} | embedding choice: {embedding}");
    }
}
