#!/usr/bin/env bash
# The repository's CI gate, runnable locally. The workspace is hermetic
# (no crates.io dependencies), so everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build (release) =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== cargo clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "clippy not installed; skipping lint step"
fi

echo "== cargo bench --no-run (compile-check benches, incl. criterion shims) =="
cargo bench --no-run --offline --features volcanoml-bench/criterion-bench

echo "== smoke: parallel_scaling bench =="
VOLCANO_QUICK=1 cargo bench --offline --bench parallel_scaling

echo "== smoke: data_views bench (zero-copy vs copy baseline) =="
VOLCANO_QUICK=1 cargo bench --offline --bench data_views

echo "== smoke: cost_aware bench (EI-per-second time-to-target gate) =="
# Deterministic synthetic costs, so the ratio is exact: cost-aware search
# must reach the target loss at no more total cost than cost-blind.
VOLCANO_QUICK=1 cargo bench --offline --bench cost_aware
python3 - results/BENCH_cost.json <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))
r = b["cost_ratio"]
assert r <= 1.0, f"cost-aware time-to-target is {r:.2f}x cost-blind (> 1.0x)"
print(f"cost_aware smoke ok: {r:.2f}x cost-blind over {b['n_seeds']} seeds "
      f"(aware {b['cost_aware_total']:.0f}s vs blind {b['cost_blind_total']:.0f}s)")
EOF

echo "== smoke: space_growth bench (incremental space construction gate) =="
# Deterministic seeds: incremental construction must reach fixed-space
# quality within 1.05x the trials, and at least one expansion must have
# been journaled (the growth machinery actually engaged).
VOLCANO_QUICK=1 cargo bench --offline --bench space_growth
python3 - results/BENCH_space.json <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))
r = b["incremental_ratio"]
assert r <= 1.05, f"incremental trials-to-target is {r:.2f}x fixed (> 1.05x)"
assert b["expansions_total"] >= 1, "no journaled expansion across the bench seeds"
assert b["stage0_vars"] < b["full_vars"], \
    f"stage-0 must be smaller: {b['stage0_vars']} vs {b['full_vars']}"
print(f"space_growth smoke ok: {r:.2f}x fixed over {b['n_seeds']} seeds, "
      f"{b['expansions_total']} expansions, "
      f"stage0 {b['stage0_vars']} vars vs full {b['full_vars']}")
EOF

echo "== smoke: micro_models histogram-kernel report =="
# Quick mode skips the Criterion loops but still runs the timed report that
# re-emits results/BENCH_models.json (per-n_jobs rows, kernel comparison).
VOLCANO_QUICK=1 cargo bench --offline --bench micro_models \
    --features volcanoml-bench/criterion-bench
python3 - results/BENCH_models.json <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))
delta = abs(b["accuracy_delta"])
assert delta <= 0.01, f"histogram accuracy drifted {delta:.4f} from exact (> 0.01)"
f32_delta = abs(b["f32_accuracy_delta"])
assert f32_delta <= 0.01, f"f32 binning drifted {f32_delta:.4f} from f64 (> 0.01)"
ks = b["kernel_speedup"]
assert ks >= 1.0, f"flat kernel slower than the per-node baseline ({ks:.2f}x)"
j1, j4 = b["hist_fit_ms_n_jobs1"], b["hist_fit_ms_n_jobs4"]
assert j4 <= j1 * 1.15, f"n_jobs=4 slower than serial ({j4:.1f}ms vs {j1:.1f}ms)"
print(f"micro_models smoke ok: kernel_speedup {ks:.2f}x on {b['n_cpus']} cpu(s), "
      f"accuracy_delta {b['accuracy_delta']:+.4f}, "
      f"f32_accuracy_delta {b['f32_accuracy_delta']:+.4f}, "
      f"n_jobs4/serial {j4 / j1:.2f}")
EOF

echo "== smoke: traced fit + report =="
SMOKE_DIR="$(mktemp -d)"
# Kill any background servers/streams on the way out so a failed assertion
# can't leave a daemon spinning (or holding CI's stdout pipe open).
trap 'kill -9 $(jobs -p) 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
VOLCANOML=target/release/volcanoml
"$VOLCANOML" generate moons "$SMOKE_DIR/data.csv" --seed 7
"$VOLCANOML" fit "$SMOKE_DIR/data.csv" --evals 10 --tier small --workers 4 \
    --journal "$SMOKE_DIR/trials.jsonl" --trace "$SMOKE_DIR/trace.jsonl" \
    --metrics "$SMOKE_DIR/metrics.json"
"$VOLCANOML" report "$SMOKE_DIR/trace.jsonl" \
    --journal "$SMOKE_DIR/trials.jsonl" --metrics "$SMOKE_DIR/metrics.json"
# The zero-copy trial path must actually engage: full-view borrows show up
# as skipped gathers in the metrics snapshot.
python3 - "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
skipped = counters.get("data.gathers_skipped", 0)
assert skipped > 0, f"expected data.gathers_skipped > 0, got {skipped}"
print(f"zero-copy smoke ok: {skipped} gathers skipped, "
      f"{counters.get('data.bytes_gathered', 0)} bytes gathered")
EOF

echo "== smoke: incremental space construction (--space incremental) =="
# A permissive threshold so the plateau fires within the tiny budget; the
# journal must hold at least one expansion row and the report must render
# the growth timeline.
"$VOLCANOML" fit "$SMOKE_DIR/data.csv" --evals 24 --tier small --space incremental:10 \
    --journal "$SMOKE_DIR/grow.jsonl" --trace "$SMOKE_DIR/grow_trace.jsonl"
grep -q '"event":"expansion"' "$SMOKE_DIR/grow.jsonl" \
    || { echo "no journaled expansion in incremental fit"; exit 1; }
"$VOLCANOML" report "$SMOKE_DIR/grow_trace.jsonl" --journal "$SMOKE_DIR/grow.jsonl" \
    | grep -q "Space growth" \
    || { echo "report missing the space-growth section"; exit 1; }
echo "incremental smoke ok: journaled expansion present, report renders growth timeline"

echo "== smoke: pooled multi-fidelity fit (mfes-hb, 4 workers) =="
# Regression gate for the suggest_batch fallback: a pooled MFES-HB run must
# exercise at least two distinct sub-1.0 fidelities (the broken batch path
# collapsed every slot after the first to a random full-fidelity draw).
"$VOLCANOML" fit "$SMOKE_DIR/data.csv" --evals 24 --tier small \
    --engine mfes-hb --workers 4 --journal "$SMOKE_DIR/mfes.jsonl"
python3 - "$SMOKE_DIR/mfes.jsonl" <<'EOF'
import json, sys
sub_full = set()
rung_tagged = 0
for line in open(sys.argv[1]):
    row = json.loads(line)
    f = row["fidelity"]
    if isinstance(f, (int, float)) and f < 1.0 - 1e-9:
        sub_full.add(round(f, 6))
    if row.get("rung", -1) >= 0:
        rung_tagged += 1
assert len(sub_full) >= 2, f"expected >=2 distinct sub-1.0 fidelities, got {sorted(sub_full)}"
assert rung_tagged > 0, "no rung/bracket attribution in the journal"
print(f"mfes-hb smoke ok: sub-1.0 fidelities {sorted(sub_full)}, {rung_tagged} rung-tagged trials")
EOF

echo "== smoke: serve crash-resume (kill -9, restart --resume) =="
SERVE_DIR="$SMOKE_DIR/serve"
"$VOLCANOML" serve --dir "$SERVE_DIR" --port 0 --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SERVE_DIR/serve.addr" ] && break
    sleep 0.1
done
ADDR="$(cat "$SERVE_DIR/serve.addr")"
# Submit a study and wait until its journal holds a few rows, then kill -9
# mid-run: the restarted server must resume it from the journal alone.
python3 - "$ADDR" <<'EOF'
import http.client, json, sys
c = http.client.HTTPConnection(sys.argv[1], timeout=10)
c.request("POST", "/studies", json.dumps({
    "name": "smoke", "dataset": "moons", "engine": "mfes-hb",
    "max_evaluations": 80, "seed": 11}))
r = c.getresponse()
assert r.status == 201, (r.status, r.read())
EOF
JOURNAL="$SERVE_DIR/smoke/journal.jsonl"
for _ in $(seq 1 300); do
    ROWS=$(grep -c '"schema"' "$JOURNAL" 2>/dev/null || true)
    [ "${ROWS:-0}" -ge 3 ] && break
    sleep 0.1
done
[ "${ROWS:-0}" -ge 3 ] || { echo "study never journaled rows"; exit 1; }
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
[ ! -f "$SERVE_DIR/smoke/result.json" ] || { echo "kill -9 arrived too late (study already finished); tune the smoke"; exit 1; }
"$VOLCANOML" serve --dir "$SERVE_DIR" --port 0 --workers 2 --resume &
SERVE_PID=$!
for _ in $(seq 1 600); do
    [ -f "$SERVE_DIR/smoke/result.json" ] && break
    sleep 0.1
done
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
# The resumed study must complete with unique trial ids and a best loss
# that only ever improves along the journal.
python3 - "$SERVE_DIR/smoke" <<'EOF'
import json, sys
d = sys.argv[1]
result = json.load(open(f"{d}/result.json"))
assert result["status"] == "done", result
ids, best, best_seen = [], float("inf"), []
for line in open(f"{d}/journal.jsonl"):
    row = json.loads(line)
    ids.append(row["trial"])
    loss = row["loss"]
    if isinstance(loss, (int, float)) and row["fidelity"] >= 1.0 - 1e-9:
        best = min(best, loss)
        best_seen.append(best)
assert len(ids) == len(set(ids)), "duplicate trial ids after crash-resume"
assert all(a >= b for a, b in zip(best_seen, best_seen[1:])), "best loss regressed"
print(f"crash-resume smoke ok: {len(ids)} trials, unique ids, best loss {best:.4f}")
EOF

echo "== smoke: cost-aware study via serve (objective loss_and_cost) =="
COST_DIR="$SMOKE_DIR/costserve"
"$VOLCANOML" serve --dir "$COST_DIR" --port 0 --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$COST_DIR/serve.addr" ] && break
    sleep 0.1
done
ADDR="$(cat "$COST_DIR/serve.addr")"
curl -fsS -X POST "http://$ADDR/studies" -d \
    '{"name":"costaware","dataset":"moons","engine":"bo","max_evaluations":12,"seed":5,"cost_aware":true,"objective":"loss_and_cost","latency_weight":50.0}' \
    >/dev/null
for _ in $(seq 1 600); do
    [ -f "$COST_DIR/costaware/result.json" ] && break
    sleep 0.1
done
[ -f "$COST_DIR/costaware/result.json" ] || { echo "cost-aware study did not finish"; exit 1; }
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
# The spec must round-trip the cost fields (they drive resume), the study
# must complete, and every fresh journal row must carry a real cost the
# cost model can learn from.
python3 - "$COST_DIR/costaware" <<'EOF'
import json, sys
d = sys.argv[1]
spec = json.load(open(f"{d}/spec.json"))
assert spec.get("cost_aware") is True, spec
assert spec.get("objective") == "loss_and_cost", spec
assert spec.get("latency_weight") == 50.0, spec
result = json.load(open(f"{d}/result.json"))
assert result["status"] == "done", result
costs = [row["cost"] for row in map(json.loads, open(f"{d}/journal.jsonl"))]
assert any(c > 0 for c in costs), "no journal row recorded a positive trial cost"
print(f"cost-aware serve smoke ok: {len(costs)} trials, best loss {result['best_loss']:.4f}")
EOF

echo "== smoke: live observability (/metrics scrape + SSE stream mid-run) =="
OBS_DIR="$SMOKE_DIR/obsserve"
"$VOLCANOML" serve --dir "$OBS_DIR" --port 0 --workers 2 --log-requests &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$OBS_DIR/serve.addr" ] && break
    sleep 0.1
done
ADDR="$(cat "$OBS_DIR/serve.addr")"
# mfes-hb like the crash-resume smoke: long enough for a mid-run window.
# (Any engine terminates now even when the tier's distinct-config space is
# smaller than the budget — the evaluator's cached-saturation guard ends
# exhausted searches; see exhausted_tiny_space_terminates_instead_of_spinning.)
# An 8000-row dataset (vs the 500-row synthetic toys) keeps per-trial cost
# well above the fixed per-trial recording cost, so the 1% overhead gate
# below measures a real ratio instead of noise around sub-millisecond trials.
python3 - "$SMOKE_DIR/obs_data.csv" <<'EOF'
import random, sys
rng = random.Random(13)
with open(sys.argv[1], "w") as f:
    cols = [f"f{i}" for i in range(12)]
    f.write("#types:" + ",".join(["n"] * 12) + ",label\n")
    f.write(",".join(cols) + ",target\n")
    for _ in range(8000):
        y = rng.randint(0, 1)
        row = [rng.gauss(0.9 if (y and i < 6) else 0.0, 1.0) for i in range(12)]
        f.write(",".join(f"{v:.6f}" for v in row) + f",{y}\n")
EOF
curl -fsS -X POST "http://$ADDR/studies" -d \
    "{\"name\":\"obs\",\"csv\":\"$SMOKE_DIR/obs_data.csv\",\"engine\":\"mfes-hb\",\"max_evaluations\":60,\"seed\":13}" \
    >/dev/null
# Stream the study's event feed in the background while it runs.
STREAM="$SMOKE_DIR/obs_events.txt"
curl -sN --max-time 120 "http://$ADDR/studies/obs/events" > "$STREAM" &
CURL_PID=$!
# Mid-run: the stream must yield at least one TrialFinished BEFORE the study
# writes its terminal result.json.
TRIAL_SEEN=0
for _ in $(seq 1 600); do
    if grep -q "event: TrialFinished" "$STREAM" 2>/dev/null; then
        [ ! -f "$OBS_DIR/obs/result.json" ] && TRIAL_SEEN=1
        break
    fi
    sleep 0.05
done
[ "$TRIAL_SEEN" -eq 1 ] || { echo "stream yielded no TrialFinished before completion"; exit 1; }
# Mid-run scrape: must be valid Prometheus exposition with live trial counters.
curl -fsS "http://$ADDR/metrics" > "$SMOKE_DIR/obs_scrape.txt"
python3 - "$SMOKE_DIR/obs_scrape.txt" <<'EOF'
import re, sys
line_re = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$')
trials = 0.0
names = set()
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line or line.startswith("#"):
        continue
    assert line_re.match(line), f"invalid exposition line: {line!r}"
    name = line.split("{")[0].split(" ")[0]
    names.add(name)
    if line.startswith('volcanoml_trial_total{study="obs"}'):
        trials = float(line.rsplit(" ", 1)[1])
assert trials > 0, "mid-run scrape shows no finished trials for study obs"
for want in ("volcanoml_serve_pool_workers", "volcanoml_serve_uptime_seconds",
             "volcanoml_http_requests_total"):
    assert want in names, f"scrape missing {want}"
print(f"observability scrape ok: {trials:.0f} trials mid-run, {len(names)} series families")
EOF
for _ in $(seq 1 1200); do
    [ -f "$OBS_DIR/obs/result.json" ] && break
    sleep 0.1
done
[ -f "$OBS_DIR/obs/result.json" ] || { echo "observability study did not finish"; exit 1; }
wait "$CURL_PID" 2>/dev/null || true
grep -q "event: StudyDone" "$STREAM" || { echo "stream missed terminal StudyDone"; exit 1; }
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
# The observability plane must prove its own cost: time spent recording
# metrics/traces/events stays within ~1% of total trial wall time.
python3 - "$OBS_DIR/obs/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
overhead = m["histograms"]["obs.self_overhead_s"]["sum"]
total = m["gauges"]["run.total_cost_s"]
assert total > 0, f"no trial time recorded: {total}"
budget = max(0.01 * total, 0.002)  # 1%, with a tiny floor for sub-second runs
assert overhead <= budget, \
    f"observability overhead {overhead * 1e3:.3f}ms exceeds budget {budget * 1e3:.3f}ms ({total:.3f}s of trials)"
print(f"overhead smoke ok: {overhead * 1e3:.3f}ms of accounting over {total:.3f}s of trials "
      f"({100 * overhead / total:.3f}%)")
EOF

echo "CI checks passed."
