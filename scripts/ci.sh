#!/usr/bin/env bash
# The repository's CI gate, runnable locally. The workspace is hermetic
# (no crates.io dependencies), so everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build (release) =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== cargo clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "clippy not installed; skipping lint step"
fi

echo "== cargo bench --no-run (compile-check benches, incl. criterion shims) =="
cargo bench --no-run --offline --features volcanoml-bench/criterion-bench

echo "== smoke: parallel_scaling bench =="
VOLCANO_QUICK=1 cargo bench --offline --bench parallel_scaling

echo "== smoke: data_views bench (zero-copy vs copy baseline) =="
VOLCANO_QUICK=1 cargo bench --offline --bench data_views

echo "== smoke: traced fit + report =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
VOLCANOML=target/release/volcanoml
"$VOLCANOML" generate moons "$SMOKE_DIR/data.csv" --seed 7
"$VOLCANOML" fit "$SMOKE_DIR/data.csv" --evals 10 --tier small --workers 4 \
    --journal "$SMOKE_DIR/trials.jsonl" --trace "$SMOKE_DIR/trace.jsonl" \
    --metrics "$SMOKE_DIR/metrics.json"
"$VOLCANOML" report "$SMOKE_DIR/trace.jsonl" \
    --journal "$SMOKE_DIR/trials.jsonl" --metrics "$SMOKE_DIR/metrics.json"
# The zero-copy trial path must actually engage: full-view borrows show up
# as skipped gathers in the metrics snapshot.
python3 - "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
skipped = counters.get("data.gathers_skipped", 0)
assert skipped > 0, f"expected data.gathers_skipped > 0, got {skipped}"
print(f"zero-copy smoke ok: {skipped} gathers skipped, "
      f"{counters.get('data.bytes_gathered', 0)} bytes gathered")
EOF

echo "== smoke: pooled multi-fidelity fit (mfes-hb, 4 workers) =="
# Regression gate for the suggest_batch fallback: a pooled MFES-HB run must
# exercise at least two distinct sub-1.0 fidelities (the broken batch path
# collapsed every slot after the first to a random full-fidelity draw).
"$VOLCANOML" fit "$SMOKE_DIR/data.csv" --evals 24 --tier small \
    --engine mfes-hb --workers 4 --journal "$SMOKE_DIR/mfes.jsonl"
python3 - "$SMOKE_DIR/mfes.jsonl" <<'EOF'
import json, sys
sub_full = set()
rung_tagged = 0
for line in open(sys.argv[1]):
    row = json.loads(line)
    f = row["fidelity"]
    if isinstance(f, (int, float)) and f < 1.0 - 1e-9:
        sub_full.add(round(f, 6))
    if row.get("rung", -1) >= 0:
        rung_tagged += 1
assert len(sub_full) >= 2, f"expected >=2 distinct sub-1.0 fidelities, got {sorted(sub_full)}"
assert rung_tagged > 0, "no rung/bracket attribution in the journal"
print(f"mfes-hb smoke ok: sub-1.0 fidelities {sorted(sub_full)}, {rung_tagged} rung-tagged trials")
EOF

echo "CI checks passed."
