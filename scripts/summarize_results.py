#!/usr/bin/env python3
"""Extracts the measured-results summary from bench_output.txt and the
results/ CSVs, printing a markdown fragment for EXPERIMENTS.md.

Usage: python3 scripts/summarize_results.py [bench_output.txt]
"""
import csv
import io
import os
import re
import sys


def section(title):
    print(f"\n### {title}\n")


def table_from_csv(path, max_rows=None):
    if not os.path.exists(path):
        print(f"_{os.path.basename(path)} not found — run the bench first._")
        return
    with open(path) as f:
        rows = list(csv.reader(f))
    if not rows:
        return
    header, body = rows[0], rows[1:]
    if max_rows:
        body = body[:max_rows]
    print("| " + " | ".join(header) + " |")
    print("|" + "---|" * len(header))
    for r in body:
        print("| " + " | ".join(r) + " |")


def main():
    out = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    text = open(out).read() if os.path.exists(out) else ""

    section("Table 1 — average ranks")
    table_from_csv("results/table1_avg_ranks.csv")

    section("Figure 4 — win counts")
    for m in re.finditer(r"(CLS|REG): VolcanoML- beats .*", text):
        print("- " + m.group(0))

    section("Figure 5 — final test errors (large datasets)")
    table_from_csv("results/figure5_final.csv")

    section("Figure 6 — vs platforms")
    for m in re.finditer(r"VolcanoML- matches or beats a platform in .*", text):
        print("- " + m.group(0))
    table_from_csv("results/figure6_final.csv", max_rows=10)

    section("Table 2 — SMOTE enrichment")
    table_from_csv("results/table2_smote.csv")

    section("Embedding selection")
    table_from_csv("results/embedding_selection.csv")
    for m in re.finditer(r"VolcanoML- selected embedding: .*", text):
        print("- " + m.group(0))

    section("Plan study")
    table_from_csv("results/plans_ablation_ranks.csv")

    section("Blocks ablation (MEAN row)")
    path = "results/blocks_ablation.csv"
    if os.path.exists(path):
        rows = list(csv.reader(open(path)))
        print("| " + " | ".join(rows[0]) + " |")
        print("|" + "---|" * len(rows[0]))
        for r in rows[1:]:
            if r and r[0] == "MEAN":
                print("| " + " | ".join(r) + " |")


if __name__ == "__main__":
    main()
