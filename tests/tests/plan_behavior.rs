//! Integration tests for execution-plan behavior across crates: the
//! decomposition claims that motivate the paper.

use volcanoml_core::evaluator::Evaluator;
use volcanoml_core::plans::{build_figure2_tree, enumerate_coarse_plans};
use volcanoml_core::{EngineKind, SpaceDef, SpaceTier};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::{Metric, Task};

fn dataset(seed: u64) -> volcanoml_data::Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: 300,
            n_features: 10,
            n_informative: 6,
            n_redundant: 0,
            n_classes: 2,
            class_sep: 1.0,
            flip_y: 0.05,
            weights: Vec::new(),
        },
        seed,
    )
}

#[test]
fn every_coarse_plan_runs_on_the_large_space() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Large);
    let d = dataset(1);
    for (name, plan) in enumerate_coarse_plans(EngineKind::Bo) {
        let evaluator =
            Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 0).unwrap();
        let mut root = plan.compile(&space, 0).unwrap_or_else(|e| panic!("{name}: {e}"));
        for _ in 0..15 {
            root.do_next(&evaluator).unwrap();
        }
        let best = root
            .current_best()
            .unwrap_or_else(|| panic!("{name} found nothing"));
        assert!(best.loss.is_finite(), "{name}");
        // Every plan's winner must be a *complete* pipeline description.
        assert!(best.assignment.contains_key("algorithm"), "{name}");
    }
}

#[test]
fn figure2_tree_matches_compiled_plan_behavior() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let d = dataset(2);
    // Hand-built tree with both features on...
    let ev1 = Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 3).unwrap();
    let mut hand = build_figure2_tree(&space, EngineKind::Bo, true, true, 3).unwrap();
    for _ in 0..20 {
        hand.do_next(&ev1).unwrap();
    }
    // ...solves the problem about as well as the compiled plan (not
    // identical RNG streams, so compare only success).
    let ev2 = Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 3).unwrap();
    let mut compiled = volcanoml_core::PlanSpec::volcano_default(EngineKind::Bo)
        .compile(&space, 3)
        .unwrap();
    for _ in 0..20 {
        compiled.do_next(&ev2).unwrap();
    }
    let h = hand.current_best().unwrap().loss;
    let c = compiled.current_best().unwrap().loss;
    assert!(h.is_finite() && c.is_finite());
    assert!((h - c).abs() < 0.35, "hand {h} vs compiled {c}");
}

#[test]
fn conditioning_block_eventually_focuses_budget() {
    // On a dataset where one algorithm family clearly dominates, elimination
    // should retire at least one arm within a moderate budget.
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let d = volcanoml_data::synthetic::make_circles(350, 0.05, 0.5, 5);
    let evaluator = Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 0).unwrap();
    let mut root = build_figure2_tree(&space, EngineKind::Bo, true, true, 0).unwrap();
    for _ in 0..45 {
        root.do_next(&evaluator).unwrap();
    }
    let mut description = String::new();
    root.describe(0, &mut description);
    // kNN (index 2) dominates circles; logistic cannot exceed chance.
    // At minimum the search must have found a strong pipeline.
    let best = root.current_best().unwrap();
    assert!(best.loss < 0.2, "loss {} on circles\n{description}", best.loss);
}

#[test]
fn deeper_decomposition_is_no_worse_on_large_space() {
    // The paper's scalability claim, in miniature: on the large space with a
    // modest budget, the Figure 2 plan should not lose badly to a single
    // joint block. (Run over 3 datasets to damp noise.)
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Large);
    let budget = 45;
    let mut volcano_total = 0.0;
    let mut joint_total = 0.0;
    for seed in 0..3u64 {
        let d = dataset(20 + seed);
        let ev1 =
            Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, seed).unwrap();
        let mut volcano = volcanoml_core::PlanSpec::volcano_default(EngineKind::Bo)
            .compile(&space, seed)
            .unwrap();
        while ev1.evaluations() < budget {
            volcano.do_next(&ev1).unwrap();
        }
        volcano_total += volcano.current_best().unwrap().loss;

        let ev2 =
            Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, seed).unwrap();
        let mut joint = volcanoml_core::PlanSpec::single_joint(EngineKind::Bo)
            .compile(&space, seed)
            .unwrap();
        while ev2.evaluations() < budget {
            joint.do_next(&ev2).unwrap();
        }
        joint_total += joint.current_best().unwrap().loss;
    }
    assert!(
        volcano_total <= joint_total + 0.15,
        "volcano {volcano_total} vs joint {joint_total}"
    );
}
