//! Property-based tests (proptest) over cross-crate invariants.

use proptest::prelude::*;
use std::collections::HashMap;
use volcanoml_bo::{ConfigSpace, Domain};
use volcanoml_core::{SpaceDef, SpaceTier};
use volcanoml_data::metrics::{balanced_accuracy, mse, r2};
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_data::Task;
use volcanoml_fe::scale::{Rescaler, ScaleKind};
use volcanoml_fe::Transformer;
use volcanoml_linalg::{solve_spd, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cholesky-based SPD solves always reproduce the right-hand side.
    #[test]
    fn spd_solve_residual_is_small(values in prop::collection::vec(-3.0f64..3.0, 9), rhs in prop::collection::vec(-5.0f64..5.0, 3)) {
        let b = Matrix::from_vec(3, 3, values).unwrap();
        let mut a = b.gram();
        for i in 0..3 {
            let v = a.get(i, i) + 1.0;
            a.set(i, i, v);
        }
        let x = solve_spd(&a, &rhs, 0.0).unwrap();
        let back = a.matvec(&x).unwrap();
        for (got, want) in back.iter().zip(rhs.iter()) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    /// Balanced accuracy is bounded and exact on perfect predictions.
    #[test]
    fn balanced_accuracy_bounds(labels in prop::collection::vec(0u8..4, 5..60)) {
        let y: Vec<f64> = labels.iter().map(|&v| v as f64).collect();
        prop_assert_eq!(balanced_accuracy(&y, &y), 1.0);
        let wrong: Vec<f64> = y.iter().map(|v| (v + 1.0) % 4.0).collect();
        let acc = balanced_accuracy(&y, &wrong);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// R² of perfect predictions is 1; MSE nonnegative.
    #[test]
    fn regression_metric_sanity(y in prop::collection::vec(-100.0f64..100.0, 3..50), noise in prop::collection::vec(-1.0f64..1.0, 50)) {
        prop_assert!((r2(&y, &y) - 1.0).abs() < 1e-9);
        let preds: Vec<f64> = y.iter().zip(noise.iter().cycle()).map(|(a, b)| a + b).collect();
        prop_assert!(mse(&y, &preds) >= 0.0);
    }

    /// Every sampled configuration of every tier validates, encodes into
    /// [-1, 1], and round-trips through from_map.
    #[test]
    fn config_space_sampling_invariants(seed in 0u64..500) {
        let def = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
        let space = def.compile_subspace(&def.var_names(), &HashMap::new()).unwrap();
        let mut rng = rng_from_seed(seed);
        let cfg = space.sample(&mut rng);
        space.validate(&cfg).unwrap();
        let enc = space.encode(&cfg);
        prop_assert!(enc.iter().all(|&v| v == -1.0 || (0.0..=1.0).contains(&v)));
        let map = space.to_map(&cfg);
        let back = space.from_map(&map);
        space.validate(&back).unwrap();
        // Round-trip preserves active values.
        for (a, b) in cfg.values.iter().zip(back.values.iter()) {
            match (a, b) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false, "activity pattern changed"),
            }
        }
    }

    /// Neighbor moves always stay inside the space.
    #[test]
    fn neighbors_stay_valid(seed in 0u64..200) {
        let mut space = ConfigSpace::new();
        let parent = space.add("p", Domain::Cat { n: 3 }, 0.0).unwrap();
        space
            .add_conditional(
                "child",
                Domain::Float { lo: 0.1, hi: 10.0, log: true },
                1.0,
                Some(volcanoml_bo::Condition { parent, values: vec![1, 2] }),
            )
            .unwrap();
        space.add("x", Domain::Int { lo: -5, hi: 5, log: false }, 0.0).unwrap();
        let mut rng = rng_from_seed(seed);
        let mut cfg = space.sample(&mut rng);
        for _ in 0..20 {
            cfg = space.neighbor(&cfg, &mut rng);
            space.validate(&cfg).unwrap();
        }
    }

    /// Rescalers produce finite output on arbitrary finite input and are
    /// width-preserving.
    #[test]
    fn rescalers_are_total(rows in prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 3), 4..40)) {
        let x = Matrix::from_rows(&rows).unwrap();
        for kind in [
            ScaleKind::None,
            ScaleKind::Standard,
            ScaleKind::MinMax,
            ScaleKind::Robust,
            ScaleKind::Normalizer,
            ScaleKind::Quantile { n_quantiles: 10 },
        ] {
            let mut s = Rescaler::new(kind);
            let out = s.fit_transform(&x, &[]).unwrap();
            prop_assert_eq!(out.shape(), x.shape());
            prop_assert!(out.data().iter().all(|v| v.is_finite()));
        }
    }

    /// Rank computation: a permutation of distinct losses gets ranks 1..n.
    #[test]
    fn rank_of_distinct_losses_is_a_permutation(n in 2usize..10, seed in 0u64..100) {
        let mut rng = rng_from_seed(seed);
        let perm = volcanoml_data::rand_util::permutation(&mut rng, n);
        let losses: Vec<f64> = perm.iter().map(|&p| p as f64 * 0.1).collect();
        let ranks = volcanoml_bench_rank(&losses);
        let mut sorted = ranks.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, r) in sorted.iter().enumerate() {
            prop_assert!((r - (i + 1) as f64).abs() < 1e-12);
        }
    }
}

/// Local re-implementation of the bench crate's rank function (the bench
/// crate is not a dependency of the integration tests; keeping the property
/// here guards the algorithm via duplication-as-specification).
fn volcanoml_bench_rank(losses: &[f64]) -> Vec<f64> {
    let n = losses.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| losses[a].partial_cmp(&losses[b]).unwrap());
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (losses[idx[j + 1]] - losses[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}
