//! Property-style tests over cross-crate invariants.
//!
//! Formerly written with `proptest`; the external dependency was dropped to
//! keep the tier-1 build hermetic, so each property is now exercised as a
//! deterministic sweep over seeded random inputs (same invariants, fixed
//! case counts, reproducible failures).

use rand::RngExt;
use std::collections::HashMap;
use volcanoml_bo::{ConfigSpace, Domain};
use volcanoml_core::{SpaceDef, SpaceTier};
use volcanoml_data::metrics::{balanced_accuracy, mse, r2};
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_data::Task;
use volcanoml_fe::scale::{Rescaler, ScaleKind};
use volcanoml_fe::Transformer;
use volcanoml_linalg::{solve_spd, Matrix};

/// Cholesky-based SPD solves always reproduce the right-hand side.
#[test]
fn spd_solve_residual_is_small() {
    for seed in 0..64u64 {
        let mut rng = rng_from_seed(seed);
        let values: Vec<f64> = (0..9).map(|_| rng.random::<f64>() * 6.0 - 3.0).collect();
        let rhs: Vec<f64> = (0..3).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect();
        let b = Matrix::from_vec(3, 3, values).unwrap();
        let mut a = b.gram();
        for i in 0..3 {
            let v = a.get(i, i) + 1.0;
            a.set(i, i, v);
        }
        let x = solve_spd(&a, &rhs, 0.0).unwrap();
        let back = a.matvec(&x).unwrap();
        for (got, want) in back.iter().zip(rhs.iter()) {
            assert!((got - want).abs() < 1e-6, "seed {seed}: {got} vs {want}");
        }
    }
}

/// Balanced accuracy is bounded and exact on perfect predictions.
#[test]
fn balanced_accuracy_bounds() {
    for seed in 0..64u64 {
        let mut rng = rng_from_seed(seed ^ 0xba1a);
        let n = rng.random_range(5..60usize);
        let y: Vec<f64> = (0..n).map(|_| rng.random_range(0..4usize) as f64).collect();
        assert_eq!(balanced_accuracy(&y, &y), 1.0);
        let wrong: Vec<f64> = y.iter().map(|v| (v + 1.0) % 4.0).collect();
        let acc = balanced_accuracy(&y, &wrong);
        assert!((0.0..=1.0).contains(&acc), "seed {seed}: acc {acc}");
    }
}

/// R² of perfect predictions is 1; MSE nonnegative.
#[test]
fn regression_metric_sanity() {
    for seed in 0..64u64 {
        let mut rng = rng_from_seed(seed ^ 0x4e6);
        let n = rng.random_range(3..50usize);
        let y: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 200.0 - 100.0).collect();
        assert!((r2(&y, &y) - 1.0).abs() < 1e-9, "seed {seed}");
        let preds: Vec<f64> = y
            .iter()
            .map(|a| a + rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        assert!(mse(&y, &preds) >= 0.0, "seed {seed}");
    }
}

/// Every sampled configuration of the medium tier validates, encodes into
/// `[-1, 1]`, and round-trips through `from_map`.
#[test]
fn config_space_sampling_invariants() {
    let def = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
    let space = def
        .compile_subspace(&def.var_names(), &HashMap::new())
        .unwrap();
    for seed in 0..200u64 {
        let mut rng = rng_from_seed(seed);
        let cfg = space.sample(&mut rng);
        space.validate(&cfg).unwrap();
        let enc = space.encode(&cfg);
        assert!(
            enc.iter().all(|&v| v == -1.0 || (0.0..=1.0).contains(&v)),
            "seed {seed}: encoding out of range"
        );
        let map = space.to_map(&cfg);
        let back = space.from_map(&map);
        space.validate(&back).unwrap();
        // Round-trip preserves active values.
        for (a, b) in cfg.values.iter().zip(back.values.iter()) {
            match (a, b) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "seed {seed}"),
                (None, None) => {}
                _ => panic!("seed {seed}: activity pattern changed"),
            }
        }
    }
}

/// Neighbor moves always stay inside the space.
#[test]
fn neighbors_stay_valid() {
    let mut space = ConfigSpace::new();
    let parent = space.add("p", Domain::Cat { n: 3 }, 0.0).unwrap();
    space
        .add_conditional(
            "child",
            Domain::Float {
                lo: 0.1,
                hi: 10.0,
                log: true,
            },
            1.0,
            Some(volcanoml_bo::Condition {
                parent,
                values: vec![1, 2],
            }),
        )
        .unwrap();
    space
        .add(
            "x",
            Domain::Int {
                lo: -5,
                hi: 5,
                log: false,
            },
            0.0,
        )
        .unwrap();
    for seed in 0..100u64 {
        let mut rng = rng_from_seed(seed);
        let mut cfg = space.sample(&mut rng);
        for _ in 0..20 {
            cfg = space.neighbor(&cfg, &mut rng);
            space.validate(&cfg).unwrap();
        }
    }
}

/// Rescalers produce finite output on arbitrary finite input and are
/// shape-preserving.
#[test]
fn rescalers_are_total() {
    for seed in 0..24u64 {
        let mut rng = rng_from_seed(seed ^ 0x5ca1e);
        let n_rows = rng.random_range(4..40usize);
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| {
                (0..3)
                    .map(|_| rng.random::<f64>() * 2e4 - 1e4)
                    .collect()
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        for kind in [
            ScaleKind::None,
            ScaleKind::Standard,
            ScaleKind::MinMax,
            ScaleKind::Robust,
            ScaleKind::Normalizer,
            ScaleKind::Quantile { n_quantiles: 10 },
        ] {
            let mut s = Rescaler::new(kind);
            let out = s.fit_transform(&x, &[]).unwrap();
            assert_eq!(out.shape(), x.shape(), "seed {seed}");
            assert!(
                out.data().iter().all(|v| v.is_finite()),
                "seed {seed}: non-finite output"
            );
        }
    }
}

/// Rank computation: a permutation of distinct losses gets ranks 1..n.
#[test]
fn rank_of_distinct_losses_is_a_permutation() {
    for seed in 0..100u64 {
        let mut rng = rng_from_seed(seed);
        let n = rng.random_range(2..10usize);
        let perm = volcanoml_data::rand_util::permutation(&mut rng, n);
        let losses: Vec<f64> = perm.iter().map(|&p| p as f64 * 0.1).collect();
        let ranks = volcanoml_bench_rank(&losses);
        let mut sorted = ranks.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, r) in sorted.iter().enumerate() {
            assert!(
                (r - (i + 1) as f64).abs() < 1e-12,
                "seed {seed}: rank {r} at {i}"
            );
        }
    }
}

/// Local re-implementation of the bench crate's rank function (the bench
/// crate is not a dependency of the integration tests; keeping the property
/// here guards the algorithm via duplication-as-specification).
fn volcanoml_bench_rank(losses: &[f64]) -> Vec<f64> {
    let n = losses.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| losses[a].partial_cmp(&losses[b]).unwrap());
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (losses[idx[j + 1]] - losses[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}
