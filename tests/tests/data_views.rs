//! Equivalence tests for the zero-copy dataset-view refactor.
//!
//! The evaluator now moves trial data as [`DatasetView`]s (shared storage +
//! row-index views) instead of owned per-trial copies. These tests replicate
//! the old copy-based evaluation path by hand — owned `train_test_split` /
//! `subsample` / fold `subset` datasets fed straight into the FE pipeline
//! and model — and assert the view-based [`Evaluator`] produces bitwise
//! identical losses across {holdout, CV} × fidelities {0.25, 0.5, 1.0}.

use std::collections::HashMap;
use volcanoml_core::evaluator::parse_assignment;
use volcanoml_core::{Evaluator, SpaceDef, SpaceTier, ValidationStrategy};
use volcanoml_data::split::subsample;
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::{
    train_test_split, Dataset, DatasetView, KFold, Metric, StratifiedKFold, Task,
};
use volcanoml_fe::FePipeline;
use volcanoml_models::Estimator;

const SEED: u64 = 3;
const FIDELITIES: [f64; 3] = [0.25, 0.5, 1.0];

fn dataset() -> Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: 320,
            n_features: 8,
            n_informative: 5,
            n_redundant: 1,
            n_classes: 3,
            class_sep: 1.4,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        29,
    )
}

/// A handful of assignments spanning algorithms and an FE variation.
fn assignments(space: &SpaceDef) -> Vec<HashMap<String, f64>> {
    let mut out = Vec::new();
    for alg in 0..space.algorithms.len().min(3) {
        let mut a = space.defaults();
        a.insert("algorithm".to_string(), alg as f64);
        out.push(a);
    }
    let mut scaled = space.defaults();
    if let Some(r) = scaled.get_mut("fe:rescaler") {
        *r = if *r == 1.0 { 2.0 } else { 1.0 };
    }
    out.push(scaled);
    out
}

/// The pre-view evaluation path, replicated verbatim with owned datasets:
/// every split/subsample produces a deep copy, the FE pipeline fits on the
/// copied matrices. No caches — each call is a cold trial.
fn copy_path_loss(
    space: &SpaceDef,
    metric: Metric,
    strategy: ValidationStrategy,
    data: &Dataset,
    assignment: &HashMap<String, f64>,
    fidelity: f64,
    seed: u64,
) -> f64 {
    let (alg, model_params, fe_params) = parse_assignment(space, assignment).unwrap();
    let fit_one = |train: &Dataset, valid: &Dataset| -> f64 {
        let mut pipeline = FePipeline::from_values(
            space.task,
            &train.feature_types,
            &fe_params,
            &space.fe_options,
            seed,
        )
        .unwrap();
        let (x, y) = pipeline.fit_transform_train(&train.x, &train.y).unwrap();
        let xv = pipeline.transform(&valid.x).unwrap();
        let mut model = alg.build(&model_params, seed);
        model.fit(&x, &y).unwrap();
        let preds = model.predict(&xv).unwrap();
        metric.loss(&valid.y, &preds)
    };
    match strategy {
        ValidationStrategy::Holdout { fraction } => {
            let (train_all, valid) = train_test_split(data, fraction, seed).unwrap();
            let train = if fidelity >= 1.0 - 1e-9 {
                train_all.clone()
            } else {
                subsample(&train_all, fidelity, seed ^ 0xf1de)
            };
            fit_one(&train, &valid)
        }
        ValidationStrategy::CrossValidation { folds } => {
            let d = if fidelity >= 1.0 - 1e-9 {
                data.clone()
            } else {
                subsample(data, fidelity, seed ^ 0xf1de)
            };
            let splits: Vec<(Vec<usize>, Vec<usize>)> = if space.task == Task::Classification {
                StratifiedKFold::new(&d, folds, seed).unwrap().splits().collect()
            } else {
                KFold::new(d.n_samples(), folds, seed).unwrap().splits().collect()
            };
            let total: f64 = splits
                .iter()
                .map(|(ti, vi)| fit_one(&d.subset(ti), &d.subset(vi)))
                .sum();
            total / splits.len() as f64
        }
    }
}

#[test]
fn holdout_view_losses_match_copy_path_bitwise() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let data = dataset();
    let strategy = ValidationStrategy::Holdout { fraction: 0.25 };
    let ev = Evaluator::with_strategy(
        space.clone(),
        &data,
        Metric::BalancedAccuracy,
        strategy,
        SEED,
    )
    .unwrap();
    for assignment in assignments(&space) {
        for fidelity in FIDELITIES {
            let view_loss = ev.evaluate(&assignment, fidelity).loss;
            let copy_loss = copy_path_loss(
                &space,
                Metric::BalancedAccuracy,
                strategy,
                &data,
                &assignment,
                fidelity,
                SEED,
            );
            assert_eq!(
                view_loss.to_bits(),
                copy_loss.to_bits(),
                "holdout fidelity {fidelity}: view {view_loss} vs copy {copy_loss}"
            );
        }
    }
}

#[test]
fn cv_view_losses_match_copy_path_bitwise() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let data = dataset();
    let strategy = ValidationStrategy::CrossValidation { folds: 3 };
    let ev = Evaluator::with_strategy(
        space.clone(),
        &data,
        Metric::BalancedAccuracy,
        strategy,
        SEED,
    )
    .unwrap();
    for assignment in assignments(&space) {
        for fidelity in FIDELITIES {
            let view_loss = ev.evaluate(&assignment, fidelity).loss;
            let copy_loss = copy_path_loss(
                &space,
                Metric::BalancedAccuracy,
                strategy,
                &data,
                &assignment,
                fidelity,
                SEED,
            );
            assert_eq!(
                view_loss.to_bits(),
                copy_loss.to_bits(),
                "CV fidelity {fidelity}: view {view_loss} vs copy {copy_loss}"
            );
        }
    }
}

#[test]
fn regression_cv_view_losses_match_copy_path_bitwise() {
    use volcanoml_data::synthetic::{make_regression, RegressionSpec};
    let space = SpaceDef::tiered(Task::Regression, SpaceTier::Small);
    let data = make_regression(
        &RegressionSpec {
            n_samples: 260,
            n_features: 6,
            n_informative: 4,
            noise: 0.3,
            ..Default::default()
        },
        17,
    );
    let strategy = ValidationStrategy::CrossValidation { folds: 3 };
    let ev = Evaluator::with_strategy(space.clone(), &data, Metric::Mse, strategy, SEED).unwrap();
    let assignment = space.defaults();
    for fidelity in FIDELITIES {
        let view_loss = ev.evaluate(&assignment, fidelity).loss;
        let copy_loss = copy_path_loss(
            &space,
            Metric::Mse,
            strategy,
            &data,
            &assignment,
            fidelity,
            SEED,
        );
        assert_eq!(
            view_loss.to_bits(),
            copy_loss.to_bits(),
            "regression CV fidelity {fidelity}"
        );
    }
}

/// View-of-view composition flattens to a single index array over the
/// original storage: selecting through two levels equals one direct subset.
#[test]
fn view_of_view_composition_matches_direct_subset() {
    let data = dataset();
    let outer_idx: Vec<usize> = (0..data.n_samples()).step_by(2).collect();
    let inner_idx: Vec<usize> = (0..outer_idx.len()).filter(|i| i % 3 != 0).collect();
    let direct: Vec<usize> = inner_idx.iter().map(|&i| outer_idx[i]).collect();
    let expected = data.subset(&direct);

    let view = DatasetView::of(data).select(&outer_idx).select(&inner_idx);
    assert_eq!(view.row_indices(), Some(direct.as_slice()));
    let got = view.materialize();
    assert_eq!(got.x.data(), expected.x.data());
    assert_eq!(got.y, expected.y);
}

/// Stratified k-fold over a subsampled *view* is deterministic and matches
/// folding the materialized subsample: same labels in, same folds out.
#[test]
fn stratified_kfold_on_view_is_deterministic() {
    let data = dataset();
    let view = volcanoml_data::subsample_view(&DatasetView::of(data.clone()), 0.5, 41);
    let owned = subsample(&data, 0.5, 41);
    for seed in [0u64, 13, 99] {
        let on_view: Vec<_> = StratifiedKFold::from_view(&view, 4, seed)
            .unwrap()
            .splits()
            .collect();
        let on_owned: Vec<_> = StratifiedKFold::new(&owned, 4, seed)
            .unwrap()
            .splits()
            .collect();
        assert_eq!(on_view, on_owned, "seed {seed}");
        // And twice on the same view → identical folds.
        let again: Vec<_> = StratifiedKFold::from_view(&view, 4, seed)
            .unwrap()
            .splits()
            .collect();
        assert_eq!(on_view, again, "seed {seed} not deterministic");
    }
}
