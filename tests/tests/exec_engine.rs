//! Integration tests for the parallel trial-execution engine: determinism
//! across worker counts, crash isolation, per-trial deadlines, and the
//! end-to-end `--workers`/journal path through `VolcanoML::fit`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use volcanoml_core::evaluator::{Evaluator, Fault};
use volcanoml_core::plans::p3_volcano;
use volcanoml_core::{EngineKind, SpaceDef, SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::{Metric, Task};
use volcanoml_exec::{ExecPool, Journal, PoolConfig};

fn dataset(seed: u64) -> volcanoml_data::Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: 240,
            n_features: 8,
            n_informative: 5,
            n_redundant: 0,
            n_classes: 2,
            class_sep: 1.2,
            flip_y: 0.04,
            weights: Vec::new(),
        },
        seed,
    )
}

/// Pre-samples `n` full-fidelity trials from the composite space.
fn sample_trials(space: &SpaceDef, n: usize, seed: u64) -> Vec<(HashMap<String, f64>, f64)> {
    let compiled = space
        .compile_subspace(&space.var_names(), &HashMap::new())
        .unwrap();
    let mut rng = volcanoml_data::rand_util::rng_from_seed(seed);
    (0..n)
        .map(|_| (compiled.to_map(&compiled.sample(&mut rng)), 1.0))
        .collect()
}

fn evaluator(space: &SpaceDef, data_seed: u64, eval_seed: u64) -> Evaluator {
    let d = dataset(data_seed);
    Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, eval_seed).unwrap()
}

#[test]
fn batch_losses_are_identical_across_worker_counts() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let trials = sample_trials(&space, 10, 7);

    let ev1 = evaluator(&space, 5, 3);
    let pool1 = ExecPool::with_workers(1);
    let serial: Vec<f64> = ev1
        .evaluate_batch(&pool1, &trials)
        .iter()
        .map(|o| o.loss)
        .collect();

    let ev4 = evaluator(&space, 5, 3);
    let pool4 = ExecPool::with_workers(4);
    let parallel: Vec<f64> = ev4
        .evaluate_batch(&pool4, &trials)
        .iter()
        .map(|o| o.loss)
        .collect();

    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(a, b, "trial {i}: serial loss {a} != parallel loss {b}");
    }
    assert!(serial.iter().any(|l| l.is_finite()));
}

#[test]
fn panicking_trial_is_isolated_and_journaled() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let trials = sample_trials(&space, 6, 11);
    let bad_alg = trials[2].0["algorithm"];

    let ev = evaluator(&space, 6, 0);
    let journal = Arc::new(Journal::in_memory());
    ev.attach_journal(Arc::clone(&journal));
    ev.set_fault_hook(Arc::new(move |assignment, _fidelity| {
        (assignment["algorithm"] == bad_alg).then_some(Fault::Panic)
    }));

    let pool = ExecPool::with_workers(4);
    let outcomes = ev.evaluate_batch(&pool, &trials);

    assert_eq!(outcomes.len(), trials.len());
    for (i, (trial, out)) in trials.iter().zip(outcomes.iter()).enumerate() {
        if trial.0["algorithm"] == bad_alg {
            assert!(out.panicked, "trial {i} should have panicked");
            assert!(out.loss.is_infinite());
        }
    }
    assert!(outcomes.iter().any(|o| o.loss.is_finite() && !o.panicked));

    // Every trial is journaled exactly once, with the panic flag set on the
    // faulted ones.
    let records = journal.records();
    assert_eq!(records.len(), trials.len());
    assert!(records.iter().any(|r| r.panicked && r.loss.is_infinite()));
    assert!(records.iter().any(|r| !r.panicked && r.loss.is_finite()));

    // The evaluator (and its pool) survive: a clean follow-up trial works.
    let ok = trials
        .iter()
        .find(|t| t.0["algorithm"] != bad_alg)
        .unwrap();
    let after = ev.evaluate(&ok.0, 1.0);
    assert!(!after.panicked);
}

#[test]
fn stalled_trial_hits_the_deadline_and_pool_survives() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let trials = sample_trials(&space, 5, 13);
    let slow_alg = trials[1].0["algorithm"];

    let ev = evaluator(&space, 7, 0);
    let journal = Arc::new(Journal::in_memory());
    ev.attach_journal(Arc::clone(&journal));
    ev.set_fault_hook(Arc::new(move |assignment, _fidelity| {
        (assignment["algorithm"] == slow_alg).then_some(Fault::Stall(Duration::from_secs(30)))
    }));

    let mut config = PoolConfig::with_workers(4);
    config.trial_deadline = Some(Duration::from_millis(200));
    let pool = ExecPool::new(config);
    let outcomes = ev.evaluate_batch(&pool, &trials);

    assert_eq!(outcomes.len(), trials.len());
    for (trial, out) in trials.iter().zip(outcomes.iter()) {
        if trial.0["algorithm"] == slow_alg {
            assert!(out.timed_out, "stalled trial should time out");
            assert!(out.loss.is_infinite());
        }
    }
    assert!(outcomes.iter().any(|o| !o.timed_out && o.loss.is_finite()));

    // Timed-out trials still get a journal record (from the pool's view of
    // the run), flagged as such.
    assert!(journal.records().iter().any(|r| r.timed_out));

    // A fresh batch on the same pool still completes.
    let clean: Vec<_> = trials
        .iter()
        .filter(|t| t.0["algorithm"] != slow_alg)
        .cloned()
        .collect();
    let again = ev.evaluate_batch(&pool, &clean);
    assert!(again.iter().all(|o| !o.timed_out));
}

#[test]
fn search_survives_periodic_injected_panics() {
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let ev = evaluator(&space, 9, 1);
    let journal = Arc::new(Journal::in_memory());
    ev.attach_journal(Arc::clone(&journal));
    let calls = AtomicUsize::new(0);
    ev.set_fault_hook(Arc::new(move |_assignment, _fidelity| {
        (calls.fetch_add(1, Ordering::SeqCst) % 4 == 3).then_some(Fault::Panic)
    }));

    let mut root = p3_volcano(EngineKind::Bo).compile(&space, 1).unwrap();
    let pool = ExecPool::with_workers(4);
    while ev.evaluations() < 24 {
        root.do_next_batch(&ev, &pool, 4).unwrap();
    }

    let best = root.current_best().expect("search found nothing");
    assert!(best.loss.is_finite(), "best loss {}", best.loss);
    assert!(journal.records().iter().any(|r| r.panicked));
    assert!(journal.records().iter().any(|r| r.loss.is_finite()));
}

#[test]
fn fit_with_workers_writes_a_journal_file() {
    let d = dataset(12);
    let dir = std::env::temp_dir().join("volcanoml-exec-engine-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("fit-journal-{}.jsonl", std::process::id()));

    let options = VolcanoMlOptions {
        max_evaluations: 12,
        seed: 4,
        n_workers: 4,
        journal_path: Some(path.clone()),
        ..Default::default()
    };
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
    let fitted = engine.fit(&d).unwrap();
    assert!(fitted.report.best_loss.is_finite());
    assert!(fitted.report.n_evaluations <= 12);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "journal file is empty");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line}");
        for key in ["\"trial\":", "\"worker\":", "\"loss\":", "\"fidelity\":"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
    std::fs::remove_file(&path).ok();
}
