//! End-to-end tests for pooled multi-fidelity scheduling: with
//! `--engine mfes-hb --workers 4` the asynchronous bracket machinery must
//! actually exercise sub-1.0 fidelities (the old `suggest_batch` default
//! silently degraded every batch slot after the first to a random
//! full-fidelity draw), every fidelity must sit on the η-ladder, and
//! engine-issued trials must carry `rung`/`bracket` attribution in the
//! journal.

use std::path::PathBuf;

use volcanoml_core::{EngineKind, PlanSpec, SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::Task;
use volcanoml_obs::json::{parse_object, JsonValue};

fn dataset(seed: u64) -> volcanoml_data::Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: 240,
            n_features: 8,
            n_informative: 5,
            n_redundant: 0,
            n_classes: 2,
            class_sep: 1.2,
            flip_y: 0.04,
            weights: Vec::new(),
        },
        seed,
    )
}

struct MfRun {
    journal: Vec<std::collections::BTreeMap<String, JsonValue>>,
    best_loss: f64,
    fidelity_counts: Vec<(f64, usize)>,
}

/// One pooled multi-fidelity run, journal parsed.
fn pooled_run(engine: EngineKind, n_workers: usize, evals: usize, seed: u64) -> MfRun {
    let dir = std::env::temp_dir().join("volcanoml-multifidelity-test");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = format!("{}-{}-{}-{}", std::process::id(), engine.name(), n_workers, seed);
    let journal_path: PathBuf = dir.join(format!("journal-{stem}.jsonl"));

    let d = dataset(seed);
    let options = VolcanoMlOptions {
        plan: PlanSpec::single_joint(engine),
        max_evaluations: evals,
        seed,
        n_workers,
        journal_path: Some(journal_path.clone()),
        ..Default::default()
    };
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
    let fitted = engine.fit(&d).unwrap();

    let text = std::fs::read_to_string(&journal_path).unwrap();
    std::fs::remove_file(&journal_path).ok();
    let journal = text
        .lines()
        .map(|l| parse_object(l).unwrap_or_else(|| panic!("bad journal line: {l}")))
        .collect();
    MfRun {
        journal,
        best_loss: fitted.report.best_loss,
        fidelity_counts: fitted.report.fidelity_counts.clone(),
    }
}

fn get_f64(row: &std::collections::BTreeMap<String, JsonValue>, key: &str) -> f64 {
    row.get(key).and_then(JsonValue::as_f64).unwrap()
}

fn get_i64(row: &std::collections::BTreeMap<String, JsonValue>, key: &str) -> i64 {
    row.get(key).and_then(JsonValue::as_i64).unwrap()
}

/// The η=3 ladder the joint block configures: 1/9, 1/3, 1.
const LADDER: [f64; 3] = [1.0 / 9.0, 1.0 / 3.0, 1.0];

fn on_ladder(f: f64) -> bool {
    LADDER.iter().any(|&r| (r - f).abs() < 1e-9)
}

/// The acceptance criterion from the issue: a pooled MFES-HB run shows
/// multiple distinct sub-1.0 fidelities and zero off-ladder (fallback)
/// draws, and the journal carries rung/bracket attribution.
#[test]
fn pooled_mfes_hb_exercises_sub_full_fidelities() {
    let run = pooled_run(EngineKind::MfesHb, 4, 24, 3);
    assert!(run.best_loss.is_finite());
    assert!(!run.journal.is_empty());

    let mut sub_full = std::collections::BTreeSet::new();
    for row in &run.journal {
        let fidelity = get_f64(row, "fidelity");
        assert!(
            on_ladder(fidelity),
            "off-ladder fidelity {fidelity} — the random full-fidelity fallback is back"
        );
        if fidelity < 1.0 - 1e-9 {
            sub_full.insert(fidelity.to_bits());
        }
        let rung = get_i64(row, "rung");
        let bracket = get_i64(row, "bracket");
        // Engine-issued trials carry both attributions; seeds carry neither.
        assert_eq!(
            rung >= 0,
            bracket >= 0,
            "rung/bracket must be set together: {row:?}"
        );
        if rung >= 0 {
            assert!(
                (LADDER[rung as usize] - fidelity).abs() < 1e-9,
                "rung {rung} journaled at fidelity {fidelity}"
            );
        }
    }
    assert!(
        sub_full.len() >= 2,
        "expected ≥2 distinct sub-1.0 fidelities, journal saw {}",
        sub_full.len()
    );
    assert!(
        run.journal.iter().any(|r| get_i64(r, "rung") >= 0),
        "no bracket-attributed trials in the journal"
    );
    // The report's fidelity mix mirrors the journal.
    assert!(run.fidelity_counts.len() >= 3, "{:?}", run.fidelity_counts);
}

/// Pooled SH and Hyperband also fill batches from their brackets.
#[test]
fn pooled_sh_and_hyperband_follow_the_ladder() {
    for engine in [EngineKind::SuccessiveHalving, EngineKind::Hyperband] {
        let run = pooled_run(engine, 4, 20, 9);
        let mut saw_sub_full = false;
        for row in &run.journal {
            let fidelity = get_f64(row, "fidelity");
            assert!(on_ladder(fidelity), "{}: off-ladder {fidelity}", engine.name());
            saw_sub_full |= fidelity < 1.0 - 1e-9;
        }
        assert!(saw_sub_full, "{}: no sub-1.0 fidelity exercised", engine.name());
    }
}

/// Pooled MFES-HB reaches a best loss comparable to the serial run on the
/// same data and seed (asynchronous promotion reorders observations, so
/// exact equality is not expected — but pooling must not degrade search to
/// random full-fidelity draws).
#[test]
fn pooled_mfes_hb_matches_serial_quality() {
    let serial = pooled_run(EngineKind::MfesHb, 1, 24, 17);
    let pooled = pooled_run(EngineKind::MfesHb, 4, 24, 17);
    assert!(serial.best_loss.is_finite() && pooled.best_loss.is_finite());
    assert!(
        (serial.best_loss - pooled.best_loss).abs() < 0.15,
        "serial {} vs pooled {}",
        serial.best_loss,
        pooled.best_loss
    );
}
