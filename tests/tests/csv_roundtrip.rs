//! CSV persistence + engine integration: datasets survive a round trip
//! through the CSV dialect and remain fit-able, matching the CLI's workflow.

use volcanoml_core::{SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::{inject_missing, make_categorical};
use volcanoml_data::{csv, train_test_split, Metric};

#[test]
fn csv_roundtrip_then_automl() {
    // A messy dataset: categoricals + missing values.
    let original = inject_missing(&make_categorical(300, 2, 3, 4, 0.05, 3), 0.08, 4);
    let text = csv::to_csv(&original);
    let loaded = csv::from_csv("roundtrip", &text).expect("parses");

    assert_eq!(loaded.n_samples(), original.n_samples());
    assert_eq!(loaded.feature_types, original.feature_types);
    assert_eq!(loaded.n_classes, original.n_classes);
    assert!(loaded.has_missing());

    let (train, test) = train_test_split(&loaded, 0.2, 0).unwrap();
    let engine = VolcanoML::with_tier(
        loaded.task,
        SpaceTier::Small,
        VolcanoMlOptions {
            max_evaluations: 15,
            seed: 0,
            ..Default::default()
        },
    );
    let fitted = engine.fit(&train).expect("search succeeds on CSV data");
    let acc = fitted.score(&test, Metric::BalancedAccuracy).unwrap();
    assert!(acc > 0.55, "balanced accuracy {acc}");
}

#[test]
fn csv_values_are_bit_exact() {
    let d = volcanoml_data::synthetic::make_regression(
        &volcanoml_data::synthetic::RegressionSpec::default(),
        9,
    );
    let loaded = csv::from_csv("t", &csv::to_csv(&d)).unwrap();
    for (a, b) in d.x.data().iter().zip(loaded.x.data().iter()) {
        // `to_csv` prints full precision; parse must reproduce bits for
        // finite values.
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in d.y.iter().zip(loaded.y.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
