//! End-to-end tests for the live observability plane: the Prometheus
//! `/metrics` scrape while two tenants run concurrently, and the
//! `/studies/:id/events` SSE stream with duplicate-free `Last-Event-ID`
//! resume across a reconnect.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use volcanoml_serve::{ServeConfig, Server};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "volcanoml-obs-serve-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Minimal HTTP client: one request, one response, connection closed.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status code in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

fn wait_for_status(addr: SocketAddr, id: &str, wanted: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (code, body) = request(addr, "GET", &format!("/studies/{id}"), "");
        assert_eq!(code, 200, "GET /studies/{id}: {body}");
        if body.contains(&format!("\"status\":\"{wanted}\"")) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "study {id} did not reach '{wanted}' in time; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One parsed SSE frame: the `id:`, `event:`, and `data:` fields.
#[derive(Debug, Clone)]
struct SseFrame {
    id: u64,
    event: String,
    data: String,
}

/// SSE client over a raw TcpStream: sends the GET (with `Last-Event-ID`
/// when resuming), then reads frames until `stop(frames)` says done or the
/// server closes the stream. Comment frames (keep-alives) are skipped.
fn read_sse<F: Fn(&[SseFrame]) -> bool>(
    addr: SocketAddr,
    path: &str,
    last_event_id: Option<u64>,
    timeout: Duration,
    stop: F,
) -> Vec<SseFrame> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let resume = match last_event_id {
        Some(id) => format!("Last-Event-ID: {id}\r\n"),
        None => String::new(),
    };
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n{resume}\r\n").as_bytes())
        .unwrap();
    stream.flush().unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    let deadline = Instant::now() + timeout;
    let mut raw = Vec::new();
    let mut frames: Vec<SseFrame> = Vec::new();
    let mut parsed_to = 0usize; // byte offset of the first unparsed frame
    let mut header_seen = false;
    let mut buf = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break, // server closed: stream complete
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => panic!("read error on event stream: {e}"),
        }
        let text = String::from_utf8_lossy(&raw).into_owned();
        if !header_seen {
            let Some(head_end) = text.find("\r\n\r\n") else {
                continue;
            };
            assert!(
                text.starts_with("HTTP/1.1 200"),
                "unexpected stream head: {}",
                &text[..head_end]
            );
            assert!(
                text[..head_end].contains("text/event-stream"),
                "not an SSE response: {}",
                &text[..head_end]
            );
            header_seen = true;
            parsed_to = head_end + 4;
        }
        // Parse complete frames (terminated by a blank line).
        while let Some(rel) = text[parsed_to..].find("\n\n") {
            let frame_text = &text[parsed_to..parsed_to + rel];
            parsed_to += rel + 2;
            let mut id = None;
            let mut event = String::new();
            let mut data = String::new();
            for line in frame_text.lines() {
                if let Some(v) = line.strip_prefix("id: ") {
                    id = v.trim().parse().ok();
                } else if let Some(v) = line.strip_prefix("event: ") {
                    event = v.trim().to_string();
                } else if let Some(v) = line.strip_prefix("data: ") {
                    data = v.trim().to_string();
                }
            }
            if event == "end" {
                return frames;
            }
            if let Some(id) = id {
                frames.push(SseFrame { id, event, data });
            }
        }
        if stop(&frames) {
            return frames;
        }
    }
    frames
}

/// Parses exposition text into `family-with-labels -> value` and validates
/// basic line grammar along the way.
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value: {line:?}"));
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name {name:?} in line {line:?}"
        );
        assert!(
            !name.chars().next().unwrap().is_ascii_digit(),
            "metric name starts with a digit: {line:?}"
        );
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .unwrap_or_else(|_| panic!("unparseable value in line {line:?}")),
        };
        samples.insert(series.to_string(), value);
    }
    samples
}

/// Every `_bucket` series must be cumulative within its family+labels, and
/// every histogram closed by a `+Inf` bucket matching `_count`.
fn check_histogram_invariants(samples: &BTreeMap<String, f64>) {
    // Group bucket series by (family, labels-without-le).
    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (series, value) in samples {
        let Some(open) = series.find('{') else { continue };
        if !series[..open].ends_with("_bucket") {
            continue;
        }
        let labels = &series[open + 1..series.len() - 1];
        let mut le = None;
        let mut rest: Vec<&str> = Vec::new();
        for part in labels.split(',') {
            match part.strip_prefix("le=\"") {
                Some(v) => le = Some(v.trim_end_matches('"').to_string()),
                None => rest.push(part),
            }
        }
        let le = le.unwrap_or_else(|| panic!("bucket without le: {series}"));
        let le_val = match le.as_str() {
            "+Inf" => f64::INFINITY,
            v => v.parse().unwrap(),
        };
        groups
            .entry(format!("{}|{}", &series[..open], rest.join(",")))
            .or_default()
            .push((le_val, *value));
    }
    assert!(!groups.is_empty(), "no histogram buckets in the scrape");
    for (key, mut buckets) in groups {
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(
            buckets.last().unwrap().0.is_infinite(),
            "histogram {key} not closed by +Inf"
        );
        let counts: Vec<f64> = buckets.iter().map(|(_, c)| *c).collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone buckets for {key}: {counts:?}"
        );
        let family = key.split('|').next().unwrap().trim_end_matches("_bucket");
        let labels = key.split('|').nth(1).unwrap();
        let count_series = if labels.is_empty() {
            format!("{family}_count")
        } else {
            format!("{family}_count{{{labels}}}")
        };
        let count = samples
            .get(&count_series)
            .unwrap_or_else(|| panic!("missing {count_series}"));
        assert_eq!(
            *counts.last().unwrap(),
            *count,
            "+Inf bucket != _count for {key}"
        );
    }
}

#[test]
fn metrics_scrape_covers_server_and_both_tenants_mid_run() {
    let dir = tmp_dir("metrics");
    let server = Server::start(ServeConfig {
        dir: dir.clone(),
        workers: 2,
        port: 0,
        resume: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    for (name, engine, dataset) in [("obs-a", "bo", "classification"), ("obs-b", "random", "moons")]
    {
        let spec = format!(
            r#"{{"name":"{name}","dataset":"{dataset}","engine":"{engine}","max_evaluations":16,"seed":5}}"#
        );
        let (code, body) = request(addr, "POST", "/studies", &spec);
        assert_eq!(code, 201, "{body}");
    }
    // Poll the scrape until both tenants show live trial counters. This is
    // the mid-run window: the server answers scrapes while fits execute.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mid_run = loop {
        let (code, text) = request(addr, "GET", "/metrics", "");
        assert_eq!(code, 200);
        let samples = parse_exposition(&text);
        let a = samples
            .get("volcanoml_trial_total{study=\"obs-a\"}")
            .copied()
            .unwrap_or(0.0);
        let b = samples
            .get("volcanoml_trial_total{study=\"obs-b\"}")
            .copied()
            .unwrap_or(0.0);
        if a >= 1.0 && b >= 1.0 {
            break text;
        }
        assert!(
            Instant::now() < deadline,
            "tenants never reported trials; last scrape:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let samples = parse_exposition(&mid_run);
    check_histogram_invariants(&samples);
    // Server-level series.
    assert_eq!(samples.get("volcanoml_serve_pool_workers"), Some(&2.0));
    assert!(samples.contains_key("volcanoml_serve_uptime_seconds"));
    assert!(samples.contains_key("volcanoml_serve_pool_busy_workers"));
    assert!(samples.contains_key("volcanoml_serve_pool_queue_depth"));
    assert!(
        samples
            .keys()
            .any(|k| k.starts_with("volcanoml_http_requests_total{")),
        "no HTTP request counters in scrape"
    );
    assert!(
        samples
            .keys()
            .any(|k| k.starts_with("volcanoml_http_request_seconds_bucket{")),
        "no HTTP latency histogram in scrape"
    );
    wait_for_status(addr, "obs-a", "done", Duration::from_secs(120));
    wait_for_status(addr, "obs-b", "done", Duration::from_secs(120));
    let (_, final_text) = request(addr, "GET", "/metrics", "");
    let finals = parse_exposition(&final_text);
    check_histogram_invariants(&finals);
    for study in ["obs-a", "obs-b"] {
        // Fair-share decisions were recorded and each tenant consumed pool time.
        assert!(
            finals[&format!("volcanoml_sched_batch_cap_decisions_total{{study=\"{study}\"}}")]
                >= 1.0
        );
        assert!(finals[&format!("volcanoml_serve_tenant_worker_seconds{{study=\"{study}\"}}")] > 0.0);
        // Self-overhead accounting: present, and far below total trial time.
        let overhead =
            finals[&format!("volcanoml_obs_self_overhead_s_sum{{study=\"{study}\"}}")];
        let busy = finals[&format!("volcanoml_serve_tenant_worker_seconds{{study=\"{study}\"}}")];
        assert!(overhead >= 0.0);
        assert!(
            overhead <= (busy * 0.01).max(0.005),
            "observability overhead {overhead}s vs {busy}s busy for {study}"
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_stream_resumes_without_duplicates_across_reconnect() {
    let dir = tmp_dir("events");
    let server = Server::start(ServeConfig {
        dir: dir.clone(),
        workers: 2,
        port: 0,
        resume: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let spec = r#"{"name":"evstream","dataset":"moons","engine":"random","max_evaluations":24,"seed":9}"#;
    let (code, body) = request(addr, "POST", "/studies", spec);
    assert_eq!(code, 201, "{body}");

    // First subscription from the start of the stream: read a few trials,
    // then drop the connection mid-run (a dashboard losing its socket).
    let first = read_sse(
        addr,
        "/studies/evstream/events",
        None,
        Duration::from_secs(60),
        |frames| frames.iter().filter(|f| f.event == "TrialFinished").count() >= 3,
    );
    assert!(
        first.iter().filter(|f| f.event == "TrialFinished").count() >= 3,
        "first connection saw {} frames: {first:?}",
        first.len()
    );
    assert_eq!(first[0].id, 1, "stream must start at the first event");
    assert_eq!(
        first[0].event, "StudySubmitted",
        "lifecycle head missing: {first:?}"
    );
    assert!(
        first.windows(2).all(|w| w[1].id > w[0].id),
        "ids not strictly increasing on first connection"
    );
    let cursor = first.last().unwrap().id;

    // Resume with Last-Event-ID: replay must start exactly after the cursor
    // and run to the terminal event with no duplicates.
    let resumed = read_sse(
        addr,
        "/studies/evstream/events",
        Some(cursor),
        Duration::from_secs(120),
        |_| false, // read until the server closes the stream with `end`
    );
    assert!(
        !resumed.is_empty(),
        "resumed connection saw nothing after id {cursor}"
    );
    assert!(
        resumed.iter().all(|f| f.id > cursor),
        "resume replayed an already-seen event: {:?}",
        resumed.iter().map(|f| f.id).collect::<Vec<_>>()
    );
    assert!(
        resumed.windows(2).all(|w| w[1].id > w[0].id),
        "ids not strictly increasing after resume"
    );
    let all_ids: Vec<u64> = first
        .iter()
        .chain(resumed.iter())
        .map(|f| f.id)
        .collect();
    let mut deduped = all_ids.clone();
    deduped.dedup();
    assert_eq!(all_ids, deduped, "duplicate event ids across the reconnect");
    assert_eq!(
        resumed.last().unwrap().event,
        "StudyDone",
        "stream did not end with the terminal event: {resumed:?}"
    );
    // Typed payloads are well-formed JSON with matching ids.
    for frame in first.iter().chain(resumed.iter()) {
        let event = volcanoml_obs::BusEvent::from_json(&frame.data)
            .unwrap_or_else(|| panic!("unparseable event payload: {}", frame.data));
        assert_eq!(event.id, frame.id);
        assert_eq!(event.event.kind(), frame.event);
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
