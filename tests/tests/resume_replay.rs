//! Crash-resume property tests: replay-by-redrive must reproduce the
//! uninterrupted run's scheduling state bitwise.
//!
//! Engine schedules are deterministic functions of the seed and the observed
//! trial outcomes — losses always, and in cost-aware mode the journaled
//! wall-clock costs too — so a resumed fit that replays a journal
//! re-derives the same block tree, bracket occupancy, EU intervals, and
//! incumbent — which `StudyState` captures as canonical bitwise lines.

use std::path::{Path, PathBuf};

use volcanoml_core::{
    EngineKind, PlanSpec, SpaceGrowth, SpaceTier, StudyState, VolcanoML, VolcanoMlOptions,
};
use volcanoml_data::synthetic::make_moons;
use volcanoml_data::Task;
use volcanoml_exec::{ExpansionRecord, JournalRow, TrialRecord};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "volcanoml-resume-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn options(
    engine: EngineKind,
    evals: usize,
    workers: usize,
    journal: &Path,
    resume: bool,
) -> VolcanoMlOptions {
    VolcanoMlOptions {
        plan: PlanSpec::volcano_default(engine),
        max_evaluations: evals,
        seed: 7,
        n_workers: workers,
        journal_path: Some(journal.to_path_buf()),
        resume,
        ..Default::default()
    }
}

fn cost_aware_options(
    engine: EngineKind,
    evals: usize,
    workers: usize,
    journal: &Path,
    resume: bool,
) -> VolcanoMlOptions {
    VolcanoMlOptions {
        cost_aware: true,
        objective: volcanoml_core::Objective::LossAndCost { latency_weight: 5.0 },
        ..options(engine, evals, workers, journal, resume)
    }
}

fn journal_rows(path: &Path) -> Vec<JournalRow> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| JournalRow::from_json(l).expect("journal row parses"))
        .collect()
}

fn journal_records(path: &Path) -> Vec<TrialRecord> {
    journal_rows(path)
        .into_iter()
        .filter_map(|r| match r {
            JournalRow::Trial(t) => Some(t),
            JournalRow::Expansion(_) => None,
        })
        .collect()
}

fn expansion_records(path: &Path) -> Vec<ExpansionRecord> {
    journal_rows(path)
        .into_iter()
        .filter_map(|r| match r {
            JournalRow::Trial(_) => None,
            JournalRow::Expansion(e) => Some(e),
        })
        .collect()
}

fn assert_unique_trial_ids(records: &[TrialRecord]) {
    let mut ids: Vec<u64> = records.iter().map(|r| r.trial_id).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate trial ids in journal");
}

/// Evaluator log lines and joint history lines carry wall-clock cost bits;
/// fresh trials in a resumed run legitimately measure different costs than
/// the original run, so the partial-journal comparison drops that one field
/// from both line kinds. Everything else must match bitwise. (The
/// *full*-replay tests compare unstripped — a complete journal hands every
/// cost back bitwise.)
fn strip_costs(state: &StudyState) -> Vec<String> {
    state
        .lines
        .iter()
        .map(|l| {
            if l.starts_with("evaluator.log ") {
                // cost= is the final field: drop the tail.
                match l.find(" cost=") {
                    Some(i) => l[..i].to_string(),
                    None => l.clone(),
                }
            } else if l.contains(" joint history[") {
                // cost=<16 hex digits> sits mid-line before config=.
                match l.find(" cost=") {
                    Some(i) => {
                        let rest = &l[i + " cost=".len() + 16..];
                        format!("{}{rest}", &l[..i])
                    }
                    None => l.clone(),
                }
            } else {
                l.clone()
            }
        })
        .collect()
}

/// Replaying a COMPLETE journal must be a bitwise no-op: identical
/// `StudyState` (costs included — they come back out of the journal),
/// identical best loss, and not a single row re-journaled. Exercised across
/// the BO, Hyperband, and MFES-HB engines, serial and with 4 workers.
#[test]
fn full_replay_reproduces_study_state_bitwise() {
    let data = make_moons(160, 0.2, 1, 5);
    for engine in [EngineKind::Bo, EngineKind::Hyperband, EngineKind::MfesHb] {
        for workers in [1usize, 4] {
            let dir = tmp_dir(&format!("full-{}-{workers}", engine.name()));
            let journal = dir.join("journal.jsonl");

            let first = VolcanoML::with_tier(
                Task::Classification,
                SpaceTier::Small,
                options(engine, 10, workers, &journal, false),
            )
            .fit(&data)
            .unwrap();
            let rows_before = journal_records(&journal);
            assert_unique_trial_ids(&rows_before);

            let replayed = VolcanoML::with_tier(
                Task::Classification,
                SpaceTier::Small,
                options(engine, 10, workers, &journal, true),
            )
            .fit(&data)
            .unwrap();
            let rows_after = journal_records(&journal);

            assert_eq!(
                rows_before.len(),
                rows_after.len(),
                "{} x{workers}: full replay must not re-journal trials",
                engine.name()
            );
            if let Some(diff) = first.study_state.diff(&replayed.study_state) {
                panic!("{} x{workers}: study state diverged:\n{diff}", engine.name());
            }
            assert_eq!(
                first.report.best_loss.to_bits(),
                replayed.report.best_loss.to_bits(),
                "{} x{workers}: best loss must match bitwise",
                engine.name()
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The same full-replay bitwise property must hold when cost *steers* the
/// schedule: with `cost_aware` on (EI-per-second, loss-per-second
/// promotion) and a scalarized loss+latency objective, the replay table
/// answers both the loss and the cost coordinate bitwise — including
/// cached trials, which resolve to their memoized true cost rather than
/// the journal's cost-0 accounting row — so the resumed tree, cost-model
/// observation counts, and bracket cost tables land exactly where the
/// interrupted run left them.
#[test]
fn cost_aware_full_replay_reproduces_study_state_bitwise() {
    let data = make_moons(160, 0.2, 1, 5);
    for engine in [EngineKind::Bo, EngineKind::MfesHb] {
        for workers in [1usize, 4] {
            let dir = tmp_dir(&format!("cost-full-{}-{workers}", engine.name()));
            let journal = dir.join("journal.jsonl");

            let first = VolcanoML::with_tier(
                Task::Classification,
                SpaceTier::Small,
                cost_aware_options(engine, 10, workers, &journal, false),
            )
            .fit(&data)
            .unwrap();
            let rows_before = journal_records(&journal);
            assert_unique_trial_ids(&rows_before);

            let replayed = VolcanoML::with_tier(
                Task::Classification,
                SpaceTier::Small,
                cost_aware_options(engine, 10, workers, &journal, true),
            )
            .fit(&data)
            .unwrap();
            let rows_after = journal_records(&journal);

            assert_eq!(
                rows_before.len(),
                rows_after.len(),
                "{} x{workers}: cost-aware full replay must not re-journal trials",
                engine.name()
            );
            if let Some(diff) = first.study_state.diff(&replayed.study_state) {
                panic!(
                    "{} x{workers}: cost-aware study state diverged:\n{diff}",
                    engine.name()
                );
            }
            assert_eq!(
                first.report.best_loss.to_bits(),
                replayed.report.best_loss.to_bits(),
                "{} x{workers}: cost-aware best loss must match bitwise",
                engine.name()
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

fn incremental_options(
    engine: EngineKind,
    evals: usize,
    workers: usize,
    journal: &Path,
    resume: bool,
) -> VolcanoMlOptions {
    let mut o = VolcanoMlOptions {
        // Permissive threshold: any finite plateau EUI fires the ladder, so
        // both expansions land well inside the budget and the test stresses
        // the expansion replay machinery rather than the plateau heuristic.
        space_growth: SpaceGrowth::Incremental { eui_threshold: 10.0 },
        ..options(engine, evals, workers, journal, resume)
    };
    // Multi-fidelity leaves only feed the plateau trajectory on
    // full-fidelity results, which the deep default plan reaches too
    // slowly for a test-sized budget; a single joint leaf keeps the
    // plateau signal fast while still exercising bracket remapping on
    // grow.
    if engine == EngineKind::MfesHb {
        o.plan = PlanSpec::single_joint(engine);
    }
    o
}

/// Replaying the COMPLETE journal of an expanded study must re-derive the
/// identical growth trajectory from the replayed losses alone — same
/// expansion rows (not re-journaled), bitwise-identical `StudyState`
/// including the growth-controller line.
#[test]
fn incremental_full_replay_reproduces_expansions_bitwise() {
    let data = make_moons(160, 0.2, 1, 5);
    for (engine, workers, evals) in [(EngineKind::Bo, 1usize, 24), (EngineKind::MfesHb, 4, 60)] {
        let dir = tmp_dir(&format!("grow-full-{}-{workers}", engine.name()));
        let journal = dir.join("journal.jsonl");

        let first = VolcanoML::with_tier(
            Task::Classification,
            SpaceTier::Small,
            incremental_options(engine, evals, workers, &journal, false),
        )
        .fit(&data)
        .unwrap();
        let rows_before = journal_records(&journal);
        let expansions_before = expansion_records(&journal);
        assert!(
            !expansions_before.is_empty(),
            "{} x{workers}: expected at least one journaled expansion",
            engine.name()
        );
        assert!(
            first.study_state.render().contains("growth stage="),
            "growth line missing from snapshot"
        );

        let replayed = VolcanoML::with_tier(
            Task::Classification,
            SpaceTier::Small,
            incremental_options(engine, evals, workers, &journal, true),
        )
        .fit(&data)
        .unwrap();

        assert_eq!(
            journal_records(&journal).len(),
            rows_before.len(),
            "{} x{workers}: full replay must not re-journal trials",
            engine.name()
        );
        assert_eq!(
            expansion_records(&journal),
            expansions_before,
            "{} x{workers}: full replay must not re-journal expansions",
            engine.name()
        );
        if let Some(diff) = first.study_state.diff(&replayed.study_state) {
            panic!(
                "{} x{workers}: expanded study state diverged:\n{diff}",
                engine.name()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill-mid-expansion simulation: truncate the journal right after the
/// first expansion row (plus a torn trial line), resume, and require the
/// resumed run to re-derive the identical expansion sequence — the already
/// journaled stage is not duplicated, later stages are re-triggered and
/// journaled at the same trial boundaries — and to converge to the
/// uninterrupted run's scheduling state (modulo wall-clock cost on the
/// freshly executed tail).
#[test]
fn incremental_truncated_resume_replays_expansion_sequence() {
    let data = make_moons(160, 0.2, 1, 5);
    for (engine, workers, evals) in [(EngineKind::Bo, 1usize, 24), (EngineKind::MfesHb, 4, 60)] {
        let dir = tmp_dir(&format!("grow-crash-{}-{workers}", engine.name()));
        let journal = dir.join("journal.jsonl");

        let uninterrupted = VolcanoML::with_tier(
            Task::Classification,
            SpaceTier::Small,
            incremental_options(engine, evals, workers, &journal, false),
        )
        .fit(&data)
        .unwrap();
        let full_rows = journal_records(&journal);
        let full_expansions = expansion_records(&journal);
        assert!(
            !full_expansions.is_empty(),
            "{} x{workers}: expected at least one journaled expansion",
            engine.name()
        );

        // Crash right after the first expansion row hit the disk: keep
        // everything through that row, then a torn half-written trial.
        let text = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let cut = lines
            .iter()
            .position(|l| l.contains("\"event\":\"expansion\""))
            .expect("journal has an expansion line");
        let crashed = dir.join("crashed.jsonl");
        let mut torn = lines[..=cut].join("\n");
        torn.push_str("\n{\"schema\":2,\"trial\":9999,\"worker\":0,\"sta");
        std::fs::write(&crashed, torn).unwrap();

        let resumed = VolcanoML::with_tier(
            Task::Classification,
            SpaceTier::Small,
            incremental_options(engine, evals, workers, &crashed, true),
        )
        .fit(&data)
        .unwrap();
        let resumed_rows = journal_records(&crashed);

        assert_unique_trial_ids(&resumed_rows);
        assert_eq!(
            resumed_rows.len(),
            full_rows.len(),
            "{} x{workers}: resumed schedule must re-derive the same trials",
            engine.name()
        );
        assert_eq!(
            expansion_records(&crashed),
            full_expansions,
            "{} x{workers}: resumed run must replay the same expansion sequence",
            engine.name()
        );
        assert_eq!(
            uninterrupted.report.best_loss.to_bits(),
            resumed.report.best_loss.to_bits(),
            "{} x{workers}: best loss must match bitwise after expanded resume",
            engine.name()
        );
        let a = strip_costs(&uninterrupted.study_state);
        let b = strip_costs(&resumed.study_state);
        if let Some(i) = (0..a.len().max(b.len())).find(|&i| a.get(i) != b.get(i)) {
            panic!(
                "{} x{workers}: expanded resume state diverged at line {i}:\n  left:  {}\n  right: {}",
                engine.name(),
                a.get(i).map(String::as_str).unwrap_or("<missing>"),
                b.get(i).map(String::as_str).unwrap_or("<missing>"),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill-mid-run simulation: truncate the journal to a prefix (plus a torn
/// half-written line), resume, and require the resumed run to converge to
/// the uninterrupted run's exact state — same trial count, no duplicate
/// ids, same best loss bits, same scheduling state (modulo wall-clock cost
/// on the freshly executed tail).
#[test]
fn truncated_journal_resume_matches_uninterrupted_run() {
    let data = make_moons(160, 0.2, 1, 5);
    for (engine, workers) in [(EngineKind::Bo, 1usize), (EngineKind::MfesHb, 4)] {
        let dir = tmp_dir(&format!("crash-{}-{workers}", engine.name()));
        let journal = dir.join("journal.jsonl");

        let uninterrupted = VolcanoML::with_tier(
            Task::Classification,
            SpaceTier::Small,
            options(engine, 10, workers, &journal, false),
        )
        .fit(&data)
        .unwrap();
        let full_rows = journal_records(&journal);
        assert!(full_rows.len() >= 4, "need enough rows to truncate");

        // Simulate the crash: keep the first half of the journal and a torn
        // final line, as a kill -9 mid-write would leave behind.
        let text = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let keep = lines.len() / 2;
        let crashed = dir.join("crashed.jsonl");
        let mut torn = lines[..keep].join("\n");
        torn.push_str("\n{\"schema\":1,\"trial\":9999,\"worker\":0,\"sta");
        std::fs::write(&crashed, torn).unwrap();

        let resumed = VolcanoML::with_tier(
            Task::Classification,
            SpaceTier::Small,
            options(engine, 10, workers, &crashed, true),
        )
        .fit(&data)
        .unwrap();
        let resumed_rows = journal_records(&crashed);

        assert_unique_trial_ids(&resumed_rows);
        assert_eq!(
            resumed_rows.len(),
            full_rows.len(),
            "{} x{workers}: resumed schedule must re-derive the same trials",
            engine.name()
        );
        assert_eq!(
            uninterrupted.report.best_loss.to_bits(),
            resumed.report.best_loss.to_bits(),
            "{} x{workers}: best loss must match bitwise after resume",
            engine.name()
        );
        assert_eq!(
            uninterrupted.report.n_evaluations, resumed.report.n_evaluations,
            "{} x{workers}: evaluation counts must match",
            engine.name()
        );
        let a = strip_costs(&uninterrupted.study_state);
        let b = strip_costs(&resumed.study_state);
        if let Some(i) = (0..a.len().max(b.len())).find(|&i| a.get(i) != b.get(i)) {
            panic!(
                "{} x{workers}: resumed study state diverged at line {i}:\n  left:  {}\n  right: {}",
                engine.name(),
                a.get(i).map(String::as_str).unwrap_or("<missing>"),
                b.get(i).map(String::as_str).unwrap_or("<missing>"),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
