//! End-to-end tests for volcanoml-serve: multi-tenant fair-share over one
//! pool, live status/report over HTTP, cancellation, and crash-resume of an
//! interrupted study (simulated in-process by truncating its journal).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use volcanoml_exec::TrialRecord;
use volcanoml_serve::{ServeConfig, Server};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "volcanoml-serve-{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Minimal HTTP client: one request, one response, connection closed.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status code in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

fn wait_for_status(addr: SocketAddr, id: &str, wanted: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (code, body) = request(addr, "GET", &format!("/studies/{id}"), "");
        assert_eq!(code, 200, "GET /studies/{id}: {body}");
        if body.contains(&format!("\"status\":\"{wanted}\"")) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "study {id} did not reach '{wanted}' in time; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn journal_rows(path: &std::path::Path) -> Vec<TrialRecord> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| TrialRecord::from_json(l).ok())
        .collect()
}

#[test]
fn two_tenants_share_the_pool_and_both_finish() {
    let dir = tmp_dir("tenants");
    let server = Server::start(ServeConfig {
        dir: dir.clone(),
        workers: 2,
        port: 0,
        resume: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let (code, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("\"workers\":2"));

    let (code, body) = request(
        addr,
        "POST",
        "/studies",
        r#"{"name":"tenant-a","dataset":"moons","engine":"random","max_evaluations":25,"seed":1}"#,
    );
    assert_eq!(code, 201, "{body}");
    assert!(body.contains("\"id\":\"tenant-a\""));
    let (code, body) = request(
        addr,
        "POST",
        "/studies",
        r#"{"name":"tenant-b","dataset":"xor","engine":"random","max_evaluations":25,"seed":2}"#,
    );
    assert_eq!(code, 201, "{body}");

    // Fair-share evidence: observe a moment where BOTH journals hold rows
    // while NEITHER study has finished — their trial batches interleave on
    // the shared pool rather than running back to back.
    let ja = dir.join("tenant-a/journal.jsonl");
    let jb = dir.join("tenant-b/journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_concurrent_progress = false;
    loop {
        let a_done = dir.join("tenant-a/result.json").exists();
        let b_done = dir.join("tenant-b/result.json").exists();
        if !a_done && !b_done && !journal_rows(&ja).is_empty() && !journal_rows(&jb).is_empty()
        {
            saw_concurrent_progress = true;
        }
        if a_done && b_done {
            break;
        }
        assert!(Instant::now() < deadline, "studies did not finish in time");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        saw_concurrent_progress,
        "never observed both studies journaling before either finished"
    );

    let body_a = wait_for_status(addr, "tenant-a", "done", Duration::from_secs(30));
    let body_b = wait_for_status(addr, "tenant-b", "done", Duration::from_secs(30));
    assert!(body_a.contains("\"final_best_loss\""), "{body_a}");
    assert!(body_b.contains("\"final_best_loss\""), "{body_b}");

    // Budgets respected: each journal's non-cached evaluations stay at the
    // submitted max_evaluations.
    for path in [&ja, &jb] {
        let evals = journal_rows(path).iter().filter(|r| !r.cached).count();
        assert!(evals <= 25, "{}: {evals} evaluations > budget", path.display());
        assert!(evals > 0, "{}: no evaluations journaled", path.display());
    }

    // Listing and report routes work on finished studies.
    let (code, body) = request(addr, "GET", "/studies", "");
    assert_eq!(code, 200);
    assert!(body.contains("tenant-a") && body.contains("tenant-b"), "{body}");
    let (code, report) = request(addr, "GET", "/studies/tenant-a/report", "");
    assert_eq!(code, 200, "{report}");
    assert!(report.contains("status: complete"), "{report}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_journal_study_resumes_to_the_same_answer() {
    let dir = tmp_dir("resume");
    let spec =
        r#"{"name":"resume-me","dataset":"moons","engine":"random","max_evaluations":12,"seed":3}"#;
    let server = Server::start(ServeConfig {
        dir: dir.clone(),
        workers: 2,
        port: 0,
        resume: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let (code, body) = request(server.addr(), "POST", "/studies", spec);
    assert_eq!(code, 201, "{body}");
    let body = wait_for_status(server.addr(), "resume-me", "done", Duration::from_secs(60));
    server.shutdown();

    let study_dir = dir.join("resume-me");
    let journal = study_dir.join("journal.jsonl");
    let full_rows = journal_rows(&journal);
    assert!(full_rows.len() >= 4, "need rows to truncate");
    let original_best = body
        .split("\"final_best_loss\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .map(|s| s.to_string())
        .expect("final_best_loss in status");

    // Simulate kill -9: journal cut mid-write, no terminal result.json.
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut torn = lines[..lines.len() / 2].join("\n");
    torn.push_str("\n{\"schema\":1,\"trial\":9999,\"wor");
    std::fs::write(&journal, torn).unwrap();
    std::fs::remove_file(study_dir.join("result.json")).unwrap();

    // Without --resume the interrupted study is surfaced as failed, not
    // silently restarted.
    let server = Server::start(ServeConfig {
        dir: dir.clone(),
        workers: 2,
        port: 0,
        resume: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let (code, body) = request(server.addr(), "GET", "/studies/resume-me", "");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"failed\""), "{body}");
    server.shutdown();

    // With resume the study is re-driven from its journal to the same
    // terminal answer, with no duplicate trial ids.
    let server = Server::start(ServeConfig {
        dir: dir.clone(),
        workers: 2,
        port: 0,
        resume: true,
        ..ServeConfig::default()
    })
    .unwrap();
    let body = wait_for_status(server.addr(), "resume-me", "done", Duration::from_secs(60));
    server.shutdown();

    let resumed_rows = journal_rows(&journal);
    let mut ids: Vec<u64> = resumed_rows.iter().map(|r| r.trial_id).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate trial ids after resume");
    assert_eq!(
        resumed_rows.len(),
        full_rows.len(),
        "resumed schedule must re-derive the same trials"
    );
    assert!(
        body.contains(&format!("\"final_best_loss\":{original_best}")),
        "resumed best loss drifted: wanted {original_best}, got {body}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_and_error_routes_behave() {
    let dir = tmp_dir("routes");
    let server = Server::start(ServeConfig {
        dir: dir.clone(),
        workers: 1,
        port: 0,
        resume: false,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Bad specs 400 with a reason.
    let (code, body) = request(addr, "POST", "/studies", r#"{"dataset":"mnist"}"#);
    assert_eq!(code, 400);
    assert!(body.contains("unknown synthetic dataset"), "{body}");

    // Unknown study / route → 404; wrong method → 405.
    let (code, _) = request(addr, "GET", "/studies/nope", "");
    assert_eq!(code, 404);
    let (code, _) = request(addr, "GET", "/nothing/here", "");
    assert_eq!(code, 404);
    let (code, _) = request(addr, "PUT", "/studies", "");
    assert_eq!(code, 405);

    // A long study can be cancelled; duplicate names conflict while the
    // first study holds the id.
    let spec =
        r#"{"name":"longrun","dataset":"classification","engine":"bo","max_evaluations":500}"#;
    let (code, _) = request(addr, "POST", "/studies", spec);
    assert_eq!(code, 201);
    let (code, body) = request(addr, "POST", "/studies", spec);
    assert_eq!(code, 409, "{body}");
    let (code, body) = request(addr, "DELETE", "/studies/longrun", "");
    assert_eq!(code, 202, "{body}");
    wait_for_status(addr, "longrun", "cancelled", Duration::from_secs(60));
    assert!(dir.join("longrun/result.json").exists());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
