//! Integration tests for the observability layer: a traced `fit` run must
//! produce a trace whose trial spans join the journal one-to-one, a metrics
//! snapshot with nonzero cache and worker figures, and a report that renders
//! from the three artifacts.

use std::collections::HashMap;
use std::path::PathBuf;

use volcanoml_core::{SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::Task;
use volcanoml_obs::json::{parse_object, JsonValue};
use volcanoml_obs::report::render_report;

fn dataset(seed: u64) -> volcanoml_data::Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: 240,
            n_features: 8,
            n_informative: 5,
            n_redundant: 0,
            n_classes: 2,
            class_sep: 1.2,
            flip_y: 0.04,
            weights: Vec::new(),
        },
        seed,
    )
}

struct RunArtifacts {
    journal: String,
    trace: String,
    metrics: String,
    cache_hits: u64,
    cache_misses: u64,
}

/// Runs one traced search and reads back the three files.
fn traced_run(n_workers: usize, seed: u64) -> RunArtifacts {
    let dir = std::env::temp_dir().join("volcanoml-observability-test");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = format!("{}-{}-{}", std::process::id(), n_workers, seed);
    let journal_path: PathBuf = dir.join(format!("journal-{stem}.jsonl"));
    let trace_path: PathBuf = dir.join(format!("trace-{stem}.jsonl"));
    let metrics_path: PathBuf = dir.join(format!("metrics-{stem}.json"));

    let d = dataset(seed);
    let options = VolcanoMlOptions {
        max_evaluations: 14,
        seed,
        n_workers,
        journal_path: Some(journal_path.clone()),
        trace_path: Some(trace_path.clone()),
        metrics_path: Some(metrics_path.clone()),
        ..Default::default()
    };
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
    let fitted = engine.fit(&d).unwrap();
    assert!(fitted.report.best_loss.is_finite());

    let out = RunArtifacts {
        journal: std::fs::read_to_string(&journal_path).unwrap(),
        trace: std::fs::read_to_string(&trace_path).unwrap(),
        metrics: std::fs::read_to_string(&metrics_path).unwrap(),
        cache_hits: fitted.report.cache_hits,
        cache_misses: fitted.report.cache_misses,
    };
    std::fs::remove_file(&journal_path).ok();
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
    out
}

#[test]
fn every_journal_row_joins_exactly_one_trial_span() {
    let run = traced_run(2, 21);

    // Every trace line parses (no torn lines even with a pool attached).
    let mut trial_spans: HashMap<i64, usize> = HashMap::new();
    for line in run.trace.lines() {
        let obj = parse_object(line).unwrap_or_else(|| panic!("bad trace line {line}"));
        let kind = obj.get("kind").and_then(JsonValue::as_str).unwrap();
        let trial = obj.get("trial").and_then(JsonValue::as_i64).unwrap();
        if kind == "trial" {
            assert!(trial >= 0, "trial span without id: {line}");
            *trial_spans.entry(trial).or_default() += 1;
        }
    }
    assert!(!trial_spans.is_empty(), "trace has no trial spans");

    let mut journal_rows = 0usize;
    for line in run.journal.lines() {
        let obj = parse_object(line).unwrap_or_else(|| panic!("bad journal line {line}"));
        let trial = obj.get("trial").and_then(JsonValue::as_i64).unwrap();
        assert_eq!(
            trial_spans.get(&trial),
            Some(&1),
            "journal trial {trial} does not join exactly one trial span"
        );
        // Satellite: arm/digest join keys present on every row.
        let arm = obj.get("arm").and_then(JsonValue::as_str).unwrap();
        let digest = obj.get("digest").and_then(JsonValue::as_str).unwrap();
        assert!(!arm.is_empty(), "empty arm in {line}");
        assert_eq!(digest.len(), 16, "digest not 16 hex chars in {line}");
        journal_rows += 1;
    }
    assert_eq!(
        journal_rows,
        trial_spans.len(),
        "trial spans without journal rows"
    );
}

#[test]
fn metrics_snapshot_has_nonzero_cache_and_worker_figures() {
    let run = traced_run(2, 22);
    let obj = parse_object(&run.metrics).unwrap();
    let counters = obj.get("counters").and_then(JsonValue::as_obj).unwrap();
    let gauges = obj.get("gauges").and_then(JsonValue::as_obj).unwrap();
    let histograms = obj.get("histograms").and_then(JsonValue::as_obj).unwrap();

    let counter = |name: &str| {
        counters
            .get(name)
            .and_then(JsonValue::as_i64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    // The search revisits configurations (seeds + promotions), so the result
    // cache sees traffic; misses are every real fit.
    assert!(counter("cache.result.misses") > 0);
    assert_eq!(
        counter("cache.result.hits") as u64 + counter("cache.result.misses") as u64,
        run.cache_hits + run.cache_misses,
    );
    assert!(counter("trial.total") > 0);
    assert!(counter("binned.matrices_built") >= 0);

    // Worker utilization: at least one worker accumulated busy time.
    let busy: f64 = gauges
        .iter()
        .filter(|(k, _)| k.starts_with("worker.") && k.ends_with(".busy_s"))
        .filter_map(|(_, v)| v.as_f64())
        .sum();
    assert!(busy > 0.0, "no worker busy time in gauges: {gauges:?}");
    assert!(gauges.get("run.evaluations").and_then(JsonValue::as_f64).unwrap() > 0.0);

    // Cost histogram observed at least one trial.
    let cost = histograms
        .get("trial.cost_s")
        .and_then(JsonValue::as_obj)
        .unwrap();
    assert!(cost.get("count").and_then(JsonValue::as_i64).unwrap() > 0);
}

#[test]
fn report_renders_from_a_real_run() {
    let run = traced_run(2, 23);
    let report = render_report(&run.trace, Some(&run.journal), Some(&run.metrics)).unwrap();
    assert!(report.contains("Per-arm convergence"), "{report}");
    assert!(report.contains("Budget allocation by block path"), "{report}");
    assert!(report.contains("Cache efficiency"), "{report}");
    assert!(!report.contains("UNMATCHED"), "{report}");
}

#[test]
fn serial_runs_are_traced_too() {
    let run = traced_run(1, 24);
    assert!(run.trace.lines().count() > 0);
    let joined = render_report(&run.trace, Some(&run.journal), Some(&run.metrics)).unwrap();
    assert!(!joined.contains("UNMATCHED"), "{joined}");
}
