//! Gather-counter assertions for the zero-copy dataset-view trial path.
//!
//! `volcanoml_data::view::stats` counters are process-global, so every test
//! here serializes on one mutex and asserts *deltas* across its own
//! critical section. Keeping these tests in their own binary (their own
//! process) prevents interference from the rest of the suite.

use std::sync::Mutex;
use volcanoml_core::{Evaluator, SpaceDef, SpaceTier, ValidationStrategy};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::view::stats;
use volcanoml_data::{Dataset, Metric, Task};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn dataset() -> Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: 240,
            n_features: 8,
            n_informative: 5,
            n_redundant: 0,
            n_classes: 2,
            class_sep: 1.8,
            flip_y: 0.0,
            weights: Vec::new(),
        },
        11,
    )
}

/// Regression test for the CV constructor's old throwaway
/// `data.subset(&[0])` placeholder: building a CV evaluator must perform no
/// row gathers at all — the validation slot is an empty view over the
/// shared storage.
#[test]
fn cv_setup_performs_no_row_gathers() {
    let _g = lock();
    let data = dataset();
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let (bytes0, skips0) = stats::snapshot();
    let _ev = Evaluator::with_strategy(
        space,
        &data,
        Metric::BalancedAccuracy,
        ValidationStrategy::CrossValidation { folds: 3 },
        0,
    )
    .unwrap();
    let (bytes1, skips1) = stats::snapshot();
    assert_eq!(bytes1 - bytes0, 0, "CV setup gathered rows");
    assert_eq!(skips1 - skips0, 0, "CV setup touched view features");
}

/// Acceptance check: a full-fidelity holdout trial whose FE-cache entry is
/// warm copies zero dataset bytes. (With materialized holdout splits even
/// the *cold* full-fidelity trial borrows rather than gathers.)
#[test]
fn warm_fe_full_fidelity_holdout_copies_zero_bytes() {
    let _g = lock();
    let data = dataset();
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let ev = Evaluator::new(space, &data, Metric::BalancedAccuracy, 0).unwrap();
    let defaults = ev.space().defaults();

    // Cold full-fidelity trial: full views borrow — still zero bytes.
    let (bytes0, _) = stats::snapshot();
    let cold = ev.evaluate(&defaults, 1.0);
    let (bytes1, skips1) = stats::snapshot();
    assert!(!cold.fe_cached && !cold.cached);
    assert_eq!(bytes1 - bytes0, 0, "cold full-fidelity holdout gathered");
    assert!(skips1 > 0, "full-view borrows should count skipped gathers");

    // Warm-FE trial (different algorithm, same FE sub-assignment): the FE
    // cache hit means no view access at all — zero bytes, zero gathers.
    let mut other = defaults.clone();
    other.insert("algorithm".to_string(), 1.0);
    let (bytes2, _) = stats::snapshot();
    let warm = ev.evaluate(&other, 1.0);
    let (bytes3, _) = stats::snapshot();
    assert!(warm.fe_cached, "second trial should hit the FE cache");
    assert_eq!(bytes3 - bytes2, 0, "warm-FE trial gathered rows");
}

/// Sub-full fidelities are index views: they gather (once, on FE miss) and
/// the gathered byte count matches rows × cols × 8.
#[test]
fn subsampled_trials_gather_exactly_once_per_fe_miss() {
    let _g = lock();
    let data = dataset();
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let ev = Evaluator::new(space, &data, Metric::BalancedAccuracy, 0).unwrap();
    let defaults = ev.space().defaults();

    let (bytes0, _) = stats::snapshot();
    let out = ev.evaluate(&defaults, 0.5);
    let (bytes1, _) = stats::snapshot();
    assert!(out.loss.is_finite());
    let gathered = bytes1 - bytes0;
    assert!(gathered > 0, "sub-fidelity trial must gather its subset");
    // 240 samples × 0.75 train split × 0.5 fidelity = 90 rows, 8 features.
    assert_eq!(gathered, 90 * 8 * 8, "unexpected gather volume");

    // Result-cache hit: zero additional bytes.
    let (bytes2, _) = stats::snapshot();
    let repeat = ev.evaluate(&defaults, 0.5);
    let (bytes3, _) = stats::snapshot();
    assert!(repeat.cached);
    assert_eq!(bytes3 - bytes2, 0, "result-cache hit gathered rows");

    // FE-cache hit at the same fidelity: zero additional bytes.
    let mut other = defaults.clone();
    other.insert("algorithm".to_string(), 1.0);
    let (bytes4, _) = stats::snapshot();
    let warm = ev.evaluate(&other, 0.5);
    let (bytes5, _) = stats::snapshot();
    assert!(warm.fe_cached);
    assert_eq!(bytes5 - bytes4, 0, "warm-FE sub-fidelity trial gathered");
}

/// CV evaluation gathers each fold's train/valid subsets on the cold pass
/// and nothing once the FE cache is warm.
#[test]
fn cv_trials_stop_gathering_once_fe_cache_is_warm() {
    let _g = lock();
    let data = dataset();
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let ev = Evaluator::with_strategy(
        space,
        &data,
        Metric::BalancedAccuracy,
        ValidationStrategy::CrossValidation { folds: 3 },
        0,
    )
    .unwrap();
    let defaults = ev.space().defaults();

    let (bytes0, _) = stats::snapshot();
    let cold = ev.evaluate(&defaults, 1.0);
    let (bytes1, _) = stats::snapshot();
    assert!(cold.loss.is_finite());
    // 3 folds × (train 160 + valid 80 rows) × 8 features × 8 bytes.
    assert_eq!(bytes1 - bytes0, 3 * 240 * 8 * 8, "unexpected CV gather volume");

    let mut other = defaults.clone();
    other.insert("algorithm".to_string(), 1.0);
    let (bytes2, _) = stats::snapshot();
    let warm = ev.evaluate(&other, 1.0);
    let (bytes3, _) = stats::snapshot();
    assert!(warm.fe_cached, "CV folds should all hit the FE cache");
    assert_eq!(bytes3 - bytes2, 0, "warm-FE CV trial gathered rows");
}
