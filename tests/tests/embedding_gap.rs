//! Verifies the mechanism behind the §5.3 embedding-selection experiment:
//! the vision-like dataset is hard from raw pixels but easy after the
//! matched pre-trained extractor — independent of any search.

use volcanoml_data::repository::{vision_dataset, vision_dataset_seed};
use volcanoml_data::{metrics::balanced_accuracy, train_test_split};
use volcanoml_fe::embedding::PretrainedEmbedding;
use volcanoml_fe::Transformer;
use volcanoml_models::neighbors::{KnnClassifier, KnnWeights};
use volcanoml_models::svm::{Kernel, SvmClassifier};
use volcanoml_models::Estimator;

fn knn_accuracy(
    x_train: &volcanoml_linalg::Matrix,
    y_train: &[f64],
    x_test: &volcanoml_linalg::Matrix,
    y_test: &[f64],
) -> f64 {
    let mut m = KnnClassifier::new(7, KnnWeights::Distance);
    m.fit(x_train, y_train).unwrap();
    balanced_accuracy(y_test, &m.predict(x_test).unwrap())
}

#[test]
fn matched_embedding_creates_a_large_accuracy_gap() {
    let d = vision_dataset();
    let (train, test) = train_test_split(&d, 0.25, 0).unwrap();

    // Raw pixels: k-NN in 128 noisy dimensions.
    let raw = knn_accuracy(&train.x, &train.y, &test.x, &test.y);

    // Matched extractor: same classifier on recovered latents.
    let mut emb = PretrainedEmbedding::matched(vision_dataset_seed(), 8);
    emb.fit(&train.x, &train.y).unwrap();
    let zt = emb.transform(&train.x).unwrap();
    let zv = emb.transform(&test.x).unwrap();
    let embedded = knn_accuracy(&zt, &train.y, &zv, &test.y);

    assert!(raw < 0.8, "raw pixels too easy: {raw}");
    assert!(embedded > 0.8, "embedding not informative enough: {embedded}");
    assert!(
        embedded - raw > 0.1,
        "gap too small: raw {raw} vs embedded {embedded}"
    );
}

#[test]
fn kernel_svm_also_benefits_from_the_embedding() {
    let d = vision_dataset();
    let (train, test) = train_test_split(&d, 0.25, 1).unwrap();
    let mut emb = PretrainedEmbedding::matched(vision_dataset_seed(), 8);
    emb.fit(&train.x, &train.y).unwrap();
    let zt = emb.transform(&train.x).unwrap();
    let zv = emb.transform(&test.x).unwrap();
    let mut svm = SvmClassifier::new(5.0, Kernel::Rbf { gamma: 0.5 }, 0);
    svm.fit(&zt, &train.y).unwrap();
    let acc = balanced_accuracy(&test.y, &svm.predict(&zv).unwrap());
    assert!(acc > 0.8, "SVM on latents: {acc}");
}
