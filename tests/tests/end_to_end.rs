//! Cross-crate integration tests: the full AutoML stack end to end.

use volcanoml_core::{
    EngineKind, PlanSpec, SpaceTier, VolcanoML, VolcanoMlOptions,
};
use volcanoml_data::synthetic::{
    inject_missing, make_categorical, make_classification, make_moons, make_regression,
    ClassificationSpec, RegressionSpec,
};
use volcanoml_data::{train_test_split, Metric, Task};

fn options(n: usize, seed: u64) -> VolcanoMlOptions {
    VolcanoMlOptions {
        max_evaluations: n,
        seed,
        ..Default::default()
    }
}

#[test]
fn classification_pipeline_beats_chance_comfortably() {
    let d = make_classification(
        &ClassificationSpec {
            n_samples: 400,
            n_features: 10,
            n_informative: 6,
            n_redundant: 2,
            n_classes: 3,
            class_sep: 1.2,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        1,
    );
    let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Medium, options(30, 0));
    let fitted = engine.fit(&train).unwrap();
    let acc = fitted.score(&test, Metric::BalancedAccuracy).unwrap();
    assert!(acc > 0.7, "balanced accuracy {acc}");
}

#[test]
fn nonlinear_task_selects_a_nonlinear_model() {
    // On moons with noise features, linear models cap out; the search should
    // find something better than logistic regression's ceiling.
    let d = make_moons(500, 0.15, 2, 3);
    let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Medium, options(40, 1));
    let fitted = engine.fit(&train).unwrap();
    let acc = fitted.score(&test, Metric::BalancedAccuracy).unwrap();
    assert!(acc > 0.85, "balanced accuracy {acc}");
}

#[test]
fn regression_stack_works() {
    let d = make_regression(
        &RegressionSpec {
            n_samples: 350,
            n_features: 8,
            n_informative: 5,
            noise: 0.4,
            nonlinear: true,
        },
        5,
    );
    let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
    let engine = VolcanoML::with_tier(Task::Regression, SpaceTier::Medium, options(30, 2));
    let fitted = engine.fit(&train).unwrap();
    let r2 = fitted.score(&test, Metric::R2).unwrap();
    assert!(r2 > 0.5, "R² {r2}");
}

#[test]
fn missing_values_and_categoricals_flow_through() {
    let d = inject_missing(&make_categorical(400, 3, 4, 4, 0.05, 7), 0.1, 8);
    assert!(d.has_missing());
    let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options(20, 3));
    let fitted = engine.fit(&train).unwrap();
    let acc = fitted.score(&test, Metric::BalancedAccuracy).unwrap();
    assert!(acc > 0.6, "balanced accuracy {acc}");
}

#[test]
fn all_engines_complete_on_the_same_plan() {
    let d = make_classification(&ClassificationSpec::default(), 9);
    for engine_kind in [
        EngineKind::Bo,
        EngineKind::Random,
        EngineKind::SuccessiveHalving,
        EngineKind::Hyperband,
        EngineKind::MfesHb,
    ] {
        let engine = VolcanoML::with_tier(
            Task::Classification,
            SpaceTier::Small,
            VolcanoMlOptions {
                plan: PlanSpec::volcano_default(engine_kind),
                max_evaluations: 25,
                seed: 4,
                ..Default::default()
            },
        );
        let fitted = engine
            .fit(&d)
            .unwrap_or_else(|e| panic!("{}: {e}", engine_kind.name()));
        assert!(
            fitted.report.best_loss.is_finite(),
            "{} produced no finite best",
            engine_kind.name()
        );
    }
}

#[test]
fn reports_are_internally_consistent() {
    let d = make_classification(&ClassificationSpec::default(), 11);
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options(20, 5));
    let fitted = engine.fit(&d).unwrap();
    let r = &fitted.report;
    // The trajectory's final best equals the reported best loss.
    assert_eq!(r.trajectory.last().unwrap().2, r.best_loss);
    // Incumbent steps are strictly improving.
    assert!(r
        .incumbent_steps
        .windows(2)
        .all(|w| w[1].2 < w[0].2));
    // The best assignment is the last incumbent.
    let last = &r.incumbent_steps.last().unwrap().3;
    assert_eq!(last, &r.best_assignment);
    // Top assignments are sorted by loss.
    assert!(r
        .top_assignments
        .windows(2)
        .all(|w| w[0].1 <= w[1].1));
}

#[test]
fn per_dataset_search_is_reproducible_across_processes() {
    // Byte-level determinism of the whole stack given fixed seeds.
    let d = make_classification(&ClassificationSpec::default(), 13);
    let run = |seed| {
        let engine =
            VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options(15, seed));
        let fitted = engine.fit(&d).unwrap();
        (
            fitted.report.best_loss,
            fitted.report.n_evaluations,
            fitted.report.best_assignment.len(),
        )
    };
    assert_eq!(run(7), run(7));
    // And different seeds explore differently.
    let a = run(7);
    let b = run(8);
    assert!(a != b || a.0 == b.0);
}
