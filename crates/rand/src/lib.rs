//! In-workspace PRNG shim imported under the name `rand`.
//!
//! The workspace used to pin the external `rand` crate, which made the
//! hermetic (offline) tier-1 build impossible. This crate re-implements the
//! small API surface the workspace actually uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], `random::<f64|u64|bool>()`, and
//! `random_range` over integer ranges — on top of a splitmix64-seeded
//! xoshiro256++ generator. It is *API*-compatible with `rand`, not
//! *stream*-compatible: seeds produce different (but equally deterministic)
//! sequences than the external crate would.
//!
//! The seed-derivation discipline (`volcanoml_data::rand_util::derive_seed`)
//! is unchanged: every stochastic component takes an explicit `u64` seed, so
//! reproducibility guarantees across the workspace are preserved.

use std::ops::{Range, RangeInclusive};

/// Construction of seedable generators (the subset of `rand::SeedableRng`
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of random `u64` words. Mirrors `rand::Rng` as an object-safe
/// core; all sampling helpers live on [`RngExt`].
pub trait Rng {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from a raw word stream via `random::<T>()`.
pub trait Standard: Sized {
    /// Draws one value, pulling words from `next` as needed.
    fn sample(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for u64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> u64 {
        next()
    }
}

impl Standard for f64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(next: &mut dyn FnMut() -> u64) -> bool {
        // Use a high bit; low bits of some generators are weaker.
        next() >> 63 == 1
    }
}

impl Standard for u32 {
    fn sample(next: &mut dyn FnMut() -> u64) -> u32 {
        (next() >> 32) as u32
    }
}

/// Ranges usable with `random_range`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

/// Unbiased-enough bounded draw via 128-bit multiply-shift.
fn bounded(word: u64, width: u64) -> u64 {
    ((word as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let width = (self.end - self.start) as u64;
                self.start + bounded(next(), width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let width = (hi - lo) as u64 + 1;
                if width == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo + next() as $t;
                }
                lo + bounded(next(), width) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> i64 {
        assert!(self.start < self.end, "empty range in random_range");
        let width = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(bounded(next(), width) as i64)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = f64::sample(next);
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling helpers over any [`Rng`] (the shape of `rand`'s extension
/// trait; blanket-implemented so importing either trait works).
pub trait RngExt: Rng {
    /// Samples a value of type `T` (`f64` in `[0, 1)`, raw `u64`, fair
    /// `bool`).
    fn random<T: Standard>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::sample(&mut next)
    }

    /// Samples uniformly from a range (`0..n`, `0..=n`, float ranges).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// splitmix64 step — used to expand the seed into the xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through splitmix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn range_draws_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(3..=5usize);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
