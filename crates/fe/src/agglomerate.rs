//! Feature agglomeration — auto-sklearn's `feature_agglomeration` operator:
//! hierarchically clusters *features* by correlation and replaces each
//! cluster with its mean, a denoising alternative to PCA that keeps the
//! output interpretable in terms of input groups.

use crate::{FeError, Result, Transformer};
use volcanoml_linalg::Matrix;

/// Agglomerative feature clustering (average linkage over the absolute
/// Pearson correlation), reducing `d` features to `n_clusters` means.
#[derive(Debug, Clone)]
pub struct FeatureAgglomeration {
    /// Target number of output features (clamped to `[1, d]` at fit).
    pub n_clusters: usize,
    clusters: Option<Vec<Vec<usize>>>,
}

impl FeatureAgglomeration {
    /// Creates an unfitted agglomerator.
    pub fn new(n_clusters: usize) -> Self {
        FeatureAgglomeration {
            n_clusters: n_clusters.max(1),
            clusters: None,
        }
    }

    /// The learned clusters (after fit), each a sorted list of columns.
    pub fn clusters(&self) -> Option<&[Vec<usize>]> {
        self.clusters.as_deref()
    }
}

impl Transformer for FeatureAgglomeration {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        let d = x.cols();
        if d == 0 {
            return Err(FeError::Invalid("no features to agglomerate".into()));
        }
        let target = self.n_clusters.clamp(1, d);
        // Pairwise |corr| similarity.
        let cols: Vec<Vec<f64>> = (0..d).map(|c| x.col(c)).collect();
        let mut sim = vec![vec![0.0; d]; d];
        for i in 0..d {
            for j in i + 1..d {
                let s = volcanoml_linalg::stats::pearson(&cols[i], &cols[j]).abs();
                sim[i][j] = s;
                sim[j][i] = s;
            }
        }
        // Greedy average-linkage agglomeration.
        let mut clusters: Vec<Vec<usize>> = (0..d).map(|i| vec![i]).collect();
        while clusters.len() > target {
            // Find the pair of clusters with maximal average similarity.
            let mut best = (0usize, 1usize, f64::NEG_INFINITY);
            for a in 0..clusters.len() {
                for b in a + 1..clusters.len() {
                    let mut total = 0.0;
                    for &i in &clusters[a] {
                        for &j in &clusters[b] {
                            total += sim[i][j];
                        }
                    }
                    let avg = total / (clusters[a].len() * clusters[b].len()) as f64;
                    if avg > best.2 {
                        best = (a, b, avg);
                    }
                }
            }
            let (a, b, _) = best;
            let merged = clusters.remove(b);
            clusters[a].extend(merged);
            clusters[a].sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        self.clusters = Some(clusters);
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let clusters = self.clusters.as_ref().ok_or(FeError::NotFitted)?;
        let max_col = clusters.iter().flatten().copied().max().unwrap_or(0);
        if max_col >= x.cols() {
            return Err(FeError::Invalid(format!(
                "agglomeration references column {max_col}, input has {}",
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), clusters.len());
        for r in 0..x.rows() {
            let src = x.row(r);
            let dst = out.row_mut(r);
            for (k, cluster) in clusters.iter().enumerate() {
                dst[k] = cluster.iter().map(|&c| src[c]).sum::<f64>() / cluster.len() as f64;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_data::rand_util::{rng_from_seed, standard_normal};

    /// 6 features in 3 perfectly correlated pairs.
    fn paired_features(n: usize) -> Matrix {
        let mut rng = rng_from_seed(0);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let a = standard_normal(&mut rng);
            let b = standard_normal(&mut rng);
            let c = standard_normal(&mut rng);
            rows.push(vec![a, 2.0 * a, b, -b, c, 0.5 * c]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn merges_correlated_pairs() {
        let x = paired_features(200);
        let mut agg = FeatureAgglomeration::new(3);
        agg.fit(&x, &[]).unwrap();
        let clusters = agg.clusters().unwrap();
        assert_eq!(clusters.len(), 3);
        let as_sets: Vec<Vec<usize>> = clusters.to_vec();
        assert!(as_sets.contains(&vec![0, 1]), "{as_sets:?}");
        assert!(as_sets.contains(&vec![2, 3]), "{as_sets:?}");
        assert!(as_sets.contains(&vec![4, 5]), "{as_sets:?}");
    }

    #[test]
    fn transform_width_matches_clusters() {
        let x = paired_features(100);
        let mut agg = FeatureAgglomeration::new(3);
        let out = agg.fit_transform(&x, &[]).unwrap();
        assert_eq!(out.shape(), (100, 3));
        // Cluster {0,1} mean = (a + 2a)/2 = 1.5a.
        assert!((out.get(0, 0) - 1.5 * x.get(0, 0)).abs() < 1e-9);
    }

    #[test]
    fn target_clamped_to_feature_count() {
        let x = paired_features(50);
        let mut agg = FeatureAgglomeration::new(100);
        let out = agg.fit_transform(&x, &[]).unwrap();
        assert_eq!(out.cols(), 6); // identity grouping
        let mut one = FeatureAgglomeration::new(1);
        let out1 = one.fit_transform(&x, &[]).unwrap();
        assert_eq!(out1.cols(), 1);
    }

    #[test]
    fn unfitted_errors() {
        let agg = FeatureAgglomeration::new(2);
        assert!(agg.transform(&Matrix::zeros(1, 4)).is_err());
    }

    #[test]
    fn width_mismatch_errors() {
        let x = paired_features(50);
        let mut agg = FeatureAgglomeration::new(2);
        agg.fit(&x, &[]).unwrap();
        assert!(agg.transform(&Matrix::zeros(1, 2)).is_err());
    }
}
