//! One-hot encoding of categorical columns.

use crate::{FeError, Result};
use volcanoml_data::FeatureType;
use volcanoml_linalg::Matrix;

/// One-hot encoder driven by declared feature types: categorical columns are
/// expanded to indicator columns, numerical columns pass through (order:
/// numerical first, then the expanded categoricals).
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    numerical: Vec<usize>,
    categorical: Vec<(usize, usize)>, // (column, cardinality)
    fitted: bool,
}

impl OneHotEncoder {
    /// Builds an encoder from declared feature types.
    pub fn from_feature_types(types: &[FeatureType]) -> Self {
        let mut numerical = Vec::new();
        let mut categorical = Vec::new();
        for (i, t) in types.iter().enumerate() {
            match t {
                FeatureType::Numerical => numerical.push(i),
                FeatureType::Categorical(card) => categorical.push((i, (*card).max(1))),
            }
        }
        OneHotEncoder {
            numerical,
            categorical,
            fitted: true,
        }
    }

    /// Output width after encoding.
    pub fn output_width(&self) -> usize {
        self.numerical.len() + self.categorical.iter().map(|&(_, c)| c).sum::<usize>()
    }

    /// True when no column needs encoding (transform is then a copy).
    pub fn is_identity(&self) -> bool {
        self.categorical.is_empty()
    }

    /// Applies the encoding. Out-of-range category codes activate no
    /// indicator (all-zero block), which is the robust choice for unseen
    /// categories at test time.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(FeError::NotFitted);
        }
        let expected = self.numerical.len() + self.categorical.len();
        if x.cols() != expected {
            return Err(FeError::Invalid(format!(
                "encoder expects {expected} columns, got {}",
                x.cols()
            )));
        }
        if self.is_identity() {
            return Ok(x.clone());
        }
        let width = self.output_width();
        let mut out = Matrix::zeros(x.rows(), width);
        for r in 0..x.rows() {
            let src = x.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in self.numerical.iter().enumerate() {
                dst[j] = src[c];
            }
            let mut offset = self.numerical.len();
            for &(c, card) in &self.categorical {
                let v = src[c];
                if v.is_finite() && v >= 0.0 {
                    let code = v.round() as usize;
                    if code < card {
                        dst[offset + code] = 1.0;
                    }
                }
                offset += card;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_mixed_columns() {
        let types = vec![
            FeatureType::Categorical(3),
            FeatureType::Numerical,
            FeatureType::Categorical(2),
        ];
        let enc = OneHotEncoder::from_feature_types(&types);
        assert_eq!(enc.output_width(), 1 + 3 + 2);
        let x = Matrix::from_vec(2, 3, vec![1.0, 0.5, 0.0, 2.0, -0.5, 1.0]).unwrap();
        let out = enc.transform(&x).unwrap();
        assert_eq!(out.row(0), &[0.5, 0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(out.row(1), &[-0.5, 0.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn identity_for_all_numerical() {
        let types = vec![FeatureType::Numerical; 3];
        let enc = OneHotEncoder::from_feature_types(&types);
        assert!(enc.is_identity());
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(enc.transform(&x).unwrap().data(), x.data());
    }

    #[test]
    fn unseen_category_is_all_zero() {
        let types = vec![FeatureType::Categorical(2)];
        let enc = OneHotEncoder::from_feature_types(&types);
        let x = Matrix::from_vec(1, 1, vec![7.0]).unwrap();
        let out = enc.transform(&x).unwrap();
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn width_mismatch_errors() {
        let types = vec![FeatureType::Numerical];
        let enc = OneHotEncoder::from_feature_types(&types);
        assert!(enc.transform(&Matrix::zeros(1, 3)).is_err());
    }
}
