//! Categorical-column encoders: one-hot (the baseline), smoothed target
//! encoding, and feature hashing — plus the quantile binner used as a
//! transform-stage operator. The latter three enter the search space only
//! through incremental expansion (see `space::fe_expansions`).

use crate::{FeError, Result};
use volcanoml_data::FeatureType;
use volcanoml_linalg::Matrix;

/// One-hot encoder driven by declared feature types: categorical columns are
/// expanded to indicator columns, numerical columns pass through (order:
/// numerical first, then the expanded categoricals).
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    numerical: Vec<usize>,
    categorical: Vec<(usize, usize)>, // (column, cardinality)
    fitted: bool,
}

impl OneHotEncoder {
    /// Builds an encoder from declared feature types.
    pub fn from_feature_types(types: &[FeatureType]) -> Self {
        let mut numerical = Vec::new();
        let mut categorical = Vec::new();
        for (i, t) in types.iter().enumerate() {
            match t {
                FeatureType::Numerical => numerical.push(i),
                FeatureType::Categorical(card) => categorical.push((i, (*card).max(1))),
            }
        }
        OneHotEncoder {
            numerical,
            categorical,
            fitted: true,
        }
    }

    /// Output width after encoding.
    pub fn output_width(&self) -> usize {
        self.numerical.len() + self.categorical.iter().map(|&(_, c)| c).sum::<usize>()
    }

    /// True when no column needs encoding (transform is then a copy).
    pub fn is_identity(&self) -> bool {
        self.categorical.is_empty()
    }

    /// Applies the encoding. Out-of-range category codes activate no
    /// indicator (all-zero block), which is the robust choice for unseen
    /// categories at test time.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(FeError::NotFitted);
        }
        let expected = self.numerical.len() + self.categorical.len();
        if x.cols() != expected {
            return Err(FeError::Invalid(format!(
                "encoder expects {expected} columns, got {}",
                x.cols()
            )));
        }
        if self.is_identity() {
            return Ok(x.clone());
        }
        let width = self.output_width();
        let mut out = Matrix::zeros(x.rows(), width);
        for r in 0..x.rows() {
            let src = x.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in self.numerical.iter().enumerate() {
                dst[j] = src[c];
            }
            let mut offset = self.numerical.len();
            for &(c, card) in &self.categorical {
                let v = src[c];
                if v.is_finite() && v >= 0.0 {
                    let code = v.round() as usize;
                    if code < card {
                        dst[offset + code] = 1.0;
                    }
                }
                offset += card;
            }
        }
        Ok(out)
    }
}

/// Splits declared feature types into numerical and categorical column
/// lists (the shared preamble of every categorical encoder).
fn split_types(types: &[FeatureType]) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut numerical = Vec::new();
    let mut categorical = Vec::new();
    for (i, t) in types.iter().enumerate() {
        match t {
            FeatureType::Numerical => numerical.push(i),
            FeatureType::Categorical(card) => categorical.push((i, (*card).max(1))),
        }
    }
    (numerical, categorical)
}

/// Smoothed target encoder: each categorical column collapses to a single
/// column holding the shrunk per-category mean target,
/// `(n·mean + s·global) / (n + s)` — unseen or out-of-range codes fall back
/// to the global mean. Numerical columns pass through first, matching the
/// one-hot column order convention.
#[derive(Debug, Clone)]
pub struct TargetEncoder {
    numerical: Vec<usize>,
    categorical: Vec<(usize, usize)>,
    smoothing: f64,
    global_mean: f64,
    /// Per categorical column: code → encoded value.
    tables: Vec<Vec<f64>>,
    fitted: bool,
}

impl TargetEncoder {
    /// Builds an (unfitted) encoder from declared feature types.
    pub fn from_feature_types(types: &[FeatureType], smoothing: f64) -> Self {
        let (numerical, categorical) = split_types(types);
        TargetEncoder {
            numerical,
            categorical,
            smoothing: smoothing.max(0.0),
            global_mean: 0.0,
            tables: Vec::new(),
            fitted: false,
        }
    }

    /// Output width: numerical passthrough + one column per categorical.
    pub fn output_width(&self) -> usize {
        self.numerical.len() + self.categorical.len()
    }

    /// Fits per-category smoothed target means.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(FeError::Invalid(format!(
                "{} rows but {} targets",
                x.rows(),
                y.len()
            )));
        }
        self.global_mean = if y.is_empty() {
            0.0
        } else {
            y.iter().sum::<f64>() / y.len() as f64
        };
        self.tables.clear();
        for &(c, card) in &self.categorical {
            let mut sums = vec![0.0f64; card];
            let mut counts = vec![0usize; card];
            for (r, &target) in y.iter().enumerate() {
                let v = x.row(r)[c];
                if v.is_finite() && v >= 0.0 {
                    let code = v.round() as usize;
                    if code < card {
                        sums[code] += target;
                        counts[code] += 1;
                    }
                }
            }
            let table: Vec<f64> = (0..card)
                .map(|k| {
                    let n = counts[k] as f64;
                    (sums[k] + self.smoothing * self.global_mean) / (n + self.smoothing).max(1e-12)
                })
                .collect();
            self.tables.push(table);
        }
        self.fitted = true;
        Ok(())
    }

    /// Applies the fitted encoding.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(FeError::NotFitted);
        }
        let expected = self.numerical.len() + self.categorical.len();
        if x.cols() != expected {
            return Err(FeError::Invalid(format!(
                "target encoder expects {expected} columns, got {}",
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), self.output_width());
        for r in 0..x.rows() {
            let src = x.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in self.numerical.iter().enumerate() {
                dst[j] = src[c];
            }
            for (j, (&(c, card), table)) in
                self.categorical.iter().zip(self.tables.iter()).enumerate()
            {
                let v = src[c];
                let code = if v.is_finite() && v >= 0.0 { v.round() as usize } else { card };
                dst[self.numerical.len() + j] =
                    table.get(code).copied().unwrap_or(self.global_mean);
            }
        }
        Ok(out)
    }
}

/// Signed feature hashing of categorical columns: each `(column, code)`
/// pair hashes to one of `buckets` output columns with a ±1 sign, so
/// arbitrary cardinality collapses to a fixed width without a fit pass.
/// Numerical columns pass through first.
#[derive(Debug, Clone)]
pub struct FeatureHasher {
    numerical: Vec<usize>,
    categorical: Vec<(usize, usize)>,
    buckets: usize,
}

impl FeatureHasher {
    /// Builds a hasher with the given bucket count (min 2).
    pub fn from_feature_types(types: &[FeatureType], buckets: usize) -> Self {
        let (numerical, categorical) = split_types(types);
        FeatureHasher {
            numerical,
            categorical,
            buckets: buckets.max(2),
        }
    }

    /// Output width: numerical passthrough + the hash buckets.
    pub fn output_width(&self) -> usize {
        self.numerical.len() + if self.categorical.is_empty() { 0 } else { self.buckets }
    }

    /// FNV-1a over the `(column, code)` pair — deterministic across runs.
    fn hash(col: usize, code: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in (col as u64)
            .to_le_bytes()
            .iter()
            .chain((code as u64).to_le_bytes().iter())
        {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Applies the hashing (stateless — no fit required).
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let expected = self.numerical.len() + self.categorical.len();
        if x.cols() != expected {
            return Err(FeError::Invalid(format!(
                "feature hasher expects {expected} columns, got {}",
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), self.output_width());
        for r in 0..x.rows() {
            let src = x.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in self.numerical.iter().enumerate() {
                dst[j] = src[c];
            }
            let base = self.numerical.len();
            for &(c, _) in &self.categorical {
                let v = src[c];
                if v.is_finite() && v >= 0.0 {
                    let h = Self::hash(c, v.round() as usize);
                    let bucket = (h % self.buckets as u64) as usize;
                    let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
                    dst[base + bucket] += sign;
                }
            }
        }
        Ok(out)
    }
}

/// Quantile binning as a transform-stage operator: every column is mapped
/// to its bin index (scaled into `[0, 1]`) against per-column quantile
/// edges estimated on the training set. Robust to outliers and gives tree
/// and linear models a shared monotone discretization.
#[derive(Debug, Clone)]
pub struct QuantileBinner {
    bins: usize,
    /// Per column: ascending interior edges (`bins - 1` of them).
    edges: Vec<Vec<f64>>,
    fitted: bool,
}

impl QuantileBinner {
    /// Builds an (unfitted) binner with `bins` bins per column (min 2).
    pub fn new(bins: usize) -> Self {
        QuantileBinner {
            bins: bins.max(2),
            edges: Vec::new(),
            fitted: false,
        }
    }

    /// Estimates per-column quantile edges.
    pub fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        self.edges.clear();
        for c in 0..x.cols() {
            let mut col: Vec<f64> = (0..x.rows())
                .map(|r| x.row(r)[c])
                .filter(|v| v.is_finite())
                .collect();
            col.sort_by(f64::total_cmp);
            let edges: Vec<f64> = if col.is_empty() {
                Vec::new()
            } else {
                (1..self.bins)
                    .map(|k| {
                        let q = k as f64 / self.bins as f64;
                        let idx = ((col.len() - 1) as f64 * q).round() as usize;
                        col[idx]
                    })
                    .collect()
            };
            self.edges.push(edges);
        }
        self.fitted = true;
        Ok(())
    }

    /// Maps each value to its scaled bin index.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(FeError::NotFitted);
        }
        if x.cols() != self.edges.len() {
            return Err(FeError::Invalid(format!(
                "binner fitted on {} columns, got {}",
                self.edges.len(),
                x.cols()
            )));
        }
        let scale = 1.0 / (self.bins - 1).max(1) as f64;
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let src = x.row(r);
            let dst = out.row_mut(r);
            for (c, edges) in self.edges.iter().enumerate() {
                let v = src[c];
                let bin = if v.is_finite() {
                    edges.iter().filter(|&&e| v > e).count()
                } else {
                    0
                };
                dst[c] = bin as f64 * scale;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_mixed_columns() {
        let types = vec![
            FeatureType::Categorical(3),
            FeatureType::Numerical,
            FeatureType::Categorical(2),
        ];
        let enc = OneHotEncoder::from_feature_types(&types);
        assert_eq!(enc.output_width(), 1 + 3 + 2);
        let x = Matrix::from_vec(2, 3, vec![1.0, 0.5, 0.0, 2.0, -0.5, 1.0]).unwrap();
        let out = enc.transform(&x).unwrap();
        assert_eq!(out.row(0), &[0.5, 0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(out.row(1), &[-0.5, 0.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn identity_for_all_numerical() {
        let types = vec![FeatureType::Numerical; 3];
        let enc = OneHotEncoder::from_feature_types(&types);
        assert!(enc.is_identity());
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(enc.transform(&x).unwrap().data(), x.data());
    }

    #[test]
    fn unseen_category_is_all_zero() {
        let types = vec![FeatureType::Categorical(2)];
        let enc = OneHotEncoder::from_feature_types(&types);
        let x = Matrix::from_vec(1, 1, vec![7.0]).unwrap();
        let out = enc.transform(&x).unwrap();
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn width_mismatch_errors() {
        let types = vec![FeatureType::Numerical];
        let enc = OneHotEncoder::from_feature_types(&types);
        assert!(enc.transform(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn target_encoder_shrinks_toward_global_mean() {
        let types = vec![FeatureType::Categorical(2), FeatureType::Numerical];
        // Category 0 → y=1, category 1 → y=0; global mean 0.5.
        let x = Matrix::from_vec(4, 2, vec![0.0, 9.0, 0.0, 8.0, 1.0, 7.0, 1.0, 6.0]).unwrap();
        let y = vec![1.0, 1.0, 0.0, 0.0];
        let mut enc = TargetEncoder::from_feature_types(&types, 2.0);
        enc.fit(&x, &y).unwrap();
        let out = enc.transform(&x).unwrap();
        assert_eq!(out.cols(), 2);
        // Numerical passthrough first.
        assert_eq!(out.row(0)[0], 9.0);
        // (2·1 + 2·0.5) / (2 + 2) = 0.75 for category 0.
        assert!((out.row(0)[1] - 0.75).abs() < 1e-12);
        assert!((out.row(2)[1] - 0.25).abs() < 1e-12);
        // Unseen code falls back to the global mean.
        let unseen = Matrix::from_vec(1, 2, vec![5.0, 1.0]).unwrap();
        assert!((enc.transform(&unseen).unwrap().row(0)[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn target_encoder_requires_fit() {
        let types = vec![FeatureType::Categorical(2)];
        let enc = TargetEncoder::from_feature_types(&types, 1.0);
        assert!(enc.transform(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn feature_hasher_collapses_cardinality_deterministically() {
        let types = vec![FeatureType::Categorical(100), FeatureType::Numerical];
        let hasher = FeatureHasher::from_feature_types(&types, 8);
        assert_eq!(hasher.output_width(), 1 + 8);
        let x = Matrix::from_vec(2, 2, vec![42.0, 1.5, 42.0, 2.5]).unwrap();
        let a = hasher.transform(&x).unwrap();
        let b = hasher.transform(&x).unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(a.row(0)[0], 1.5);
        // Exactly one bucket carries the ±1 indicator.
        let nonzero: Vec<f64> = a.row(0)[1..].iter().copied().filter(|v| *v != 0.0).collect();
        assert_eq!(nonzero.len(), 1);
        assert!(nonzero[0].abs() == 1.0);
        // Same code on both rows lands in the same bucket.
        assert_eq!(&a.row(0)[1..], &a.row(1)[1..]);
    }

    #[test]
    fn feature_hasher_all_numerical_is_passthrough_width() {
        let types = vec![FeatureType::Numerical; 3];
        let hasher = FeatureHasher::from_feature_types(&types, 16);
        assert_eq!(hasher.output_width(), 3);
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(hasher.transform(&x).unwrap().data(), x.data());
    }

    #[test]
    fn quantile_binner_discretizes_monotonically() {
        let x = Matrix::from_vec(5, 1, vec![0.0, 1.0, 2.0, 3.0, 100.0]).unwrap();
        let mut b = QuantileBinner::new(4);
        b.fit(&x, &[]).unwrap();
        let out = b.transform(&x).unwrap();
        let col: Vec<f64> = (0..5).map(|r| out.row(r)[0]).collect();
        // Monotone in the input and scaled into [0, 1].
        assert!(col.windows(2).all(|w| w[0] <= w[1]), "{col:?}");
        assert!(col.iter().all(|v| (0.0..=1.0).contains(v)));
        assert_eq!(col[4], 1.0, "outlier lands in the top bin");
        // Width mismatch errors; unfitted errors.
        assert!(b.transform(&Matrix::zeros(1, 2)).is_err());
        assert!(QuantileBinner::new(4).transform(&x).is_err());
    }
}
