//! Class-balancing resamplers (the paper's `balancing` FE stage).
//!
//! `smote` is the operator added in the Table 2 search-space enrichment
//! experiment ("smote_balancer"): auto-sklearn cannot accept this
//! fine-grained addition, VolcanoML can.

use crate::{FeError, Resampler, Result};
use rand::RngExt;
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_linalg::matrix::squared_distance;
use volcanoml_linalg::Matrix;

fn class_indices(y: &[f64]) -> Vec<Vec<usize>> {
    let k = y
        .iter()
        .fold(0usize, |m, &v| m.max(v.max(0.0) as usize + 1))
        .max(1);
    let mut by_class = vec![Vec::new(); k];
    for (i, &label) in y.iter().enumerate() {
        by_class[label as usize].push(i);
    }
    by_class
}

/// No-op balancer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBalance;

impl Resampler for NoBalance {
    fn resample(&self, x: &Matrix, y: &[f64], _seed: u64) -> Result<(Matrix, Vec<f64>)> {
        Ok((x.clone(), y.to_vec()))
    }
}

/// Random oversampling: minority classes are resampled with replacement up to
/// the majority count.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomOversample;

impl Resampler for RandomOversample {
    fn resample(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<(Matrix, Vec<f64>)> {
        let by_class = class_indices(y);
        let max = by_class.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut rng = rng_from_seed(seed);
        let mut keep: Vec<usize> = (0..y.len()).collect();
        for members in by_class.iter().filter(|m| !m.is_empty()) {
            for _ in members.len()..max {
                keep.push(members[rng.random_range(0..members.len())]);
            }
        }
        Ok((x.select_rows(&keep), keep.iter().map(|&i| y[i]).collect()))
    }
}

/// Random undersampling: majority classes are subsampled down to the minority
/// count (but never below 2 samples per class).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomUndersample;

impl Resampler for RandomUndersample {
    fn resample(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<(Matrix, Vec<f64>)> {
        let by_class = class_indices(y);
        let min = by_class
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c.len())
            .min()
            .unwrap_or(0)
            .max(2);
        let mut rng = rng_from_seed(seed);
        let mut keep = Vec::new();
        for members in by_class.iter().filter(|m| !m.is_empty()) {
            if members.len() <= min {
                keep.extend_from_slice(members);
            } else {
                let chosen = volcanoml_data::rand_util::sample_without_replacement(
                    &mut rng,
                    members.len(),
                    min,
                );
                keep.extend(chosen.into_iter().map(|p| members[p]));
            }
        }
        keep.sort_unstable();
        Ok((x.select_rows(&keep), keep.iter().map(|&i| y[i]).collect()))
    }
}

/// SMOTE: synthetic minority oversampling — new minority samples are drawn on
/// segments between a minority point and one of its `k` nearest minority
/// neighbors.
#[derive(Debug, Clone, Copy)]
pub struct Smote {
    /// Neighborhood size.
    pub k_neighbors: usize,
}

impl Smote {
    /// Creates a SMOTE balancer.
    pub fn new(k_neighbors: usize) -> Self {
        Smote {
            k_neighbors: k_neighbors.max(1),
        }
    }
}

impl Resampler for Smote {
    fn resample(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<(Matrix, Vec<f64>)> {
        if x.data().iter().any(|v| v.is_nan()) {
            return Err(FeError::Invalid(
                "SMOTE requires imputed (NaN-free) features".into(),
            ));
        }
        let by_class = class_indices(y);
        let max = by_class.iter().map(|c| c.len()).max().unwrap_or(0);
        let mut rng = rng_from_seed(seed);

        let mut rows: Vec<Vec<f64>> = x.iter_rows().map(|r| r.to_vec()).collect();
        let mut labels = y.to_vec();

        for (class, members) in by_class.iter().enumerate() {
            if members.is_empty() || members.len() >= max {
                continue;
            }
            if members.len() < 2 {
                // Cannot interpolate a single point: duplicate it instead.
                for _ in members.len()..max {
                    rows.push(x.row(members[0]).to_vec());
                    labels.push(class as f64);
                }
                continue;
            }
            let k = self.k_neighbors.min(members.len() - 1);
            // Precompute k-NN among minority members.
            let neighbor_lists: Vec<Vec<usize>> = members
                .iter()
                .map(|&i| {
                    let mut dists: Vec<(usize, f64)> = members
                        .iter()
                        .filter(|&&j| j != i)
                        .map(|&j| (j, squared_distance(x.row(i), x.row(j))))
                        .collect();
                    dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                    dists.truncate(k);
                    dists.into_iter().map(|(j, _)| j).collect()
                })
                .collect();
            for _ in members.len()..max {
                let pick = rng.random_range(0..members.len());
                let base = members[pick];
                let neighbors = &neighbor_lists[pick];
                let other = neighbors[rng.random_range(0..neighbors.len())];
                let t: f64 = rng.random();
                let synth: Vec<f64> = x
                    .row(base)
                    .iter()
                    .zip(x.row(other).iter())
                    .map(|(a, b)| a + t * (b - a))
                    .collect();
                rows.push(synth);
                labels.push(class as f64);
            }
        }
        let out = Matrix::from_rows(&rows).map_err(FeError::from)?;
        Ok((out, labels))
    }
}

/// Balancer choice used by the pipeline.
#[derive(Debug, Clone, Copy)]
pub enum Balancer {
    /// Identity.
    None,
    /// Random oversampling.
    Oversample,
    /// Random undersampling.
    Undersample,
    /// SMOTE with the given neighborhood (the enrichment operator).
    Smote {
        /// Neighborhood size.
        k_neighbors: usize,
    },
}

impl Resampler for Balancer {
    fn resample(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<(Matrix, Vec<f64>)> {
        match self {
            Balancer::None => NoBalance.resample(x, y, seed),
            Balancer::Oversample => RandomOversample.resample(x, y, seed),
            Balancer::Undersample => RandomUndersample.resample(x, y, seed),
            Balancer::Smote { k_neighbors } => Smote::new(*k_neighbors).resample(x, y, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};

    fn imbalanced() -> (Matrix, Vec<f64>) {
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 200,
                n_features: 4,
                n_informative: 3,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.5,
                flip_y: 0.0,
                weights: vec![0.9, 0.1],
            },
            3,
        );
        (d.x, d.y)
    }

    fn counts(y: &[f64]) -> Vec<usize> {
        let mut c = vec![0usize; 2];
        for &v in y {
            c[v as usize] += 1;
        }
        c
    }

    #[test]
    fn oversample_balances_counts() {
        let (x, y) = imbalanced();
        let (nx, ny) = RandomOversample.resample(&x, &y, 0).unwrap();
        let c = counts(&ny);
        assert_eq!(c[0], c[1]);
        assert_eq!(nx.rows(), ny.len());
        assert!(ny.len() > y.len());
    }

    #[test]
    fn undersample_balances_counts() {
        let (x, y) = imbalanced();
        let (nx, ny) = RandomUndersample.resample(&x, &y, 0).unwrap();
        let c = counts(&ny);
        assert_eq!(c[0], c[1]);
        assert!(ny.len() < y.len());
        assert_eq!(nx.rows(), ny.len());
    }

    #[test]
    fn smote_balances_and_synthesizes() {
        let (x, y) = imbalanced();
        let before = counts(&y);
        let (nx, ny) = Smote::new(5).resample(&x, &y, 0).unwrap();
        let after = counts(&ny);
        assert_eq!(after[0], after[1]);
        // Synthetic rows exist beyond the originals.
        assert_eq!(nx.rows(), y.len() + (before[0] - before[1]));
    }

    #[test]
    fn smote_synthetic_points_are_interpolations() {
        // Minority points on a line: synthetic points must stay on it.
        let x = Matrix::from_vec(
            6,
            1,
            vec![0.0, 10.0, 20.0, 100.0, 101.0, 102.0],
        )
        .unwrap();
        let y = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        // Already balanced: nothing to do.
        let (_, ny) = Smote::new(2).resample(&x, &y, 0).unwrap();
        assert_eq!(ny.len(), 6);

        let x2 = Matrix::from_vec(5, 1, vec![0.0, 10.0, 100.0, 101.0, 102.0]).unwrap();
        let y2 = vec![1.0, 1.0, 0.0, 0.0, 0.0];
        let (nx2, ny2) = Smote::new(1).resample(&x2, &y2, 1).unwrap();
        assert_eq!(ny2.len(), 6);
        // The synthetic minority point lies between 0 and 10.
        let v = nx2.get(5, 0);
        assert!((0.0..=10.0).contains(&v), "synthetic {v}");
    }

    #[test]
    fn smote_single_minority_point_duplicates() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 5.0, 6.0, 7.0]).unwrap();
        let y = vec![1.0, 0.0, 0.0, 0.0];
        let (nx, ny) = Smote::new(3).resample(&x, &y, 0).unwrap();
        assert_eq!(counts(&ny), vec![3, 3]);
        assert_eq!(nx.get(4, 0), 0.0);
        assert_eq!(nx.get(5, 0), 0.0);
    }

    #[test]
    fn smote_rejects_nan() {
        let x = Matrix::from_vec(2, 1, vec![f64::NAN, 1.0]).unwrap();
        assert!(Smote::new(1).resample(&x, &[0.0, 1.0], 0).is_err());
    }

    #[test]
    fn none_is_identity() {
        let (x, y) = imbalanced();
        let (nx, ny) = NoBalance.resample(&x, &y, 0).unwrap();
        assert_eq!(nx.data(), x.data());
        assert_eq!(ny, y);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = imbalanced();
        let (a, _) = Smote::new(5).resample(&x, &y, 42).unwrap();
        let (b, _) = Smote::new(5).resample(&x, &y, 42).unwrap();
        assert_eq!(a.data(), b.data());
    }
}
