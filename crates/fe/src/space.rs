//! The FE search-space descriptors consumed by the AutoML layer.
//!
//! Each entry is a hyper-parameter (reusing the zoo's [`ParamDef`] type) plus
//! an optional activation condition on another FE parameter — e.g.
//! `smote_k` is only active when `balancer == smote`. The AutoML layer turns
//! these into conditional variables of its joint space.

use crate::pipeline::FeSpaceOptions;
use volcanoml_data::Task;
use volcanoml_models::{ParamDef, ParamKind};

/// One FE search-space parameter with its activation condition.
#[derive(Debug, Clone, PartialEq)]
pub struct FeParam {
    /// The parameter descriptor (name is the pipeline value-map key).
    pub def: ParamDef,
    /// `Some((parent, values))` ⇒ active only when the categorical FE
    /// parameter `parent` takes one of `values`.
    pub condition: Option<(&'static str, Vec<usize>)>,
}

fn float(name: &'static str, lo: f64, hi: f64, default: f64, log: bool) -> ParamDef {
    ParamDef {
        name,
        kind: ParamKind::Float { lo, hi, default, log },
    }
}

fn int(name: &'static str, lo: i64, hi: i64, default: i64, log: bool) -> ParamDef {
    ParamDef {
        name,
        kind: ParamKind::Int { lo, hi, default, log },
    }
}

fn cat(name: &'static str, choices: Vec<&'static str>, default: usize) -> ParamDef {
    ParamDef {
        name,
        kind: ParamKind::Cat { choices, default },
    }
}

/// Full FE parameter list for a task and enrichment options.
///
/// Choice-index conventions match `pipeline::FePipeline::from_values`:
/// `imputer` ∈ {mean, median, most_frequent}; `rescaler` ∈ {none, standard,
/// minmax, robust, normalizer, quantile}; `balancer` ∈ {none, oversample,
/// undersample, smote?}; `transform` ∈ {none, pca, nystroem, polynomial,
/// select_percentile, variance_threshold}; `embedding` ∈ {none, matched,
/// generic}.
pub fn fe_param_defs(task: Task, options: &FeSpaceOptions) -> Vec<FeParam> {
    let mut out = Vec::new();
    out.push(FeParam {
        def: cat("imputer", vec!["mean", "median", "most_frequent"], 0),
        condition: None,
    });
    if options.embedding.is_some() {
        out.push(FeParam {
            def: cat("embedding", vec!["none", "matched", "generic"], 0),
            condition: None,
        });
    }
    out.push(FeParam {
        def: cat(
            "rescaler",
            vec!["none", "standard", "minmax", "robust", "normalizer", "quantile"],
            1,
        ),
        condition: None,
    });
    out.push(FeParam {
        def: int("rescaler_quantiles", 10, 200, 50, true),
        condition: Some(("rescaler", vec![5])),
    });
    if task == Task::Classification {
        let mut balancers = vec!["none", "oversample", "undersample"];
        if options.include_smote {
            balancers.push("smote");
        }
        out.push(FeParam {
            def: cat("balancer", balancers, 0),
            condition: None,
        });
        if options.include_smote {
            out.push(FeParam {
                def: int("smote_k", 3, 10, 5, false),
                condition: Some(("balancer", vec![3])),
            });
        }
    }
    out.push(FeParam {
        def: cat(
            "transform",
            vec![
                "none",
                "pca",
                "nystroem",
                "polynomial",
                "select_percentile",
                "variance_threshold",
                "feature_agglomeration",
            ],
            0,
        ),
        condition: None,
    });
    out.push(FeParam {
        def: float("pca_keep", 0.5, 0.999, 0.95, false),
        condition: Some(("transform", vec![1])),
    });
    out.push(FeParam {
        def: int("nystroem_components", 10, 100, 50, true),
        condition: Some(("transform", vec![2])),
    });
    out.push(FeParam {
        def: float("nystroem_gamma", 1e-3, 8.0, 0.5, true),
        condition: Some(("transform", vec![2])),
    });
    out.push(FeParam {
        def: cat("poly_interaction", vec!["full", "interaction_only"], 0),
        condition: Some(("transform", vec![3])),
    });
    out.push(FeParam {
        def: float("percentile", 10.0, 90.0, 50.0, false),
        condition: Some(("transform", vec![4])),
    });
    out.push(FeParam {
        def: cat("score_func", vec!["f_score", "mutual_info"], 0),
        condition: Some(("transform", vec![4])),
    });
    out.push(FeParam {
        def: float("var_threshold", 1e-5, 0.2, 1e-4, true),
        condition: Some(("transform", vec![5])),
    });
    out.push(FeParam {
        def: int("agglo_clusters", 2, 30, 8, true),
        condition: Some(("transform", vec![6])),
    });
    out
}

/// A reduced FE space (used by the paper's *small* search-space tier and as
/// stage 0 of incremental space construction): just imputation, rescaling,
/// and balancing choices — no transform stage, no conditional children.
pub fn fe_param_defs_minimal(task: Task) -> Vec<FeParam> {
    fe_param_defs(task, &FeSpaceOptions::default())
        .into_iter()
        .filter(|p| matches!(p.def.name, "imputer" | "rescaler" | "balancer"))
        .collect()
}

/// One discrete expansion of the FE space: categorical parameters to widen
/// with extra choices, plus new parameters to append. Widenings are applied
/// *before* the new parameters so a new child may condition on a
/// just-appended choice index of an existing parent.
#[derive(Debug, Clone)]
pub struct FeExpansion {
    /// Stable expansion name — journaled, traced, and shown in reports.
    pub name: &'static str,
    /// `(existing categorical param, extra choices appended)`.
    pub widen: Vec<(&'static str, Vec<&'static str>)>,
    /// Parameters this expansion appends (parents precede children).
    pub params: Vec<FeParam>,
}

/// The ordered expansion ladder for incremental space construction.
///
/// Stage 0 is [`fe_param_defs_minimal`]; applying expansion `i` requires
/// every expansion `< i` to have been applied first (later conditions
/// reference earlier parents):
///
/// 1. `transform_stage` — enables the dormant transform stage plus every
///    conditional child of the full template, making the variable *set*
///    equal to [`fe_param_defs`].
/// 2. `operator_families` — inserts the categorical-encoder family
///    (`cat_encoder` ∈ {onehot, target, hashing} with their children) and
///    widens `transform` with the `quantile_binning` choice (index 7) and
///    its `binning_bins` child.
pub fn fe_expansions(task: Task, options: &FeSpaceOptions) -> Vec<FeExpansion> {
    let minimal: Vec<&str> = fe_param_defs_minimal(task)
        .iter()
        .map(|p| p.def.name)
        .collect();
    let transform_stage: Vec<FeParam> = fe_param_defs(task, options)
        .into_iter()
        .filter(|p| !minimal.contains(&p.def.name))
        .collect();
    let mut families = vec![
        FeParam {
            def: cat("cat_encoder", vec!["onehot", "target", "hashing"], 0),
            condition: None,
        },
        FeParam {
            def: float("target_smoothing", 1.0, 100.0, 10.0, true),
            condition: Some(("cat_encoder", vec![1])),
        },
        FeParam {
            def: int("hash_buckets", 8, 256, 64, true),
            condition: Some(("cat_encoder", vec![2])),
        },
    ];
    families.push(FeParam {
        // `transform` choice 7 is the `quantile_binning` widening below.
        def: int("binning_bins", 2, 32, 8, true),
        condition: Some(("transform", vec![7])),
    });
    vec![
        FeExpansion {
            name: "transform_stage",
            widen: Vec::new(),
            params: transform_stage,
        },
        FeExpansion {
            name: "operator_families",
            widen: vec![("transform", vec!["quantile_binning"])],
            params: families,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EmbeddingOptions;

    #[test]
    fn base_space_has_expected_params() {
        let defs = fe_param_defs(Task::Classification, &FeSpaceOptions::default());
        let names: Vec<&str> = defs.iter().map(|p| p.def.name).collect();
        assert!(names.contains(&"imputer"));
        assert!(names.contains(&"rescaler"));
        assert!(names.contains(&"balancer"));
        assert!(names.contains(&"transform"));
        assert!(!names.contains(&"smote_k"));
        assert!(!names.contains(&"embedding"));
    }

    #[test]
    fn regression_space_has_no_balancer() {
        let defs = fe_param_defs(Task::Regression, &FeSpaceOptions::default());
        assert!(!defs.iter().any(|p| p.def.name == "balancer"));
    }

    #[test]
    fn smote_enrichment_extends_balancer() {
        let options = FeSpaceOptions {
            include_smote: true,
            embedding: None,
        };
        let defs = fe_param_defs(Task::Classification, &options);
        let balancer = defs.iter().find(|p| p.def.name == "balancer").unwrap();
        if let ParamKind::Cat { choices, .. } = &balancer.def.kind {
            assert!(choices.contains(&"smote"));
        } else {
            panic!("balancer should be categorical");
        }
        let smote_k = defs.iter().find(|p| p.def.name == "smote_k").unwrap();
        assert_eq!(smote_k.condition, Some(("balancer", vec![3])));
    }

    #[test]
    fn embedding_enrichment_adds_stage() {
        let options = FeSpaceOptions {
            include_smote: false,
            embedding: Some(EmbeddingOptions {
                dataset_seed: 0,
                n_latent: 4,
                generic_outputs: 8,
            }),
        };
        let defs = fe_param_defs(Task::Classification, &options);
        assert!(defs.iter().any(|p| p.def.name == "embedding"));
    }

    #[test]
    fn conditions_reference_existing_parents() {
        let defs = fe_param_defs(Task::Classification, &FeSpaceOptions::default());
        let names: Vec<&str> = defs.iter().map(|p| p.def.name).collect();
        for p in &defs {
            if let Some((parent, _)) = &p.condition {
                assert!(names.contains(parent), "{} has unknown parent {parent}", p.def.name);
            }
        }
    }

    #[test]
    fn minimal_space_is_smaller() {
        let full = fe_param_defs(Task::Classification, &FeSpaceOptions::default());
        let min = fe_param_defs_minimal(Task::Classification);
        assert!(min.len() < full.len());
        assert!(min.iter().all(|p| p.condition.is_none()));
    }

    #[test]
    fn minimal_plus_transform_stage_equals_full_template() {
        for task in [Task::Classification, Task::Regression] {
            let options = FeSpaceOptions::default();
            let mut grown = fe_param_defs_minimal(task);
            let expansions = fe_expansions(task, &options);
            assert_eq!(expansions[0].name, "transform_stage");
            grown.extend(expansions[0].params.clone());
            let full = fe_param_defs(task, &options);
            // Same parameter *set* (order differs: stage vars append).
            let mut grown_names: Vec<&str> = grown.iter().map(|p| p.def.name).collect();
            let mut full_names: Vec<&str> = full.iter().map(|p| p.def.name).collect();
            grown_names.sort_unstable();
            full_names.sort_unstable();
            assert_eq!(grown_names, full_names);
            // And identical defs for every shared name.
            for p in &full {
                let g = grown.iter().find(|q| q.def.name == p.def.name).unwrap();
                assert_eq!(g, p, "{} diverged", p.def.name);
            }
        }
    }

    #[test]
    fn expansion_conditions_reference_prior_parents() {
        // Every condition in expansion i must name a parent from stage 0 or
        // an earlier (or same, earlier-listed) expansion.
        let options = FeSpaceOptions {
            include_smote: true,
            embedding: None,
        };
        let mut known: Vec<&str> = fe_param_defs_minimal(Task::Classification)
            .iter()
            .map(|p| p.def.name)
            .collect();
        for exp in fe_expansions(Task::Classification, &options) {
            for (widened, _) in &exp.widen {
                assert!(known.contains(widened), "{} widens unknown {widened}", exp.name);
            }
            for p in &exp.params {
                if let Some((parent, _)) = &p.condition {
                    assert!(
                        known.contains(parent) || exp.params.iter().any(|q| q.def.name == *parent),
                        "{}: {} has unknown parent {parent}",
                        exp.name,
                        p.def.name
                    );
                }
                known.push(p.def.name);
            }
        }
    }

    #[test]
    fn operator_families_widen_transform_to_binning() {
        let exps = fe_expansions(Task::Classification, &FeSpaceOptions::default());
        let fam = exps.iter().find(|e| e.name == "operator_families").unwrap();
        assert_eq!(fam.widen, vec![("transform", vec!["quantile_binning"])]);
        let bins = fam.params.iter().find(|p| p.def.name == "binning_bins").unwrap();
        // Index 7 = the 7 base transform choices, then the widened one.
        assert_eq!(bins.condition, Some(("transform", vec![7])));
        assert!(fam.params.iter().any(|p| p.def.name == "cat_encoder"));
    }
}
