//! The FE search-space descriptors consumed by the AutoML layer.
//!
//! Each entry is a hyper-parameter (reusing the zoo's [`ParamDef`] type) plus
//! an optional activation condition on another FE parameter — e.g.
//! `smote_k` is only active when `balancer == smote`. The AutoML layer turns
//! these into conditional variables of its joint space.

use crate::pipeline::FeSpaceOptions;
use volcanoml_data::Task;
use volcanoml_models::{ParamDef, ParamKind};

/// One FE search-space parameter with its activation condition.
#[derive(Debug, Clone, PartialEq)]
pub struct FeParam {
    /// The parameter descriptor (name is the pipeline value-map key).
    pub def: ParamDef,
    /// `Some((parent, values))` ⇒ active only when the categorical FE
    /// parameter `parent` takes one of `values`.
    pub condition: Option<(&'static str, Vec<usize>)>,
}

fn float(name: &'static str, lo: f64, hi: f64, default: f64, log: bool) -> ParamDef {
    ParamDef {
        name,
        kind: ParamKind::Float { lo, hi, default, log },
    }
}

fn int(name: &'static str, lo: i64, hi: i64, default: i64, log: bool) -> ParamDef {
    ParamDef {
        name,
        kind: ParamKind::Int { lo, hi, default, log },
    }
}

fn cat(name: &'static str, choices: Vec<&'static str>, default: usize) -> ParamDef {
    ParamDef {
        name,
        kind: ParamKind::Cat { choices, default },
    }
}

/// Full FE parameter list for a task and enrichment options.
///
/// Choice-index conventions match `pipeline::FePipeline::from_values`:
/// `imputer` ∈ {mean, median, most_frequent}; `rescaler` ∈ {none, standard,
/// minmax, robust, normalizer, quantile}; `balancer` ∈ {none, oversample,
/// undersample, smote?}; `transform` ∈ {none, pca, nystroem, polynomial,
/// select_percentile, variance_threshold}; `embedding` ∈ {none, matched,
/// generic}.
pub fn fe_param_defs(task: Task, options: &FeSpaceOptions) -> Vec<FeParam> {
    let mut out = Vec::new();
    out.push(FeParam {
        def: cat("imputer", vec!["mean", "median", "most_frequent"], 0),
        condition: None,
    });
    if options.embedding.is_some() {
        out.push(FeParam {
            def: cat("embedding", vec!["none", "matched", "generic"], 0),
            condition: None,
        });
    }
    out.push(FeParam {
        def: cat(
            "rescaler",
            vec!["none", "standard", "minmax", "robust", "normalizer", "quantile"],
            1,
        ),
        condition: None,
    });
    out.push(FeParam {
        def: int("rescaler_quantiles", 10, 200, 50, true),
        condition: Some(("rescaler", vec![5])),
    });
    if task == Task::Classification {
        let mut balancers = vec!["none", "oversample", "undersample"];
        if options.include_smote {
            balancers.push("smote");
        }
        out.push(FeParam {
            def: cat("balancer", balancers, 0),
            condition: None,
        });
        if options.include_smote {
            out.push(FeParam {
                def: int("smote_k", 3, 10, 5, false),
                condition: Some(("balancer", vec![3])),
            });
        }
    }
    out.push(FeParam {
        def: cat(
            "transform",
            vec![
                "none",
                "pca",
                "nystroem",
                "polynomial",
                "select_percentile",
                "variance_threshold",
                "feature_agglomeration",
            ],
            0,
        ),
        condition: None,
    });
    out.push(FeParam {
        def: float("pca_keep", 0.5, 0.999, 0.95, false),
        condition: Some(("transform", vec![1])),
    });
    out.push(FeParam {
        def: int("nystroem_components", 10, 100, 50, true),
        condition: Some(("transform", vec![2])),
    });
    out.push(FeParam {
        def: float("nystroem_gamma", 1e-3, 8.0, 0.5, true),
        condition: Some(("transform", vec![2])),
    });
    out.push(FeParam {
        def: cat("poly_interaction", vec!["full", "interaction_only"], 0),
        condition: Some(("transform", vec![3])),
    });
    out.push(FeParam {
        def: float("percentile", 10.0, 90.0, 50.0, false),
        condition: Some(("transform", vec![4])),
    });
    out.push(FeParam {
        def: cat("score_func", vec!["f_score", "mutual_info"], 0),
        condition: Some(("transform", vec![4])),
    });
    out.push(FeParam {
        def: float("var_threshold", 1e-5, 0.2, 1e-4, true),
        condition: Some(("transform", vec![5])),
    });
    out.push(FeParam {
        def: int("agglo_clusters", 2, 30, 8, true),
        condition: Some(("transform", vec![6])),
    });
    out
}

/// A reduced FE space (used by the paper's *small* search-space tier): just
/// imputation and rescaling choices, no transform stage.
pub fn fe_param_defs_minimal(task: Task) -> Vec<FeParam> {
    fe_param_defs(task, &FeSpaceOptions::default())
        .into_iter()
        .filter(|p| matches!(p.def.name, "imputer" | "rescaler" | "balancer"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EmbeddingOptions;

    #[test]
    fn base_space_has_expected_params() {
        let defs = fe_param_defs(Task::Classification, &FeSpaceOptions::default());
        let names: Vec<&str> = defs.iter().map(|p| p.def.name).collect();
        assert!(names.contains(&"imputer"));
        assert!(names.contains(&"rescaler"));
        assert!(names.contains(&"balancer"));
        assert!(names.contains(&"transform"));
        assert!(!names.contains(&"smote_k"));
        assert!(!names.contains(&"embedding"));
    }

    #[test]
    fn regression_space_has_no_balancer() {
        let defs = fe_param_defs(Task::Regression, &FeSpaceOptions::default());
        assert!(!defs.iter().any(|p| p.def.name == "balancer"));
    }

    #[test]
    fn smote_enrichment_extends_balancer() {
        let options = FeSpaceOptions {
            include_smote: true,
            embedding: None,
        };
        let defs = fe_param_defs(Task::Classification, &options);
        let balancer = defs.iter().find(|p| p.def.name == "balancer").unwrap();
        if let ParamKind::Cat { choices, .. } = &balancer.def.kind {
            assert!(choices.contains(&"smote"));
        } else {
            panic!("balancer should be categorical");
        }
        let smote_k = defs.iter().find(|p| p.def.name == "smote_k").unwrap();
        assert_eq!(smote_k.condition, Some(("balancer", vec![3])));
    }

    #[test]
    fn embedding_enrichment_adds_stage() {
        let options = FeSpaceOptions {
            include_smote: false,
            embedding: Some(EmbeddingOptions {
                dataset_seed: 0,
                n_latent: 4,
                generic_outputs: 8,
            }),
        };
        let defs = fe_param_defs(Task::Classification, &options);
        assert!(defs.iter().any(|p| p.def.name == "embedding"));
    }

    #[test]
    fn conditions_reference_existing_parents() {
        let defs = fe_param_defs(Task::Classification, &FeSpaceOptions::default());
        let names: Vec<&str> = defs.iter().map(|p| p.def.name).collect();
        for p in &defs {
            if let Some((parent, _)) = &p.condition {
                assert!(names.contains(parent), "{} has unknown parent {parent}", p.def.name);
            }
        }
    }

    #[test]
    fn minimal_space_is_smaller() {
        let full = fe_param_defs(Task::Classification, &FeSpaceOptions::default());
        let min = fe_param_defs_minimal(Task::Classification);
        assert!(min.len() < full.len());
        assert!(min.iter().all(|p| p.condition.is_none()));
    }
}
