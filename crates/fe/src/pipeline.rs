//! The feature-engineering pipeline: imputation → one-hot → (embedding) →
//! rescaling → balancing (train only) → transformation, each stage
//! configured from a flat value map produced by the AutoML search.

use crate::agglomerate::FeatureAgglomeration;
use crate::balance::Balancer;
use crate::embedding::PretrainedEmbedding;
use crate::encode::{FeatureHasher, OneHotEncoder, QuantileBinner, TargetEncoder};
use crate::impute::{ImputeStrategy, Imputer};
use crate::reduce::{Nystroem, Pca, PolynomialFeatures, ScoreFunc, SelectPercentile, VarianceThreshold};
use crate::scale::{Rescaler, ScaleKind};
use crate::{FeError, Resampler, Result, Transformer};
use std::borrow::Cow;
use std::collections::HashMap;
use volcanoml_data::view::{self, DatasetView};
use volcanoml_data::{FeatureType, Task};
use volcanoml_linalg::Matrix;

/// Configuration of the optional embedding-selection stage (the §5.3
/// enrichment). Describes the two available "pre-trained backbones".
#[derive(Debug, Clone)]
pub struct EmbeddingOptions {
    /// Seed of the paired vision dataset (for the matched extractor).
    pub dataset_seed: u64,
    /// Latent width recovered by the matched extractor.
    pub n_latent: usize,
    /// Output width of the generic extractor.
    pub generic_outputs: usize,
}

/// What the FE search space contains beyond the auto-sklearn baseline.
#[derive(Debug, Clone, Default)]
pub struct FeSpaceOptions {
    /// Adds the `smote` choice to the balancing stage (Table 2 enrichment).
    pub include_smote: bool,
    /// Adds the embedding-selection stage (Figure 3 enrichment).
    pub embedding: Option<EmbeddingOptions>,
}

/// The fitted FE pipeline.
#[derive(Debug, Clone)]
pub struct FePipeline {
    task: Task,
    imputer: Imputer,
    encoder: CatEncoder,
    embedding: Option<PretrainedEmbedding>,
    rescaler: Rescaler,
    balancer: Balancer,
    transform: TransformChoice,
    seed: u64,
    fitted: bool,
}

/// The categorical-encoding stage. One-hot is the fixed-space default;
/// target encoding and feature hashing enter only through incremental
/// space expansion (`cat_encoder` key absent ⇒ one-hot, so pre-expansion
/// configurations behave byte-identically).
#[derive(Debug, Clone)]
enum CatEncoder {
    OneHot(OneHotEncoder),
    Target(TargetEncoder),
    Hash(FeatureHasher),
}

impl CatEncoder {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        match self {
            CatEncoder::Target(t) => t.fit(x, y),
            // One-hot and hashing are determined by declared types alone.
            CatEncoder::OneHot(_) | CatEncoder::Hash(_) => Ok(()),
        }
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        match self {
            CatEncoder::OneHot(t) => t.transform(x),
            CatEncoder::Target(t) => t.transform(x),
            CatEncoder::Hash(t) => t.transform(x),
        }
    }
}

#[derive(Debug, Clone)]
enum TransformChoice {
    None,
    Pca(Pca),
    Nystroem(Nystroem),
    Polynomial(PolynomialFeatures),
    Select(SelectPercentile),
    Variance(VarianceThreshold),
    Agglomerate(FeatureAgglomeration),
    Binning(QuantileBinner),
}

impl TransformChoice {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        match self {
            TransformChoice::None => Ok(()),
            TransformChoice::Pca(t) => t.fit(x, y),
            TransformChoice::Nystroem(t) => t.fit(x, y),
            TransformChoice::Polynomial(t) => t.fit(x, y),
            TransformChoice::Select(t) => t.fit(x, y),
            TransformChoice::Variance(t) => t.fit(x, y),
            TransformChoice::Agglomerate(t) => t.fit(x, y),
            TransformChoice::Binning(t) => t.fit(x, y),
        }
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        match self {
            TransformChoice::None => Ok(x.clone()),
            TransformChoice::Pca(t) => t.transform(x),
            TransformChoice::Nystroem(t) => t.transform(x),
            TransformChoice::Polynomial(t) => t.transform(x),
            TransformChoice::Select(t) => t.transform(x),
            TransformChoice::Variance(t) => t.transform(x),
            TransformChoice::Agglomerate(t) => t.transform(x),
            TransformChoice::Binning(t) => t.transform(x),
        }
    }
}

fn get(values: &HashMap<String, f64>, key: &str, default: f64) -> f64 {
    values.get(key).copied().unwrap_or(default)
}

impl FePipeline {
    /// Builds a pipeline from a flat value map (see `space::fe_param_defs`
    /// for the keys). Missing keys take the stage defaults ("no-op" FE).
    pub fn from_values(
        task: Task,
        feature_types: &[FeatureType],
        values: &HashMap<String, f64>,
        options: &FeSpaceOptions,
        seed: u64,
    ) -> Result<FePipeline> {
        let imputer = match get(values, "imputer", 0.0).round() as usize {
            1 => Imputer::new(ImputeStrategy::Median),
            2 => Imputer::new(ImputeStrategy::MostFrequent),
            _ => Imputer::new(ImputeStrategy::Mean),
        };
        let encoder = match get(values, "cat_encoder", 0.0).round() as usize {
            1 => CatEncoder::Target(TargetEncoder::from_feature_types(
                feature_types,
                get(values, "target_smoothing", 10.0).max(0.0),
            )),
            2 => CatEncoder::Hash(FeatureHasher::from_feature_types(
                feature_types,
                get(values, "hash_buckets", 64.0).round().max(2.0) as usize,
            )),
            _ => CatEncoder::OneHot(OneHotEncoder::from_feature_types(feature_types)),
        };
        let embedding = match &options.embedding {
            Some(cfg) => match get(values, "embedding", 0.0).round() as usize {
                1 => Some(PretrainedEmbedding::matched(cfg.dataset_seed, cfg.n_latent)),
                2 => Some(PretrainedEmbedding::generic(
                    volcanoml_data::rand_util::derive_seed(cfg.dataset_seed, 77),
                    cfg.generic_outputs,
                )),
                _ => None,
            },
            None => None,
        };
        let rescaler = match get(values, "rescaler", 1.0).round() as usize {
            0 => Rescaler::new(ScaleKind::None),
            2 => Rescaler::new(ScaleKind::MinMax),
            3 => Rescaler::new(ScaleKind::Robust),
            4 => Rescaler::new(ScaleKind::Normalizer),
            5 => Rescaler::new(ScaleKind::Quantile {
                n_quantiles: get(values, "rescaler_quantiles", 50.0).round().max(2.0) as usize,
            }),
            _ => Rescaler::new(ScaleKind::Standard),
        };
        let balancer = if task == Task::Classification {
            match get(values, "balancer", 0.0).round() as usize {
                1 => Balancer::Oversample,
                2 => Balancer::Undersample,
                3 if options.include_smote => Balancer::Smote {
                    k_neighbors: get(values, "smote_k", 5.0).round().max(1.0) as usize,
                },
                _ => Balancer::None,
            }
        } else {
            Balancer::None
        };
        let transform = match get(values, "transform", 0.0).round() as usize {
            1 => TransformChoice::Pca(Pca::new(get(values, "pca_keep", 0.95))),
            2 => TransformChoice::Nystroem(Nystroem::new(
                get(values, "nystroem_components", 50.0).round().max(1.0) as usize,
                get(values, "nystroem_gamma", 0.5),
                volcanoml_data::rand_util::derive_seed(seed, 11),
            )),
            3 => TransformChoice::Polynomial(PolynomialFeatures::new(
                get(values, "poly_interaction", 0.0).round() as usize == 1,
            )),
            4 => TransformChoice::Select(SelectPercentile::new(
                get(values, "percentile", 50.0),
                if get(values, "score_func", 0.0).round() as usize == 1 {
                    ScoreFunc::MutualInfo
                } else {
                    ScoreFunc::FScore
                },
                task == Task::Classification,
            )),
            5 => TransformChoice::Variance(VarianceThreshold::new(get(
                values,
                "var_threshold",
                1e-4,
            ))),
            6 => TransformChoice::Agglomerate(FeatureAgglomeration::new(
                get(values, "agglo_clusters", 8.0).round().max(1.0) as usize,
            )),
            7 => TransformChoice::Binning(QuantileBinner::new(
                get(values, "binning_bins", 8.0).round().max(2.0) as usize,
            )),
            _ => TransformChoice::None,
        };
        Ok(FePipeline {
            task,
            imputer,
            encoder,
            embedding,
            rescaler,
            balancer,
            transform,
            seed,
            fitted: false,
        })
    }

    /// The identity-ish default pipeline (mean imputation, standard scaling,
    /// no balancing, no transform).
    pub fn default_for(task: Task, feature_types: &[FeatureType]) -> FePipeline {
        FePipeline::from_values(
            task,
            feature_types,
            &HashMap::new(),
            &FeSpaceOptions::default(),
            0,
        )
        .expect("default pipeline construction cannot fail")
    }

    /// Fits all stages on training data and returns the transformed
    /// (and possibly resampled) training set.
    pub fn fit_transform_train(&mut self, x: &Matrix, y: &[f64]) -> Result<(Matrix, Vec<f64>)> {
        if x.rows() != y.len() {
            return Err(FeError::Invalid(format!(
                "{} rows but {} targets",
                x.rows(),
                y.len()
            )));
        }
        self.imputer.fit(x, y)?;
        let x1 = self.imputer.transform(x)?;
        self.encoder.fit(&x1, y)?;
        let x2 = self.encoder.transform(&x1)?;
        let x3 = match &mut self.embedding {
            Some(e) => e.fit_transform(&x2, y)?,
            None => x2,
        };
        self.rescaler.fit(&x3, y)?;
        let x4 = self.rescaler.transform(&x3)?;
        let (x5, y5) = self.balancer.resample(&x4, y, self.seed)?;
        self.transform.fit(&x5, &y5)?;
        let x6 = self.transform.transform(&x5)?;
        self.fitted = true;
        Ok((x6, y5))
    }

    /// Fits all stages through a zero-copy [`DatasetView`]. A full view
    /// borrows the backing matrix directly; an index view is materialized
    /// with a single pooled gather — the only feature-row copy on the trial
    /// path — whose buffer is recycled before returning.
    pub fn fit_transform_train_view(&mut self, data: &DatasetView) -> Result<(Matrix, Vec<f64>)> {
        let (x, y) = data.features_targets();
        let out = self.fit_transform_train(&x, &y);
        if let Cow::Owned(m) = x {
            view::recycle(m);
        }
        out
    }

    /// Applies the fitted pipeline through a zero-copy [`DatasetView`], with
    /// the same borrow/gather semantics as
    /// [`FePipeline::fit_transform_train_view`].
    pub fn transform_view(&self, data: &DatasetView) -> Result<Matrix> {
        let x = data.features();
        let out = self.transform(&x);
        if let Cow::Owned(m) = x {
            view::recycle(m);
        }
        out
    }

    /// Applies the fitted pipeline to unseen data (no resampling).
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(FeError::NotFitted);
        }
        let x1 = self.imputer.transform(x)?;
        let x2 = self.encoder.transform(&x1)?;
        let x3 = match &self.embedding {
            Some(e) => e.transform(&x2)?,
            None => x2,
        };
        let x4 = self.rescaler.transform(&x3)?;
        self.transform.transform(&x4)
    }

    /// Task the pipeline was built for.
    pub fn task(&self) -> Task {
        self.task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_data::synthetic::{
        inject_missing, make_categorical, make_classification, make_embedded_images,
        ClassificationSpec,
    };

    fn base_dataset() -> volcanoml_data::Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 200,
                n_features: 8,
                n_informative: 4,
                n_redundant: 2,
                n_classes: 2,
                class_sep: 1.5,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            5,
        )
    }

    #[test]
    fn default_pipeline_roundtrips() {
        let d = base_dataset();
        let mut p = FePipeline::default_for(d.task, &d.feature_types);
        let (xt, yt) = p.fit_transform_train(&d.x, &d.y).unwrap();
        assert_eq!(xt.rows(), yt.len());
        assert_eq!(xt.cols(), d.n_features());
        let held = p.transform(&d.x).unwrap();
        assert_eq!(held.shape(), (200, 8));
    }

    #[test]
    fn handles_missing_and_categorical() {
        let d = inject_missing(&make_categorical(150, 2, 3, 3, 0.05, 1), 0.1, 2);
        let mut values = HashMap::new();
        values.insert("imputer".into(), 2.0); // most frequent
        let mut p = FePipeline::from_values(
            d.task,
            &d.feature_types,
            &values,
            &FeSpaceOptions::default(),
            0,
        )
        .unwrap();
        let (xt, _) = p.fit_transform_train(&d.x, &d.y).unwrap();
        // 3 numeric + 2 categorical of cardinality 3 -> 3 + 6 columns.
        assert_eq!(xt.cols(), 9);
        assert!(!xt.data().iter().any(|v| v.is_nan()));
    }

    #[test]
    fn smote_requires_option() {
        let d = base_dataset();
        let mut values = HashMap::new();
        values.insert("balancer".into(), 3.0);
        // Without the enrichment the index falls back to None.
        let mut p = FePipeline::from_values(
            d.task,
            &d.feature_types,
            &values,
            &FeSpaceOptions::default(),
            0,
        )
        .unwrap();
        let (_, y) = p.fit_transform_train(&d.x, &d.y).unwrap();
        assert_eq!(y.len(), d.n_samples());
        // With the enrichment SMOTE activates on imbalanced data.
        let imb = make_classification(
            &ClassificationSpec {
                weights: vec![0.85, 0.15],
                ..ClassificationSpec::default()
            },
            6,
        );
        let mut p2 = FePipeline::from_values(
            imb.task,
            &imb.feature_types,
            &values,
            &FeSpaceOptions {
                include_smote: true,
                embedding: None,
            },
            0,
        )
        .unwrap();
        let (_, y2) = p2.fit_transform_train(&imb.x, &imb.y).unwrap();
        assert!(y2.len() > imb.n_samples());
    }

    #[test]
    fn pca_transform_shrinks_width() {
        let d = base_dataset();
        let mut values = HashMap::new();
        values.insert("transform".into(), 1.0);
        values.insert("pca_keep".into(), 0.8);
        let mut p = FePipeline::from_values(
            d.task,
            &d.feature_types,
            &values,
            &FeSpaceOptions::default(),
            0,
        )
        .unwrap();
        let (xt, _) = p.fit_transform_train(&d.x, &d.y).unwrap();
        assert!(xt.cols() < 8);
        // Test-time width matches train-time width.
        let held = p.transform(&d.x).unwrap();
        assert_eq!(held.cols(), xt.cols());
    }

    #[test]
    fn embedding_stage_activates_with_option() {
        let seed = 13u64;
        let d = make_embedded_images(120, 4, 32, 2, 0.05, seed);
        let mut values = HashMap::new();
        values.insert("embedding".into(), 1.0); // matched
        let options = FeSpaceOptions {
            include_smote: false,
            embedding: Some(EmbeddingOptions {
                dataset_seed: seed,
                n_latent: 4,
                generic_outputs: 16,
            }),
        };
        let mut p = FePipeline::from_values(d.task, &d.feature_types, &values, &options, 0).unwrap();
        let (xt, _) = p.fit_transform_train(&d.x, &d.y).unwrap();
        assert_eq!(xt.cols(), 4); // latent width
    }

    #[test]
    fn unfitted_transform_errors() {
        let d = base_dataset();
        let p = FePipeline::default_for(d.task, &d.feature_types);
        assert!(p.transform(&d.x).is_err());
    }

    #[test]
    fn every_rescaler_choice_runs() {
        let d = base_dataset();
        for r in 0..6 {
            let mut values = HashMap::new();
            values.insert("rescaler".into(), r as f64);
            let mut p = FePipeline::from_values(
                d.task,
                &d.feature_types,
                &values,
                &FeSpaceOptions::default(),
                0,
            )
            .unwrap();
            let (xt, _) = p.fit_transform_train(&d.x, &d.y).unwrap();
            assert!(xt.data().iter().all(|v| v.is_finite()), "rescaler {r}");
        }
    }

    #[test]
    fn every_cat_encoder_choice_runs() {
        let d = make_categorical(150, 3, 4, 2, 0.05, 7);
        let mut widths = Vec::new();
        for e in 0..3 {
            let mut values = HashMap::new();
            values.insert("cat_encoder".into(), e as f64);
            values.insert("hash_buckets".into(), 8.0);
            let mut p = FePipeline::from_values(
                d.task,
                &d.feature_types,
                &values,
                &FeSpaceOptions::default(),
                0,
            )
            .unwrap();
            let (xt, _) = p.fit_transform_train(&d.x, &d.y).unwrap();
            assert!(xt.data().iter().all(|v| v.is_finite()), "cat_encoder {e}");
            let held = p.transform(&d.x).unwrap();
            assert_eq!(held.cols(), xt.cols(), "cat_encoder {e} width mismatch");
            widths.push(xt.cols());
        }
        // one-hot: 2 + 3·4 = 14; target: 2 + 3 = 5; hashing: 2 + 8 = 10.
        assert_eq!(widths, vec![14, 5, 10]);
    }

    #[test]
    fn absent_cat_encoder_key_is_one_hot() {
        // Pre-expansion value maps (no `cat_encoder` key) must produce the
        // same output as the explicit one-hot choice — the digest-stability
        // contract for unexpanded configurations.
        let d = make_categorical(100, 2, 3, 2, 0.05, 9);
        let run = |values: &HashMap<String, f64>| {
            let mut p = FePipeline::from_values(
                d.task,
                &d.feature_types,
                values,
                &FeSpaceOptions::default(),
                0,
            )
            .unwrap();
            p.fit_transform_train(&d.x, &d.y).unwrap().0
        };
        let implicit = run(&HashMap::new());
        let mut explicit_values = HashMap::new();
        explicit_values.insert("cat_encoder".into(), 0.0);
        let explicit = run(&explicit_values);
        assert_eq!(implicit.data(), explicit.data());
    }

    #[test]
    fn every_transform_choice_runs() {
        let d = base_dataset();
        for t in 0..8 {
            let mut values = HashMap::new();
            values.insert("transform".into(), t as f64);
            let mut p = FePipeline::from_values(
                d.task,
                &d.feature_types,
                &values,
                &FeSpaceOptions::default(),
                0,
            )
            .unwrap();
            let (xt, yt) = p.fit_transform_train(&d.x, &d.y).unwrap();
            assert!(xt.rows() == yt.len() && xt.cols() > 0, "transform {t}");
            let held = p.transform(&d.x).unwrap();
            assert_eq!(held.cols(), xt.cols(), "transform {t} width mismatch");
        }
    }
}
