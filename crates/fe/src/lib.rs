//! Feature-engineering operators and pipelines — the auto-sklearn FE stage
//! structure (§3.1 of the VolcanoML paper) rebuilt in Rust.
//!
//! A [`pipeline::FePipeline`] applies, in order:
//!
//! 1. **imputation** (always; strategy searchable),
//! 2. **one-hot encoding** of categorical columns (always),
//! 3. optional **embedding extraction** (the paper's §5.3 enrichment),
//! 4. **rescaling** (one of 6 choices),
//! 5. **balancing** (classification, train-time resampling; SMOTE is the
//!    Table 2 enrichment),
//! 6. **feature transformation** (one of 7 choices: PCA, Nyström kernel
//!    approximation, polynomial features, univariate selection, variance
//!    threshold, feature agglomeration, or none).
//!
//! Each stage publishes its choices and conditional hyper-parameters through
//! [`space::fe_stage_defs`], which the AutoML layer compiles into its search
//! space.

pub mod agglomerate;
pub mod balance;
pub mod embedding;
pub mod encode;
pub mod impute;
pub mod pipeline;
pub mod reduce;
pub mod scale;
pub mod space;

pub use pipeline::{FePipeline, FeSpaceOptions};

use volcanoml_linalg::Matrix;

/// Errors produced by FE operators.
#[derive(Debug, Clone, PartialEq)]
pub enum FeError {
    /// `transform` before `fit`.
    NotFitted,
    /// Structural problem with the inputs or configuration.
    Invalid(String),
    /// Numeric failure inside an operator.
    Numeric(String),
}

impl std::fmt::Display for FeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeError::NotFitted => write!(f, "transformer is not fitted"),
            FeError::Invalid(s) => write!(f, "invalid input: {s}"),
            FeError::Numeric(s) => write!(f, "numeric failure: {s}"),
        }
    }
}

impl std::error::Error for FeError {}

impl From<volcanoml_linalg::LinalgError> for FeError {
    fn from(e: volcanoml_linalg::LinalgError) -> Self {
        FeError::Numeric(e.to_string())
    }
}

/// Convenience alias for FE results.
pub type Result<T> = std::result::Result<T, FeError>;

/// A fitted, stateless-at-predict-time feature transformer.
///
/// `fit` sees training features *and* targets (supervised selectors need
/// them); `transform` must be applicable to unseen data of the same width.
pub trait Transformer {
    /// Learns transform parameters from training data.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()>;

    /// Applies the learned transform.
    fn transform(&self, x: &Matrix) -> Result<Matrix>;

    /// Fits and transforms in one call.
    fn fit_transform(&mut self, x: &Matrix, y: &[f64]) -> Result<Matrix> {
        self.fit(x, y)?;
        self.transform(x)
    }
}

/// A train-time resampler (balancing stage). Identity at predict time.
pub trait Resampler {
    /// Returns a rebalanced copy of the training set.
    fn resample(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<(Matrix, Vec<f64>)>;
}
