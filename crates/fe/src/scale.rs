//! Rescaling operators (the paper's `rescaling` FE stage): standard, min-max,
//! robust, row normalizer, quantile (rank-Gaussian), or none.

use crate::{FeError, Result, Transformer};
use volcanoml_linalg::Matrix;

/// Which rescaler to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleKind {
    /// Identity.
    None,
    /// (x − mean) / std.
    Standard,
    /// (x − min) / (max − min) into [0, 1].
    MinMax,
    /// (x − median) / IQR.
    Robust,
    /// Row-wise L2 normalization (stateless).
    Normalizer,
    /// Rank-based mapping to an approximate standard normal, interpolating
    /// between `n_quantiles` training quantiles.
    Quantile {
        /// Number of reference quantiles.
        n_quantiles: usize,
    },
}

/// Fitted rescaler.
#[derive(Debug, Clone)]
pub struct Rescaler {
    /// The configured kind.
    pub kind: ScaleKind,
    // Per-column statistics, meaning depends on kind: (a, b) such that the
    // transform is (x - a) / b for Standard/MinMax/Robust.
    offsets: Vec<f64>,
    scales: Vec<f64>,
    // Quantile: per-column sorted reference values.
    references: Vec<Vec<f64>>,
    fitted: bool,
}

impl Rescaler {
    /// Creates an unfitted rescaler.
    pub fn new(kind: ScaleKind) -> Self {
        Rescaler {
            kind,
            offsets: Vec::new(),
            scales: Vec::new(),
            references: Vec::new(),
            fitted: false,
        }
    }
}

/// Inverse standard normal CDF (Acklam's rational approximation) — used by
/// the quantile transformer's Gaussian output mapping.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

impl Transformer for Rescaler {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        let cols = x.cols();
        self.offsets.clear();
        self.scales.clear();
        self.references.clear();
        match self.kind {
            ScaleKind::None | ScaleKind::Normalizer => {}
            ScaleKind::Standard => {
                self.offsets = volcanoml_linalg::stats::column_means(x);
                self.scales = volcanoml_linalg::stats::column_stds(x)
                    .into_iter()
                    .map(|s| if s < 1e-12 { 1.0 } else { s })
                    .collect();
            }
            ScaleKind::MinMax => {
                for c in 0..cols {
                    let col = x.col(c);
                    let min = col.iter().cloned().fold(f64::INFINITY, f64::min);
                    let max = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    self.offsets.push(min);
                    let range = max - min;
                    self.scales.push(if range < 1e-12 { 1.0 } else { range });
                }
            }
            ScaleKind::Robust => {
                for c in 0..cols {
                    let col = x.col(c);
                    let med = volcanoml_linalg::stats::median(&col);
                    let q1 = volcanoml_linalg::stats::quantile(&col, 0.25);
                    let q3 = volcanoml_linalg::stats::quantile(&col, 0.75);
                    self.offsets.push(med);
                    let iqr = q3 - q1;
                    self.scales.push(if iqr < 1e-12 { 1.0 } else { iqr });
                }
            }
            ScaleKind::Quantile { n_quantiles } => {
                let q = n_quantiles.clamp(2, x.rows().max(2));
                for c in 0..cols {
                    let mut col = x.col(c);
                    col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    let refs: Vec<f64> = (0..q)
                        .map(|i| {
                            volcanoml_linalg::stats::quantile_sorted(
                                &col,
                                i as f64 / (q - 1) as f64,
                            )
                        })
                        .collect();
                    self.references.push(refs);
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if !self.fitted {
            return Err(FeError::NotFitted);
        }
        match self.kind {
            ScaleKind::None => Ok(x.clone()),
            ScaleKind::Normalizer => {
                let mut out = x.clone();
                for r in 0..out.rows() {
                    let row = out.row_mut(r);
                    let norm = volcanoml_linalg::matrix::norm(row);
                    if norm > 1e-12 {
                        for v in row.iter_mut() {
                            *v /= norm;
                        }
                    }
                }
                Ok(out)
            }
            ScaleKind::Standard | ScaleKind::MinMax | ScaleKind::Robust => {
                if x.cols() != self.offsets.len() {
                    return Err(FeError::Invalid(format!(
                        "rescaler fitted on {} columns, got {}",
                        self.offsets.len(),
                        x.cols()
                    )));
                }
                let mut out = x.clone();
                for r in 0..out.rows() {
                    let row = out.row_mut(r);
                    for ((v, &a), &b) in row.iter_mut().zip(self.offsets.iter()).zip(self.scales.iter()) {
                        *v = (*v - a) / b;
                    }
                }
                Ok(out)
            }
            ScaleKind::Quantile { .. } => {
                if x.cols() != self.references.len() {
                    return Err(FeError::Invalid(format!(
                        "rescaler fitted on {} columns, got {}",
                        self.references.len(),
                        x.cols()
                    )));
                }
                let mut out = x.clone();
                for r in 0..out.rows() {
                    let row = out.row_mut(r);
                    for (v, refs) in row.iter_mut().zip(self.references.iter()) {
                        // Empirical CDF by binary search over references.
                        let pos = refs.partition_point(|&q| q < *v);
                        let p = pos as f64 / refs.len() as f64;
                        *v = inverse_normal_cdf(p.clamp(0.001, 0.999));
                    }
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(4, 2, vec![0.0, 100.0, 1.0, 200.0, 2.0, 300.0, 3.0, 400.0]).unwrap()
    }

    #[test]
    fn standard_centers_and_scales() {
        let x = sample();
        let mut s = Rescaler::new(ScaleKind::Standard);
        let out = s.fit_transform(&x, &[]).unwrap();
        let means = volcanoml_linalg::stats::column_means(&out);
        let stds = volcanoml_linalg::stats::column_stds(&out);
        for m in means {
            assert!(m.abs() < 1e-9);
        }
        for s in stds {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let x = sample();
        let mut s = Rescaler::new(ScaleKind::MinMax);
        let out = s.fit_transform(&x, &[]).unwrap();
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(3, 0), 1.0);
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn robust_uses_median_and_iqr() {
        let x = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        let mut s = Rescaler::new(ScaleKind::Robust);
        let out = s.fit_transform(&x, &[]).unwrap();
        // Median 3, IQR = 4 - 2 = 2 -> first value (1-3)/2 = -1.
        assert!((out.get(0, 0) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalizer_produces_unit_rows() {
        let x = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 5.0]).unwrap();
        let mut s = Rescaler::new(ScaleKind::Normalizer);
        let out = s.fit_transform(&x, &[]).unwrap();
        for r in 0..2 {
            let n = volcanoml_linalg::matrix::norm(out.row(r));
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quantile_output_is_roughly_gaussian() {
        // Heavily skewed input becomes symmetric.
        let vals: Vec<f64> = (0..200).map(|i| ((i + 1) as f64).powi(3)).collect();
        let x = Matrix::from_vec(200, 1, vals).unwrap();
        let mut s = Rescaler::new(ScaleKind::Quantile { n_quantiles: 100 });
        let out = s.fit_transform(&x, &[]).unwrap();
        let col = out.col(0);
        let skew = volcanoml_linalg::stats::skewness(&col);
        assert!(skew.abs() < 0.2, "skew {skew}");
    }

    #[test]
    fn constant_column_is_safe() {
        let x = Matrix::from_vec(3, 1, vec![5.0, 5.0, 5.0]).unwrap();
        for kind in [ScaleKind::Standard, ScaleKind::MinMax, ScaleKind::Robust] {
            let mut s = Rescaler::new(kind);
            let out = s.fit_transform(&x, &[]).unwrap();
            assert!(out.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn inverse_normal_cdf_symmetry() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.96).abs() < 0.01);
        assert!((inverse_normal_cdf(0.025) + 1.96).abs() < 0.01);
    }

    #[test]
    fn none_is_identity() {
        let x = sample();
        let mut s = Rescaler::new(ScaleKind::None);
        let out = s.fit_transform(&x, &[]).unwrap();
        assert_eq!(out.data(), x.data());
    }

    #[test]
    fn unfitted_errors() {
        let s = Rescaler::new(ScaleKind::Standard);
        assert!(s.transform(&Matrix::zeros(1, 1)).is_err());
    }
}
