//! Feature-transformation operators (the paper's `feature_transforming`
//! stage): PCA, Nyström kernel approximation (the kernel-PCA stand-in),
//! polynomial expansion, univariate selection, and variance thresholding.

use crate::{FeError, Result, Transformer};
use volcanoml_data::rand_util::{rng_from_seed, sample_without_replacement};
use volcanoml_linalg::eigen::top_k_eigenvectors;
use volcanoml_linalg::matrix::squared_distance;
use volcanoml_linalg::{cholesky_decompose, Matrix};

/// Principal component analysis keeping enough components to explain
/// `keep_variance` of the total variance.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Explained-variance target in (0, 1].
    pub keep_variance: f64,
    means: Vec<f64>,
    components: Option<Matrix>, // d x k
}

impl Pca {
    /// Creates an unfitted PCA.
    pub fn new(keep_variance: f64) -> Self {
        Pca {
            keep_variance: keep_variance.clamp(0.05, 1.0),
            means: Vec::new(),
            components: None,
        }
    }

    /// Number of retained components (after fitting).
    pub fn n_components(&self) -> Option<usize> {
        self.components.as_ref().map(|c| c.cols())
    }
}

impl Transformer for Pca {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        if x.rows() < 2 {
            return Err(FeError::Invalid("PCA needs at least 2 samples".into()));
        }
        let cov = volcanoml_linalg::stats::covariance_matrix(x);
        self.means = volcanoml_linalg::stats::column_means(x);
        let d = x.cols();
        let (values, vectors) = top_k_eigenvectors(&cov, d).map_err(FeError::from)?;
        let total: f64 = values.iter().map(|v| v.max(0.0)).sum();
        let mut k = d;
        if total > 0.0 {
            let mut acc = 0.0;
            for (i, v) in values.iter().enumerate() {
                acc += v.max(0.0);
                if acc / total >= self.keep_variance {
                    k = i + 1;
                    break;
                }
            }
        }
        let cols: Vec<usize> = (0..k).collect();
        self.components = Some(vectors.select_cols(&cols));
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let comp = self.components.as_ref().ok_or(FeError::NotFitted)?;
        if x.cols() != comp.rows() {
            return Err(FeError::Invalid(format!(
                "PCA fitted on {} columns, got {}",
                comp.rows(),
                x.cols()
            )));
        }
        let mut centered = x.clone();
        for r in 0..centered.rows() {
            let row = centered.row_mut(r);
            for (v, &m) in row.iter_mut().zip(self.means.iter()) {
                *v -= m;
            }
        }
        centered.matmul(comp).map_err(FeError::from)
    }
}

/// Nyström RBF kernel approximation — the scalable stand-in for kernel PCA
/// in the paper's FE stage. Maps inputs to `K(x, landmarks) · K_mm^{-1/2}`
/// (implemented via a Cholesky solve of the landmark kernel).
#[derive(Debug, Clone)]
pub struct Nystroem {
    /// Number of landmark points.
    pub n_components: usize,
    /// RBF bandwidth.
    pub gamma: f64,
    /// Landmark selection seed.
    pub seed: u64,
    landmarks: Option<Matrix>,
    chol: Option<Matrix>,
}

impl Nystroem {
    /// Creates an unfitted Nyström map.
    pub fn new(n_components: usize, gamma: f64, seed: u64) -> Self {
        Nystroem {
            n_components: n_components.max(1),
            gamma,
            seed,
            landmarks: None,
            chol: None,
        }
    }
}

impl Transformer for Nystroem {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        let m = self.n_components.min(x.rows());
        let mut rng = rng_from_seed(self.seed);
        let mut chosen = sample_without_replacement(&mut rng, x.rows(), m);
        chosen.sort_unstable();
        let landmarks = x.select_rows(&chosen);
        // Landmark kernel with jitter.
        let mut kmm = Matrix::zeros(m, m);
        for i in 0..m {
            for j in i..m {
                let k = (-self.gamma * squared_distance(landmarks.row(i), landmarks.row(j))).exp();
                kmm.set(i, j, k);
                kmm.set(j, i, k);
            }
        }
        for i in 0..m {
            let v = kmm.get(i, i) + 1e-6;
            kmm.set(i, i, v);
        }
        let chol = cholesky_decompose(&kmm).map_err(FeError::from)?;
        self.landmarks = Some(landmarks);
        self.chol = Some(chol);
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let landmarks = self.landmarks.as_ref().ok_or(FeError::NotFitted)?;
        let chol = self.chol.as_ref().ok_or(FeError::NotFitted)?;
        if x.cols() != landmarks.cols() {
            return Err(FeError::Invalid(format!(
                "Nystroem fitted on {} columns, got {}",
                landmarks.cols(),
                x.cols()
            )));
        }
        let m = landmarks.rows();
        let mut out = Matrix::zeros(x.rows(), m);
        let mut kvec = vec![0.0; m];
        for r in 0..x.rows() {
            for (j, kv) in kvec.iter_mut().enumerate() {
                *kv = (-self.gamma * squared_distance(x.row(r), landmarks.row(j))).exp();
            }
            // Whitened features: L^{-1} k (solving L z = k).
            let mut z = vec![0.0; m];
            for i in 0..m {
                let mut sum = kvec[i];
                for (k, zk) in z.iter().enumerate().take(i) {
                    sum -= chol.get(i, k) * zk;
                }
                z[i] = sum / chol.get(i, i);
            }
            out.row_mut(r).copy_from_slice(&z);
        }
        Ok(out)
    }
}

/// Degree-2 polynomial feature expansion (optionally interactions only).
#[derive(Debug, Clone)]
pub struct PolynomialFeatures {
    /// Skip pure squares, keeping only cross terms.
    pub interaction_only: bool,
    /// Cap on input width — expanding very wide inputs would explode; inputs
    /// wider than this are truncated to the first `max_input_features`
    /// columns before expansion.
    pub max_input_features: usize,
    n_features: Option<usize>,
}

impl PolynomialFeatures {
    /// Creates a degree-2 expander.
    pub fn new(interaction_only: bool) -> Self {
        PolynomialFeatures {
            interaction_only,
            max_input_features: 20,
            n_features: None,
        }
    }
}

impl Transformer for PolynomialFeatures {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        self.n_features = Some(x.cols().min(self.max_input_features));
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let d = self.n_features.ok_or(FeError::NotFitted)?;
        if x.cols() < d {
            return Err(FeError::Invalid(format!(
                "polynomial fitted on {} columns, got {}",
                d,
                x.cols()
            )));
        }
        let n_pairs = d * (d - 1) / 2;
        let n_squares = if self.interaction_only { 0 } else { d };
        let width = x.cols() + n_pairs + n_squares;
        let mut out = Matrix::zeros(x.rows(), width);
        for r in 0..x.rows() {
            let src = x.row(r);
            let dst = out.row_mut(r);
            dst[..x.cols()].copy_from_slice(src);
            let mut pos = x.cols();
            for i in 0..d {
                for j in i + 1..d {
                    dst[pos] = src[i] * src[j];
                    pos += 1;
                }
            }
            if !self.interaction_only {
                for (i, s) in src.iter().take(d).enumerate() {
                    dst[pos + i] = s * s;
                }
            }
        }
        Ok(out)
    }
}

/// Univariate scoring function for [`SelectPercentile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreFunc {
    /// ANOVA F statistic (classification) / squared correlation (regression).
    FScore,
    /// Histogram mutual information estimate.
    MutualInfo,
}

/// Keeps the top `percentile`% of features by univariate score.
#[derive(Debug, Clone)]
pub struct SelectPercentile {
    /// Percent of features to keep, in (0, 100].
    pub percentile: f64,
    /// Scoring function.
    pub score_func: ScoreFunc,
    /// Task type (affects the F score definition).
    pub classification: bool,
    selected: Option<Vec<usize>>,
}

impl SelectPercentile {
    /// Creates an unfitted selector.
    pub fn new(percentile: f64, score_func: ScoreFunc, classification: bool) -> Self {
        SelectPercentile {
            percentile: percentile.clamp(1.0, 100.0),
            score_func,
            classification,
            selected: None,
        }
    }

    /// The retained column indices.
    pub fn selected(&self) -> Option<&[usize]> {
        self.selected.as_deref()
    }
}

/// ANOVA F statistic of one feature vs class labels.
fn f_score_classification(col: &[f64], y: &[f64]) -> f64 {
    let k = y
        .iter()
        .fold(0usize, |m, &v| m.max(v.max(0.0) as usize + 1))
        .max(1);
    let n = col.len();
    if n < 2 || k < 2 {
        return 0.0;
    }
    let grand = volcanoml_linalg::stats::mean(col);
    let mut group_sum = vec![0.0; k];
    let mut group_n = vec![0usize; k];
    for (&v, &label) in col.iter().zip(y.iter()) {
        group_sum[label as usize] += v;
        group_n[label as usize] += 1;
    }
    let mut ss_between = 0.0;
    for c in 0..k {
        if group_n[c] > 0 {
            let gm = group_sum[c] / group_n[c] as f64;
            ss_between += group_n[c] as f64 * (gm - grand) * (gm - grand);
        }
    }
    let mut ss_within = 0.0;
    for (&v, &label) in col.iter().zip(y.iter()) {
        let c = label as usize;
        let gm = group_sum[c] / group_n[c] as f64;
        ss_within += (v - gm) * (v - gm);
    }
    let groups = group_n.iter().filter(|&&g| g > 0).count();
    if groups < 2 || ss_within < 1e-24 {
        return if ss_between > 1e-24 { f64::MAX } else { 0.0 };
    }
    let df_between = (groups - 1) as f64;
    let df_within = (n - groups) as f64;
    (ss_between / df_between) / (ss_within / df_within)
}

/// Histogram mutual information between a feature and labels (classification)
/// or a coarse binning of the target (regression).
fn mutual_info(col: &[f64], y: &[f64], target_bins: usize) -> f64 {
    let n = col.len();
    if n == 0 {
        return 0.0;
    }
    let bins = 8usize;
    let min = col.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-12);
    let bin_of = |v: f64| (((v - min) / range) * (bins as f64 - 1e-9)) as usize;

    let y_min = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let y_max = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let y_range = (y_max - y_min).max(1e-12);
    let label_of = |v: f64| {
        if target_bins == 0 {
            v.max(0.0) as usize
        } else {
            (((v - y_min) / y_range) * (target_bins as f64 - 1e-9)) as usize
        }
    };
    let labels: Vec<usize> = y.iter().map(|&v| label_of(v)).collect();
    let k = labels.iter().copied().max().unwrap_or(0) + 1;

    let mut joint = vec![vec![0.0; k]; bins];
    let mut px = vec![0.0; bins];
    let mut py = vec![0.0; k];
    for (&v, &label) in col.iter().zip(labels.iter()) {
        let b = bin_of(v);
        joint[b][label] += 1.0;
        px[b] += 1.0;
        py[label] += 1.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for b in 0..bins {
        for c in 0..k {
            let pxy = joint[b][c] / nf;
            if pxy > 0.0 {
                mi += pxy * (pxy / ((px[b] / nf) * (py[c] / nf))).ln();
            }
        }
    }
    mi.max(0.0)
}

impl Transformer for SelectPercentile {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if y.len() != x.rows() {
            return Err(FeError::Invalid("selector needs aligned targets".into()));
        }
        let d = x.cols();
        let scores: Vec<f64> = (0..d)
            .map(|c| {
                let col = x.col(c);
                match (self.score_func, self.classification) {
                    (ScoreFunc::FScore, true) => f_score_classification(&col, y),
                    (ScoreFunc::FScore, false) => {
                        let r = volcanoml_linalg::stats::pearson(&col, y);
                        r * r
                    }
                    (ScoreFunc::MutualInfo, true) => mutual_info(&col, y, 0),
                    (ScoreFunc::MutualInfo, false) => mutual_info(&col, y, 8),
                }
            })
            .collect();
        let keep = ((d as f64 * self.percentile / 100.0).ceil() as usize).clamp(1, d);
        let mut idx: Vec<usize> = (0..d).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
        let mut selected: Vec<usize> = idx.into_iter().take(keep).collect();
        selected.sort_unstable();
        self.selected = Some(selected);
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let sel = self.selected.as_ref().ok_or(FeError::NotFitted)?;
        if let Some(&max) = sel.iter().max() {
            if max >= x.cols() {
                return Err(FeError::Invalid(format!(
                    "selector references column {max}, input has {}",
                    x.cols()
                )));
            }
        }
        Ok(x.select_cols(sel))
    }
}

/// Drops features whose variance is at or below a threshold.
#[derive(Debug, Clone)]
pub struct VarianceThreshold {
    /// Variance cut-off.
    pub threshold: f64,
    selected: Option<Vec<usize>>,
}

impl VarianceThreshold {
    /// Creates an unfitted filter.
    pub fn new(threshold: f64) -> Self {
        VarianceThreshold {
            threshold: threshold.max(0.0),
            selected: None,
        }
    }
}

impl Transformer for VarianceThreshold {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        let stds = volcanoml_linalg::stats::column_stds(x);
        let mut selected: Vec<usize> = stds
            .iter()
            .enumerate()
            .filter(|(_, s)| *s * *s > self.threshold)
            .map(|(i, _)| i)
            .collect();
        if selected.is_empty() {
            // Keep the single highest-variance column rather than emitting an
            // empty matrix.
            if let Some(best) = volcanoml_linalg::stats::argmax(&stds) {
                selected.push(best);
            }
        }
        self.selected = Some(selected);
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let sel = self.selected.as_ref().ok_or(FeError::NotFitted)?;
        if let Some(&max) = sel.iter().max() {
            if max >= x.cols() {
                return Err(FeError::Invalid(format!(
                    "filter references column {max}, input has {}",
                    x.cols()
                )));
            }
        }
        Ok(x.select_cols(sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};

    fn informative_dataset() -> volcanoml_data::Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 300,
                n_features: 10,
                n_informative: 3,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 2.0,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            1,
        )
    }

    #[test]
    fn pca_reduces_redundant_dimensions() {
        // 3 informative dims + 5 exact copies -> effective rank is low.
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 200,
                n_features: 8,
                n_informative: 3,
                n_redundant: 5,
                n_classes: 2,
                class_sep: 1.0,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            2,
        );
        let mut pca = Pca::new(0.99);
        let out = pca.fit_transform(&d.x, &d.y).unwrap();
        assert!(out.cols() < 8, "kept {} dims", out.cols());
        assert!(pca.n_components().unwrap() >= 3);
    }

    #[test]
    fn pca_full_variance_keeps_all() {
        let d = informative_dataset();
        let mut pca = Pca::new(1.0);
        let out = pca.fit_transform(&d.x, &d.y).unwrap();
        assert_eq!(out.cols(), 10);
    }

    #[test]
    fn pca_components_are_orthogonal_projections() {
        let d = informative_dataset();
        let mut pca = Pca::new(0.9);
        pca.fit(&d.x, &d.y).unwrap();
        let out = pca.transform(&d.x).unwrap();
        // Projected columns are uncorrelated.
        for i in 0..out.cols() {
            for j in i + 1..out.cols() {
                let r = volcanoml_linalg::stats::pearson(&out.col(i), &out.col(j));
                assert!(r.abs() < 0.05, "components {i},{j} correlate {r}");
            }
        }
    }

    #[test]
    fn nystroem_output_shape_and_finite() {
        let d = informative_dataset();
        let mut ny = Nystroem::new(20, 0.5, 0);
        let out = ny.fit_transform(&d.x, &d.y).unwrap();
        assert_eq!(out.shape(), (300, 20));
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nystroem_components_capped_by_samples() {
        let x = Matrix::from_vec(5, 2, vec![0.0; 10]).unwrap();
        let mut ny = Nystroem::new(50, 1.0, 0);
        let out = ny.fit_transform(&x, &[0.0; 5]).unwrap();
        assert_eq!(out.cols(), 5);
    }

    #[test]
    fn polynomial_widths() {
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let mut poly = PolynomialFeatures::new(false);
        let out = poly.fit_transform(&x, &[0.0]).unwrap();
        // 3 original + 3 pairs + 3 squares.
        assert_eq!(out.cols(), 9);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0, 2.0, 3.0, 6.0, 1.0, 4.0, 9.0]);
        let mut inter = PolynomialFeatures::new(true);
        let out2 = inter.fit_transform(&x, &[0.0]).unwrap();
        assert_eq!(out2.cols(), 6);
    }

    #[test]
    fn polynomial_caps_wide_inputs() {
        let x = Matrix::zeros(2, 50);
        let mut poly = PolynomialFeatures::new(true);
        let out = poly.fit_transform(&x, &[0.0, 0.0]).unwrap();
        // 50 passthrough + C(20, 2) interactions.
        assert_eq!(out.cols(), 50 + 190);
    }

    #[test]
    fn select_percentile_finds_informative_features() {
        let d = informative_dataset();
        let mut sel = SelectPercentile::new(30.0, ScoreFunc::FScore, true);
        sel.fit(&d.x, &d.y).unwrap();
        let kept = sel.selected().unwrap();
        assert_eq!(kept.len(), 3);
        // The 3 informative features are columns 0..3 by construction.
        for &c in kept {
            assert!(c < 3, "kept noise column {c}: {kept:?}");
        }
    }

    #[test]
    fn mutual_info_also_finds_informative() {
        let d = informative_dataset();
        let mut sel = SelectPercentile::new(30.0, ScoreFunc::MutualInfo, true);
        sel.fit(&d.x, &d.y).unwrap();
        let kept = sel.selected().unwrap();
        let informative = kept.iter().filter(|&&c| c < 3).count();
        assert!(informative >= 2, "kept {kept:?}");
    }

    #[test]
    fn f_score_regression_uses_correlation() {
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64).collect();
        let mut data = Vec::new();
        for i in 0..n {
            data.push(x[i]);
            data.push(noise[i]);
        }
        let m = Matrix::from_vec(n, 2, data).unwrap();
        let mut sel = SelectPercentile::new(50.0, ScoreFunc::FScore, false);
        sel.fit(&m, &y).unwrap();
        assert_eq!(sel.selected().unwrap(), &[0]);
    }

    #[test]
    fn variance_threshold_drops_constants() {
        let x = Matrix::from_vec(3, 3, vec![1.0, 5.0, 0.0, 2.0, 5.0, 0.0, 3.0, 5.0, 0.0])
            .unwrap();
        let mut vt = VarianceThreshold::new(1e-6);
        let out = vt.fit_transform(&x, &[0.0; 3]).unwrap();
        assert_eq!(out.cols(), 1);
        assert_eq!(out.col(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn variance_threshold_never_empty() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let mut vt = VarianceThreshold::new(10.0);
        let out = vt.fit_transform(&x, &[0.0; 2]).unwrap();
        assert_eq!(out.cols(), 1);
    }

    #[test]
    fn unfitted_errors() {
        assert!(Pca::new(0.9).transform(&Matrix::zeros(1, 1)).is_err());
        assert!(Nystroem::new(5, 1.0, 0).transform(&Matrix::zeros(1, 1)).is_err());
        assert!(PolynomialFeatures::new(false).transform(&Matrix::zeros(1, 1)).is_err());
        assert!(SelectPercentile::new(50.0, ScoreFunc::FScore, true)
            .transform(&Matrix::zeros(1, 1))
            .is_err());
        assert!(VarianceThreshold::new(0.0).transform(&Matrix::zeros(1, 1)).is_err());
    }
}
