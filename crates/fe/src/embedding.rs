//! Simulated pre-trained embedding extractors — the stand-in for
//! TensorFlow-Hub models in the paper's embedding-selection enrichment
//! (§5.3, Figure 3).
//!
//! The vision-like generator (`volcanoml_data::synthetic::make_embedded_images`)
//! renders latent factors `z` into "pixels" `p = tanh(s (W z + b)) + ε`
//! (`s` = `RENDER_TANH_SCALE`)
//! with `(W, b)` drawn from a *rendering seed*. Two extractors are provided:
//!
//! - [`PretrainedEmbedding::matched`] — "pre-trained on the right domain":
//!   it knows the rendering convention and inverts it (`atanh` + ridge
//!   least-squares onto `W`), recovering the latent factors. Equivalent to a
//!   pre-trained backbone whose features align with the task.
//! - [`PretrainedEmbedding::generic`] — a fixed random nonlinear projection
//!   (random ReLU features), the "wrong-domain backbone": generic but far
//!   less informative.
//!
//! Only a system that can *search* the enriched stage discovers that the
//! matched extractor plus a simple classifier dominates raw pixels — which is
//! precisely the experiment the paper runs against auto-sklearn.

use crate::{FeError, Result, Transformer};
use volcanoml_data::rand_util::{rng_from_seed, standard_normal};
use volcanoml_linalg::{solve_spd, Matrix};

/// Which simulated backbone to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbeddingKind {
    /// Domain-matched extractor: inverts the rendering of the paired
    /// dataset (constructed from the same rendering seed).
    Matched,
    /// Generic random-feature extractor.
    Generic,
}

/// A fixed ("pre-trained") embedding extractor.
#[derive(Debug, Clone)]
pub struct PretrainedEmbedding {
    /// Backbone type.
    pub kind: EmbeddingKind,
    /// Rendering seed of the paired dataset (Matched) or projection seed
    /// (Generic).
    pub seed: u64,
    /// Output embedding width.
    pub n_outputs: usize,
    // Matched: the rendering weights, regenerated from the seed at fit time.
    w: Option<Matrix>, // n_pixels x n_latent
    b: Vec<f64>,
    gram_chol_rhs: Option<Matrix>, // cached (WᵀW + λI)⁻¹ Wᵀ as a matrix
    // Generic: random projection weights.
    proj: Option<Matrix>, // n_pixels x n_outputs
}

impl PretrainedEmbedding {
    /// Creates the domain-matched extractor for a dataset generated with
    /// `dataset_seed` and `n_latent` latent factors. `dataset_seed` must be
    /// the seed passed to `make_embedded_images`.
    pub fn matched(dataset_seed: u64, n_latent: usize) -> Self {
        PretrainedEmbedding {
            kind: EmbeddingKind::Matched,
            seed: volcanoml_data::synthetic::rendering_seed(dataset_seed),
            n_outputs: n_latent,
            w: None,
            b: Vec::new(),
            gram_chol_rhs: None,
            proj: None,
        }
    }

    /// Creates a generic random-feature extractor.
    pub fn generic(seed: u64, n_outputs: usize) -> Self {
        PretrainedEmbedding {
            kind: EmbeddingKind::Generic,
            seed,
            n_outputs: n_outputs.max(1),
            w: None,
            b: Vec::new(),
            gram_chol_rhs: None,
            proj: None,
        }
    }
}

impl Transformer for PretrainedEmbedding {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        let n_pixels = x.cols();
        match self.kind {
            EmbeddingKind::Matched => {
                // Regenerate the rendering parameters from the seed, exactly
                // as the generator drew them.
                let mut rng = rng_from_seed(self.seed);
                let n_latent = self.n_outputs;
                let mut w = Matrix::zeros(n_pixels, n_latent);
                for p in 0..n_pixels {
                    let row = w.row_mut(p);
                    for v in row.iter_mut() {
                        *v = standard_normal(&mut rng);
                    }
                }
                let b: Vec<f64> = (0..n_pixels).map(|_| standard_normal(&mut rng)).collect();
                // Precompute the ridge pseudo-inverse (WᵀW + λI)⁻¹ Wᵀ.
                let gram = w.gram();
                let wt = w.transpose();
                let mut pinv = Matrix::zeros(n_latent, n_pixels);
                for col in 0..n_pixels {
                    let rhs = wt.col(col);
                    let solved = solve_spd(&gram, &rhs, 1e-3).map_err(FeError::from)?;
                    for (r, v) in solved.into_iter().enumerate() {
                        pinv.set(r, col, v);
                    }
                }
                self.w = Some(w);
                self.b = b;
                self.gram_chol_rhs = Some(pinv);
            }
            EmbeddingKind::Generic => {
                let mut rng = rng_from_seed(self.seed);
                let mut proj = Matrix::zeros(n_pixels, self.n_outputs);
                for p in 0..n_pixels {
                    let row = proj.row_mut(p);
                    for v in row.iter_mut() {
                        *v = standard_normal(&mut rng) / (n_pixels as f64).sqrt();
                    }
                }
                self.proj = Some(proj);
            }
        }
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        match self.kind {
            EmbeddingKind::Matched => {
                let pinv = self.gram_chol_rhs.as_ref().ok_or(FeError::NotFitted)?;
                if x.cols() != pinv.cols() {
                    return Err(FeError::Invalid(format!(
                        "embedding fitted on {} pixels, got {}",
                        pinv.cols(),
                        x.cols()
                    )));
                }
                // Invert the rendering: pre = atanh(clamp(p)) / scale − b,
                // then ẑ = pinv · pre.
                let mut out = Matrix::zeros(x.rows(), self.n_outputs);
                let mut pre = vec![0.0; x.cols()];
                for r in 0..x.rows() {
                    for ((p, &v), &bias) in
                        pre.iter_mut().zip(x.row(r).iter()).zip(self.b.iter())
                    {
                        let clamped = v.clamp(-0.999, 0.999);
                        *p = clamped.atanh()
                            / volcanoml_data::synthetic::RENDER_TANH_SCALE
                            - bias;
                    }
                    let out_row = out.row_mut(r);
                    for (c, o) in out_row.iter_mut().enumerate() {
                        *o = volcanoml_linalg::matrix::dot(pinv.row(c), &pre);
                    }
                }
                Ok(out)
            }
            EmbeddingKind::Generic => {
                let proj = self.proj.as_ref().ok_or(FeError::NotFitted)?;
                if x.cols() != proj.rows() {
                    return Err(FeError::Invalid(format!(
                        "embedding fitted on {} pixels, got {}",
                        proj.rows(),
                        x.cols()
                    )));
                }
                let mut out = x.matmul(proj).map_err(FeError::from)?;
                for v in out.data_mut().iter_mut() {
                    *v = v.max(0.0); // random ReLU features
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_data::synthetic::make_embedded_images;

    /// Accuracy of the latent decision rule sign(z0 * z1 * z2).
    fn product_rule_accuracy(z: &Matrix, y: &[f64]) -> f64 {
        let mut hits = 0usize;
        for (i, &label) in y.iter().enumerate() {
            let pred = if z.get(i, 0) * z.get(i, 1) * z.get(i, 2) < 0.0 {
                1.0
            } else {
                0.0
            };
            if (pred - label).abs() < 0.5 {
                hits += 1;
            }
        }
        hits as f64 / y.len() as f64
    }

    #[test]
    fn matched_embedding_recovers_latent_interaction() {
        let seed = 42u64;
        let d = make_embedded_images(300, 4, 64, 2, 0.1, seed);
        let mut emb = PretrainedEmbedding::matched(seed, 4);
        let z = emb.fit_transform(&d.x, &d.y).unwrap();
        assert_eq!(z.shape(), (300, 4));
        let acc = product_rule_accuracy(&z, &d.y);
        assert!(acc > 0.85, "product-rule accuracy on recovered latents: {acc}");
    }

    #[test]
    fn raw_pixels_hide_the_interaction_from_linear_rules() {
        // The same decision rule applied to the first two *pixels* is at
        // chance — the signal only appears after inversion.
        let seed = 42u64;
        let d = make_embedded_images(300, 4, 64, 2, 0.1, seed);
        let acc = product_rule_accuracy(&d.x, &d.y);
        assert!((0.3..0.7).contains(&acc), "raw-pixel rule accuracy: {acc}");
    }

    #[test]
    fn generic_embedding_has_requested_width() {
        let d = make_embedded_images(60, 4, 32, 2, 0.05, 7);
        let mut emb = PretrainedEmbedding::generic(1, 16);
        let z = emb.fit_transform(&d.x, &d.y).unwrap();
        assert_eq!(z.shape(), (60, 16));
        assert!(z.data().iter().all(|&v| v >= 0.0)); // ReLU features
    }

    #[test]
    fn matched_beats_generic_on_the_latent_rule() {
        let seed = 9u64;
        let d = make_embedded_images(300, 4, 64, 2, 0.1, seed);
        let mut matched = PretrainedEmbedding::matched(seed, 4);
        let zm = matched.fit_transform(&d.x, &d.y).unwrap();
        let mut generic = PretrainedEmbedding::generic(1, 4);
        let zg = generic.fit_transform(&d.x, &d.y).unwrap();
        let am = product_rule_accuracy(&zm, &d.y);
        let ag = product_rule_accuracy(&zg, &d.y);
        assert!(am > ag + 0.15, "matched {am} vs generic {ag}");
    }

    #[test]
    fn unfitted_errors() {
        let e = PretrainedEmbedding::matched(0, 4);
        assert!(e.transform(&Matrix::zeros(1, 8)).is_err());
    }

    #[test]
    fn deterministic() {
        let d = make_embedded_images(40, 4, 32, 2, 0.05, 3);
        let mut a = PretrainedEmbedding::matched(3, 4);
        let za = a.fit_transform(&d.x, &d.y).unwrap();
        let mut b = PretrainedEmbedding::matched(3, 4);
        let zb = b.fit_transform(&d.x, &d.y).unwrap();
        assert_eq!(za.data(), zb.data());
    }
}
