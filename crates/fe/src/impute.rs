//! Missing-value imputation (`NaN` cells).

use crate::{FeError, Result, Transformer};
use volcanoml_linalg::Matrix;

/// Imputation strategy per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Column mean of observed values.
    Mean,
    /// Column median of observed values.
    Median,
    /// Most frequent observed value (mode) — right choice for categoricals.
    MostFrequent,
}

/// Column-wise imputer.
#[derive(Debug, Clone)]
pub struct Imputer {
    /// Strategy applied to every column.
    pub strategy: ImputeStrategy,
    fill: Vec<f64>,
}

impl Imputer {
    /// Creates an unfitted imputer.
    pub fn new(strategy: ImputeStrategy) -> Self {
        Imputer {
            strategy,
            fill: Vec::new(),
        }
    }

    /// The learned per-column fill values.
    pub fn fill_values(&self) -> &[f64] {
        &self.fill
    }
}

fn mode(values: &[f64]) -> f64 {
    // Bucket by bit pattern; values come from data columns so exact matches
    // are meaningful (categorical codes, repeated measurements).
    use std::collections::HashMap;
    let mut counts: HashMap<u64, (usize, f64)> = HashMap::new();
    for &v in values {
        let e = counts.entry(v.to_bits()).or_insert((0, v));
        e.0 += 1;
    }
    counts
        .values()
        .max_by(|a, b| a.0.cmp(&b.0).then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)))
        .map(|&(_, v)| v)
        .unwrap_or(0.0)
}

impl Transformer for Imputer {
    fn fit(&mut self, x: &Matrix, _y: &[f64]) -> Result<()> {
        let cols = x.cols();
        self.fill = Vec::with_capacity(cols);
        for c in 0..cols {
            let observed: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
            if observed.is_empty() {
                return Err(FeError::Invalid(format!("column {c} has no observed values")));
            }
            let fill = match self.strategy {
                ImputeStrategy::Mean => volcanoml_linalg::stats::mean(&observed),
                ImputeStrategy::Median => volcanoml_linalg::stats::median(&observed),
                ImputeStrategy::MostFrequent => mode(&observed),
            };
            self.fill.push(fill);
        }
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if self.fill.is_empty() {
            return Err(FeError::NotFitted);
        }
        if x.cols() != self.fill.len() {
            return Err(FeError::Invalid(format!(
                "imputer fitted on {} columns, got {}",
                self.fill.len(),
                x.cols()
            )));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, &f) in row.iter_mut().zip(self.fill.iter()) {
                if v.is_nan() {
                    *v = f;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_missing() -> Matrix {
        Matrix::from_vec(
            4,
            2,
            vec![1.0, 10.0, f64::NAN, 20.0, 3.0, f64::NAN, 5.0, 20.0],
        )
        .unwrap()
    }

    #[test]
    fn mean_imputation() {
        let x = with_missing();
        let mut imp = Imputer::new(ImputeStrategy::Mean);
        let out = imp.fit_transform(&x, &[]).unwrap();
        assert!((out.get(1, 0) - 3.0).abs() < 1e-12); // mean of 1,3,5
        assert!((out.get(2, 1) - 50.0 / 3.0).abs() < 1e-12);
        assert!(!out.data().iter().any(|v| v.is_nan()));
    }

    #[test]
    fn median_imputation() {
        let x = with_missing();
        let mut imp = Imputer::new(ImputeStrategy::Median);
        let out = imp.fit_transform(&x, &[]).unwrap();
        assert!((out.get(1, 0) - 3.0).abs() < 1e-12);
        assert!((out.get(2, 1) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mode_imputation() {
        let x = with_missing();
        let mut imp = Imputer::new(ImputeStrategy::MostFrequent);
        let out = imp.fit_transform(&x, &[]).unwrap();
        assert_eq!(out.get(2, 1), 20.0);
    }

    #[test]
    fn transform_applies_to_new_data() {
        let x = with_missing();
        let mut imp = Imputer::new(ImputeStrategy::Mean);
        imp.fit(&x, &[]).unwrap();
        let fresh = Matrix::from_vec(1, 2, vec![f64::NAN, f64::NAN]).unwrap();
        let out = imp.transform(&fresh).unwrap();
        assert!((out.get(0, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_missing_column_errors() {
        let x = Matrix::from_vec(2, 1, vec![f64::NAN, f64::NAN]).unwrap();
        let mut imp = Imputer::new(ImputeStrategy::Mean);
        assert!(imp.fit(&x, &[]).is_err());
    }

    #[test]
    fn unfitted_errors() {
        let imp = Imputer::new(ImputeStrategy::Mean);
        assert!(imp.transform(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn width_mismatch_errors() {
        let x = with_missing();
        let mut imp = Imputer::new(ImputeStrategy::Mean);
        imp.fit(&x, &[]).unwrap();
        assert!(imp.transform(&Matrix::zeros(1, 5)).is_err());
    }
}
