//! A minimal, offline stand-in for the external `criterion` crate.
//!
//! The workspace's micro-benchmarks use only a small slice of criterion's
//! API — `Criterion::bench_function`, `Bencher::iter`, `criterion_group!`,
//! and `criterion_main!` — so this shim re-implements exactly that slice:
//! per-benchmark warm-up, adaptive iteration counts targeting a fixed
//! measurement window, and a median-of-batches report printed to stdout.
//! It keeps `cargo bench --features criterion-bench` working with no
//! crates.io dependency; swap the real crate back in for rigorous
//! statistics.

use std::time::{Duration, Instant};

/// Drives a single benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body` over the batch's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark registry (criterion's entry object).
pub struct Criterion {
    /// Target wall time per measurement batch.
    measurement: Duration,
    /// Batches per benchmark (the median is reported).
    batches: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(200),
            batches: 5,
        }
    }
}

impl Criterion {
    /// Sets the number of measurement batches (criterion's `sample_size`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.batches = n.max(2);
        self
    }

    /// Sets the target wall time per measurement batch.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the shim's calibration loop already
    /// doubles as warm-up, so the value is ignored.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration: find an iteration count filling the measurement window.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.measurement || iters >= 1 << 30 {
                break;
            }
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            let want = if per_iter > 0.0 {
                (self.measurement.as_secs_f64() / per_iter).ceil() as u64
            } else {
                iters * 16
            };
            iters = want.clamp(iters + 1, iters * 16);
        }
        let mut per_iter_ns: Vec<f64> = (0..self.batches)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter_ns[per_iter_ns.len() / 2];
        println!("{name:<40} {:>14}/iter  ({iters} iters/batch)", fmt_ns(median));
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point: `criterion_main!(group_a, group_b);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            batches: 3,
        };
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2_000_000_000.0).contains("s"));
    }
}
