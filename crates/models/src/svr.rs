//! ε-insensitive support vector regression (SMO on the dual) — the `SVR`
//! member of the paper's regression search space.

use crate::svm::Kernel;
use crate::{check_fit_inputs, Estimator, ModelError, Result};
use rand::RngExt;
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_linalg::Matrix;

/// ε-SVR trained with a simplified SMO over the dual coefficients
/// `β_i = α_i − α_i*` (each clipped to `[-C, C]`).
#[derive(Debug, Clone)]
pub struct SvmRegressor {
    /// Soft-margin penalty C.
    pub c: f64,
    /// Width of the ε-insensitive tube.
    pub epsilon: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// KKT tolerance.
    pub tol: f64,
    /// Consecutive clean passes before SMO stops.
    pub max_passes: usize,
    /// RNG seed for the second-index heuristic.
    pub seed: u64,
    beta: Vec<f64>,
    bias: f64,
    x_train: Option<Matrix>,
    means: Vec<f64>,
    stds: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl SvmRegressor {
    /// Creates an untrained model.
    pub fn new(c: f64, epsilon: f64, kernel: Kernel, seed: u64) -> Self {
        SvmRegressor {
            c,
            epsilon,
            kernel,
            tol: 1e-3,
            max_passes: 3,
            seed,
            beta: Vec::new(),
            bias: 0.0,
            x_train: None,
            means: Vec::new(),
            stds: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Number of support vectors (non-zero dual coefficients).
    pub fn n_support_vectors(&self) -> usize {
        self.beta.iter().filter(|b| b.abs() > 1e-9).count()
    }

    fn scale_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    fn raw_predict(&self, xt: &Matrix, row: &[f64]) -> f64 {
        let mut s = self.bias;
        for (j, &b) in self.beta.iter().enumerate() {
            if b != 0.0 {
                s += b * self.kernel.eval(xt.row(j), row);
            }
        }
        s
    }
}

impl Estimator for SvmRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.means = volcanoml_linalg::stats::column_means(x);
        self.stds = volcanoml_linalg::stats::column_stds(x)
            .into_iter()
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        self.y_mean = volcanoml_linalg::stats::mean(y);
        self.y_std = {
            let s = volcanoml_linalg::stats::std_dev(y);
            if s < 1e-9 {
                1.0
            } else {
                s
            }
        };
        let xs = self.scale_matrix(x);
        // Cap the working set: SMO is quadratic in n.
        let cap = 500usize;
        let (x_work, y_work): (Matrix, Vec<f64>) = if xs.rows() > cap {
            let mut rng = rng_from_seed(self.seed ^ 0xcafe);
            let idx =
                volcanoml_data::rand_util::sample_without_replacement(&mut rng, xs.rows(), cap);
            (
                xs.select_rows(&idx),
                idx.iter().map(|&i| (y[i] - self.y_mean) / self.y_std).collect(),
            )
        } else {
            (
                xs,
                y.iter().map(|v| (v - self.y_mean) / self.y_std).collect(),
            )
        };
        let n = x_work.rows();
        let mut beta = vec![0.0; n];
        let mut bias = 0.0;
        let mut rng = rng_from_seed(self.seed);
        let eps = self.epsilon.max(1e-6);
        let c = self.c.max(1e-9);

        let f = |beta: &[f64], bias: f64, i: usize| -> f64 {
            let mut s = bias;
            let row_i = x_work.row(i);
            for (j, &b) in beta.iter().enumerate() {
                if b != 0.0 {
                    s += b * self.kernel.eval(x_work.row(j), row_i);
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut guard = 0usize;
        while passes < self.max_passes && guard < self.max_passes * 40 {
            guard += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&beta, bias, i) - y_work[i];
                // KKT for the ε-tube: |error| > ε with room to move.
                let violates = (ei > eps + self.tol && beta[i] > -c)
                    || (ei < -(eps + self.tol) && beta[i] < c);
                if !violates {
                    continue;
                }
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let _ej = f(&beta, bias, j) - y_work[j];
                let kii = self.kernel.eval(x_work.row(i), x_work.row(i));
                let kjj = self.kernel.eval(x_work.row(j), x_work.row(j));
                let kij = self.kernel.eval(x_work.row(i), x_work.row(j));
                let eta = kii + kjj - 2.0 * kij;
                if eta <= 1e-12 {
                    continue;
                }
                // Move β_i along the direction reducing its error (tube-aware
                // target), compensating with β_j to keep Σβ stable.
                let target = if ei > 0.0 { ei - eps } else { ei + eps };
                let delta = (target / eta).clamp(-c, c);
                let new_bi = (beta[i] - delta).clamp(-c, c);
                let applied = beta[i] - new_bi;
                if applied.abs() < 1e-9 {
                    continue;
                }
                let new_bj = (beta[j] + applied).clamp(-c, c);
                let applied_j = new_bj - beta[j];
                beta[i] = new_bi;
                beta[j] = new_bj;
                // Bias update from point i's post-move error.
                bias -= ei - applied * kii + applied_j * kij;
                bias = bias.clamp(-1e3, 1e3);
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }
        // Recompute the bias as the median residual (robust against the
        // heuristic updates above).
        let residuals: Vec<f64> = (0..n)
            .map(|i| y_work[i] - (f(&beta, 0.0, i)))
            .collect();
        bias = volcanoml_linalg::stats::median(&residuals);

        self.beta = beta;
        self.bias = bias;
        self.x_train = Some(x_work);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let xt = self.x_train.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != xt.cols() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                xt.cols(),
                x.cols()
            )));
        }
        let xs = self.scale_matrix(x);
        Ok((0..xs.rows())
            .map(|i| self.raw_predict(xt, xs.row(i)) * self.y_std + self.y_mean)
            .collect())
    }
}

/// Huber-loss linear regressor (robust to target outliers), trained with
/// SGD — rounds out the robust corner of the regression zoo.
#[derive(Debug, Clone)]
pub struct HuberRegressor {
    /// Transition point between quadratic and linear loss (in target
    /// standard deviations).
    pub delta: f64,
    /// L2 penalty.
    pub alpha: f64,
    /// Epochs.
    pub max_iter: usize,
    /// Seed.
    pub seed: u64,
    weights: Option<Vec<f64>>, // d+1
    means: Vec<f64>,
    stds: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl HuberRegressor {
    /// Creates an untrained model.
    pub fn new(delta: f64, alpha: f64, max_iter: usize, seed: u64) -> Self {
        HuberRegressor {
            delta: delta.max(1e-3),
            alpha,
            max_iter,
            seed,
            weights: None,
            means: Vec::new(),
            stds: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }
}

impl Estimator for HuberRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.means = volcanoml_linalg::stats::column_means(x);
        self.stds = volcanoml_linalg::stats::column_stds(x)
            .into_iter()
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        self.y_mean = volcanoml_linalg::stats::median(y);
        self.y_std = {
            let s = volcanoml_linalg::stats::std_dev(y);
            if s < 1e-9 {
                1.0
            } else {
                s
            }
        };
        let n = x.rows();
        let d = x.cols();
        let mut w = vec![0.0; d + 1];
        let mut rng = rng_from_seed(self.seed);
        for epoch in 0..self.max_iter {
            let lr = 0.05 / (1.0 + 0.05 * epoch as f64);
            let order = volcanoml_data::rand_util::permutation(&mut rng, n);
            for &i in &order {
                let row: Vec<f64> = x
                    .row(i)
                    .iter()
                    .zip(self.means.iter())
                    .zip(self.stds.iter())
                    .map(|((v, m), s)| (v - m) / s)
                    .collect();
                let pred = volcanoml_linalg::matrix::dot(&row, &w[..d]) + w[d];
                let err = pred - (y[i] - self.y_mean) / self.y_std;
                // Huber gradient: clipped error.
                let g = err.clamp(-self.delta, self.delta);
                for j in 0..d {
                    w[j] -= lr * (g * row[j] + self.alpha * w[j]);
                }
                w[d] -= lr * g;
            }
        }
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let w = self.weights.as_ref().ok_or(ModelError::NotFitted)?;
        let d = w.len() - 1;
        if x.cols() != d {
            return Err(ModelError::Invalid(format!(
                "predict expects {d} features, got {}",
                x.cols()
            )));
        }
        Ok((0..x.rows())
            .map(|i| {
                let row: Vec<f64> = x
                    .row(i)
                    .iter()
                    .zip(self.means.iter())
                    .zip(self.stds.iter())
                    .map(|((v, m), s)| (v - m) / s)
                    .collect();
                (volcanoml_linalg::matrix::dot(&row, &w[..d]) + w[d]) * self.y_std + self.y_mean
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_regression, split};
    use volcanoml_data::metrics::r2;
    use volcanoml_data::synthetic::make_friedman1;

    #[test]
    fn svr_fits_linear_signal() {
        let d = easy_regression();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = SvmRegressor::new(5.0, 0.05, Kernel::Linear, 0);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.8, "r2 {score}");
    }

    #[test]
    fn rbf_svr_fits_nonlinear_signal() {
        let d = make_friedman1(350, 0, 0.2, 3);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = SvmRegressor::new(10.0, 0.05, Kernel::Rbf { gamma: 0.5 }, 0);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.6, "r2 {score}");
    }

    #[test]
    fn svr_has_support_vectors() {
        let d = easy_regression();
        let mut m = SvmRegressor::new(1.0, 0.1, Kernel::Linear, 0);
        m.fit(&d.x, &d.y).unwrap();
        assert!(m.n_support_vectors() > 0);
    }

    #[test]
    fn wider_tube_means_fewer_support_vectors() {
        let d = easy_regression();
        let mut tight = SvmRegressor::new(1.0, 0.01, Kernel::Linear, 0);
        tight.fit(&d.x, &d.y).unwrap();
        let mut loose = SvmRegressor::new(1.0, 1.5, Kernel::Linear, 0);
        loose.fit(&d.x, &d.y).unwrap();
        assert!(
            loose.n_support_vectors() <= tight.n_support_vectors(),
            "{} vs {}",
            loose.n_support_vectors(),
            tight.n_support_vectors()
        );
    }

    #[test]
    fn huber_fits_clean_data() {
        let d = easy_regression();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = HuberRegressor::new(1.0, 1e-5, 80, 0);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.85, "r2 {score}");
    }

    #[test]
    fn huber_resists_target_outliers() {
        let d = easy_regression();
        let ((xt, mut yt), (xv, yv)) = split(&d);
        // Corrupt 10% of training targets with huge outliers.
        for i in (0..yt.len()).step_by(10) {
            yt[i] += 500.0;
        }
        let mut huber = HuberRegressor::new(1.0, 1e-5, 80, 0);
        huber.fit(&xt, &yt).unwrap();
        let huber_r2 = r2(&yv, &huber.predict(&xv).unwrap());
        let mut ols = crate::linear::RidgeRegression::new(1e-6);
        ols.fit(&xt, &yt).unwrap();
        let ols_r2 = r2(&yv, &ols.predict(&xv).unwrap());
        assert!(
            huber_r2 > ols_r2,
            "huber {huber_r2} should beat OLS {ols_r2} under outliers"
        );
    }

    #[test]
    fn unfitted_errors() {
        let m = SvmRegressor::new(1.0, 0.1, Kernel::Linear, 0);
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
        let h = HuberRegressor::new(1.0, 1e-4, 10, 0);
        assert!(h.predict(&Matrix::zeros(1, 2)).is_err());
    }
}
