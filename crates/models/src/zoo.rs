//! The algorithm zoo: a uniform registry of every model family, its
//! hyper-parameter descriptors, and a factory that builds a concrete model
//! from resolved hyper-parameter values.
//!
//! The AutoML layer (crate `volcanoml-core`) compiles [`ParamDef`]s into its
//! conditional search space: each algorithm's parameters are only active when
//! the algorithm-selection variable takes that algorithm's value — the
//! structure the paper's conditioning block exploits.

use crate::boosting::{AdaBoostClassifier, GradientBoostingClassifier, GradientBoostingRegressor};
use crate::discriminant::{Lda, Qda};
use crate::forest::{ForestClassifier, ForestConfig, ForestRegressor};
use crate::linear::{ElasticNet, LinearSvm, LogisticRegression, RidgeRegression, SgdRegressor};
use crate::mlp::{Activation, MlpClassifier, MlpConfig, MlpRegressor};
use crate::naive_bayes::GaussianNb;
use crate::neighbors::{KnnClassifier, KnnRegressor, KnnWeights};
use crate::svm::{Kernel, SvmClassifier};
use crate::svr::{HuberRegressor, SvmRegressor};
use crate::tree::{
    Criterion, DecisionTreeClassifier, DecisionTreeRegressor, HistKernel, MaxFeatures,
    SplitStrategy, TreeConfig,
};
use crate::{Estimator, ModelError, Result};
use std::collections::HashMap;
use volcanoml_data::Task;
use volcanoml_linalg::Matrix;

/// Value domain of one hyper-parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// Continuous value in `[lo, hi]`; `log` requests log-uniform sampling.
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Default value.
        default: f64,
        /// Log-scale flag.
        log: bool,
    },
    /// Integer value in `[lo, hi]`.
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Default value.
        default: i64,
        /// Log-scale flag.
        log: bool,
    },
    /// Categorical choice among named options; values are choice indices.
    Cat {
        /// Option labels.
        choices: Vec<&'static str>,
        /// Default choice index.
        default: usize,
    },
}

/// A named hyper-parameter descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Parameter name, unique within its algorithm.
    pub name: &'static str,
    /// Domain.
    pub kind: ParamKind,
}

impl ParamDef {
    fn float(name: &'static str, lo: f64, hi: f64, default: f64, log: bool) -> ParamDef {
        ParamDef {
            name,
            kind: ParamKind::Float { lo, hi, default, log },
        }
    }

    fn int(name: &'static str, lo: i64, hi: i64, default: i64, log: bool) -> ParamDef {
        ParamDef {
            name,
            kind: ParamKind::Int { lo, hi, default, log },
        }
    }

    fn cat(name: &'static str, choices: Vec<&'static str>, default: usize) -> ParamDef {
        ParamDef {
            name,
            kind: ParamKind::Cat { choices, default },
        }
    }

    /// The default value encoded as `f64` (choice index for categoricals).
    pub fn default_value(&self) -> f64 {
        match &self.kind {
            ParamKind::Float { default, .. } => *default,
            ParamKind::Int { default, .. } => *default as f64,
            ParamKind::Cat { default, .. } => *default as f64,
        }
    }
}

/// Accessor over resolved hyper-parameter values with defaults.
pub struct Params<'a> {
    values: &'a HashMap<String, f64>,
    defs: Vec<ParamDef>,
}

impl<'a> Params<'a> {
    /// Wraps a value map together with the algorithm's descriptors (for
    /// defaults).
    pub fn new(values: &'a HashMap<String, f64>, defs: Vec<ParamDef>) -> Self {
        Params { values, defs }
    }

    fn default_of(&self, name: &str) -> f64 {
        self.defs
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.default_value())
            .unwrap_or(0.0)
    }

    /// Float parameter with declared default.
    pub fn f(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or_else(|| self.default_of(name))
    }

    /// Integer parameter (rounded).
    pub fn i(&self, name: &str) -> i64 {
        self.f(name).round() as i64
    }

    /// Non-negative usize parameter.
    pub fn u(&self, name: &str) -> usize {
        self.f(name).round().max(0.0) as usize
    }

    /// Categorical choice index.
    pub fn cat(&self, name: &str) -> usize {
        self.f(name).round().max(0.0) as usize
    }
}

/// Every algorithm family in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AlgorithmKind {
    // Classification.
    Logistic,
    LinearSvm,
    KernelSvm,
    DecisionTree,
    RandomForest,
    ExtraTrees,
    GradientBoosting,
    AdaBoost,
    Knn,
    GaussianNb,
    Lda,
    Qda,
    Mlp,
    // Regression.
    Ridge,
    Lasso,
    ElasticNet,
    SgdRegressor,
    DecisionTreeReg,
    RandomForestReg,
    ExtraTreesReg,
    GradientBoostingReg,
    KnnReg,
    MlpReg,
    SvmReg,
    HuberReg,
}

impl AlgorithmKind {
    /// All algorithms applicable to a task, in canonical order.
    pub fn for_task(task: Task) -> Vec<AlgorithmKind> {
        use AlgorithmKind::*;
        match task {
            Task::Classification => vec![
                Logistic,
                LinearSvm,
                KernelSvm,
                DecisionTree,
                RandomForest,
                ExtraTrees,
                GradientBoosting,
                AdaBoost,
                Knn,
                GaussianNb,
                Lda,
                Qda,
                Mlp,
            ],
            Task::Regression => vec![
                Ridge,
                Lasso,
                ElasticNet,
                SgdRegressor,
                DecisionTreeReg,
                RandomForestReg,
                ExtraTreesReg,
                GradientBoostingReg,
                KnnReg,
                MlpReg,
                SvmReg,
                HuberReg,
            ],
        }
    }

    /// Which task the algorithm solves.
    pub fn task(&self) -> Task {
        use AlgorithmKind::*;
        match self {
            Logistic | LinearSvm | KernelSvm | DecisionTree | RandomForest | ExtraTrees
            | GradientBoosting | AdaBoost | Knn | GaussianNb | Lda | Qda | Mlp => {
                Task::Classification
            }
            _ => Task::Regression,
        }
    }

    /// Stable display name (used in search-space variable names and reports).
    pub fn name(&self) -> &'static str {
        use AlgorithmKind::*;
        match self {
            Logistic => "logistic",
            LinearSvm => "linear_svm",
            KernelSvm => "kernel_svm",
            DecisionTree => "decision_tree",
            RandomForest => "random_forest",
            ExtraTrees => "extra_trees",
            GradientBoosting => "gradient_boosting",
            AdaBoost => "adaboost",
            Knn => "knn",
            GaussianNb => "gaussian_nb",
            Lda => "lda",
            Qda => "qda",
            Mlp => "mlp",
            Ridge => "ridge",
            Lasso => "lasso",
            ElasticNet => "elastic_net",
            SgdRegressor => "sgd",
            DecisionTreeReg => "decision_tree",
            RandomForestReg => "random_forest",
            ExtraTreesReg => "extra_trees",
            GradientBoostingReg => "gradient_boosting",
            KnnReg => "knn",
            MlpReg => "mlp",
            SvmReg => "svr",
            HuberReg => "huber",
        }
    }

    /// Looks an algorithm up by name within a task.
    pub fn from_name(task: Task, name: &str) -> Option<AlgorithmKind> {
        AlgorithmKind::for_task(task)
            .into_iter()
            .find(|k| k.name() == name)
    }

    /// Hyper-parameter descriptors for this algorithm.
    pub fn param_defs(&self) -> Vec<ParamDef> {
        use AlgorithmKind::*;
        match self {
            Logistic => vec![
                ParamDef::float("alpha", 1e-6, 1e-1, 1e-4, true),
                ParamDef::float("learning_rate", 1e-3, 0.5, 0.1, true),
                ParamDef::int("max_iter", 10, 60, 30, false),
            ],
            LinearSvm => vec![
                ParamDef::float("alpha", 1e-6, 1e-1, 1e-4, true),
                ParamDef::int("max_iter", 5, 40, 20, false),
            ],
            KernelSvm => vec![
                ParamDef::float("c", 0.03, 100.0, 1.0, true),
                ParamDef::cat("kernel", vec!["rbf", "poly", "linear"], 0),
                ParamDef::float("gamma", 1e-3, 8.0, 0.5, true),
                ParamDef::int("degree", 2, 4, 3, false),
            ],
            DecisionTree | DecisionTreeReg => {
                let mut defs = vec![
                    ParamDef::int("max_depth", 2, 20, 10, false),
                    ParamDef::int("min_samples_leaf", 1, 20, 1, true),
                    ParamDef::int("min_samples_split", 2, 20, 2, true),
                ];
                if *self == DecisionTree {
                    defs.push(ParamDef::cat("criterion", vec!["gini", "entropy"], 0));
                }
                defs
            }
            RandomForest | ExtraTrees | RandomForestReg | ExtraTreesReg => {
                let mut defs = vec![
                    ParamDef::int("n_estimators", 10, 120, 50, true),
                    ParamDef::int("max_depth", 4, 20, 14, false),
                    ParamDef::int("min_samples_leaf", 1, 20, 1, true),
                    ParamDef::cat("max_features", vec!["sqrt", "log2", "half", "all"], 0),
                ];
                if self.task() == Task::Classification {
                    defs.push(ParamDef::cat("criterion", vec!["gini", "entropy"], 0));
                }
                defs
            }
            GradientBoosting | GradientBoostingReg => vec![
                ParamDef::int("n_estimators", 10, 120, 50, true),
                ParamDef::float("learning_rate", 0.01, 0.5, 0.1, true),
                ParamDef::int("max_depth", 1, 6, 3, false),
                ParamDef::float("subsample", 0.5, 1.0, 1.0, false),
                ParamDef::int("min_samples_leaf", 1, 20, 2, true),
            ],
            AdaBoost => vec![
                ParamDef::int("n_estimators", 10, 120, 50, true),
                ParamDef::float("learning_rate", 0.02, 2.0, 0.5, true),
                ParamDef::int("max_depth", 1, 4, 2, false),
            ],
            Knn | KnnReg => vec![
                ParamDef::int("n_neighbors", 1, 40, 5, true),
                ParamDef::cat("weights", vec!["uniform", "distance"], 0),
            ],
            GaussianNb => vec![ParamDef::float("var_smoothing", 1e-12, 1e-6, 1e-9, true)],
            Lda => vec![ParamDef::float("shrinkage", 0.0, 1.0, 0.1, false)],
            Qda => vec![ParamDef::float("reg_param", 0.0, 1.0, 0.1, false)],
            Mlp | MlpReg => vec![
                ParamDef::int("hidden_size", 8, 128, 32, true),
                ParamDef::cat("n_layers", vec!["one", "two"], 0),
                ParamDef::float("learning_rate", 1e-4, 1e-2, 1e-3, true),
                ParamDef::float("alpha", 1e-6, 1e-2, 1e-4, true),
                ParamDef::cat("activation", vec!["relu", "tanh"], 0),
                ParamDef::int("max_iter", 15, 80, 40, true),
            ],
            Ridge => vec![ParamDef::float("alpha", 1e-6, 1e2, 1.0, true)],
            Lasso => vec![
                ParamDef::float("alpha", 1e-5, 1e1, 0.1, true),
                ParamDef::int("max_iter", 50, 400, 150, true),
            ],
            ElasticNet => vec![
                ParamDef::float("alpha", 1e-5, 1e1, 0.1, true),
                ParamDef::float("l1_ratio", 0.0, 1.0, 0.5, false),
                ParamDef::int("max_iter", 50, 400, 150, true),
            ],
            SgdRegressor => vec![
                ParamDef::float("alpha", 1e-6, 1e-1, 1e-4, true),
                ParamDef::float("learning_rate", 1e-3, 0.1, 0.01, true),
                ParamDef::int("max_iter", 10, 80, 40, true),
            ],
            SvmReg => vec![
                ParamDef::float("c", 0.03, 100.0, 1.0, true),
                ParamDef::float("epsilon", 0.01, 1.0, 0.1, true),
                ParamDef::cat("kernel", vec!["rbf", "linear"], 0),
                ParamDef::float("gamma", 1e-3, 8.0, 0.5, true),
            ],
            HuberReg => vec![
                ParamDef::float("delta", 0.1, 3.0, 1.0, true),
                ParamDef::float("alpha", 1e-6, 1e-1, 1e-4, true),
                ParamDef::int("max_iter", 20, 120, 60, true),
            ],
        }
    }

    /// Builds a concrete model from resolved parameter values (missing keys
    /// fall back to declared defaults).
    pub fn build(&self, values: &HashMap<String, f64>, seed: u64) -> Model {
        use AlgorithmKind::*;
        let p = Params::new(values, self.param_defs());
        // "n_jobs" and "f32_binning" are execution plumbing injected by the
        // evaluator, not searchable hyper-parameters, so they are read
        // straight off the map.
        let n_jobs = values
            .get("n_jobs")
            .map(|v| (*v as usize).max(1))
            .unwrap_or(1);
        let f32_binning = values.get("f32_binning").is_some_and(|v| *v != 0.0);
        match self {
            Logistic => Model::Logistic(LogisticRegression::new(
                p.f("alpha"),
                p.f("learning_rate"),
                p.u("max_iter"),
                seed,
            )),
            LinearSvm => {
                Model::LinearSvm(crate::linear::LinearSvm::new(p.f("alpha"), p.u("max_iter"), seed))
            }
            KernelSvm => {
                let kernel = match p.cat("kernel") {
                    1 => Kernel::Poly {
                        gamma: p.f("gamma"),
                        coef0: 1.0,
                        degree: p.u("degree") as u32,
                    },
                    2 => Kernel::Linear,
                    _ => Kernel::Rbf { gamma: p.f("gamma") },
                };
                Model::KernelSvm(SvmClassifier::new(p.f("c"), kernel, seed))
            }
            DecisionTree => {
                let cfg = TreeConfig {
                    criterion: if p.cat("criterion") == 1 {
                        Criterion::Entropy
                    } else {
                        Criterion::Gini
                    },
                    max_depth: p.u("max_depth"),
                    min_samples_split: p.u("min_samples_split").max(2),
                    min_samples_leaf: p.u("min_samples_leaf").max(1),
                    max_features: MaxFeatures::All,
                    split_strategy: SplitStrategy::Best,
                    max_bins: crate::binned::DEFAULT_MAX_BINS,
                    hist_n_jobs: n_jobs,
                    hist_kernel: HistKernel::Flat,
                    seed,
                };
                Model::DecisionTree(DecisionTreeClassifier::new(cfg))
            }
            DecisionTreeReg => {
                let cfg = TreeConfig {
                    criterion: Criterion::Mse,
                    max_depth: p.u("max_depth"),
                    min_samples_split: p.u("min_samples_split").max(2),
                    min_samples_leaf: p.u("min_samples_leaf").max(1),
                    max_features: MaxFeatures::All,
                    split_strategy: SplitStrategy::Best,
                    max_bins: crate::binned::DEFAULT_MAX_BINS,
                    hist_n_jobs: n_jobs,
                    hist_kernel: HistKernel::Flat,
                    seed,
                };
                Model::DecisionTreeReg(DecisionTreeRegressor::new(cfg))
            }
            RandomForest | ExtraTrees | RandomForestReg | ExtraTreesReg => {
                let extra = matches!(self, ExtraTrees | ExtraTreesReg);
                let cfg = ForestConfig {
                    n_estimators: p.u("n_estimators").max(1),
                    max_depth: p.u("max_depth"),
                    min_samples_leaf: p.u("min_samples_leaf").max(1),
                    min_samples_split: 2 * p.u("min_samples_leaf").max(1),
                    max_features: match p.cat("max_features") {
                        1 => MaxFeatures::Log2,
                        2 => MaxFeatures::Fraction(0.5),
                        3 => MaxFeatures::All,
                        _ => MaxFeatures::Sqrt,
                    },
                    bootstrap: !extra,
                    // Random forests use the histogram fast path; extra-trees
                    // keep their defining random thresholds.
                    split_strategy: if extra {
                        SplitStrategy::Random
                    } else {
                        SplitStrategy::Histogram
                    },
                    criterion: if self.task() == Task::Regression {
                        Criterion::Mse
                    } else if p.cat("criterion") == 1 {
                        Criterion::Entropy
                    } else {
                        Criterion::Gini
                    },
                    max_bins: crate::binned::DEFAULT_MAX_BINS,
                    n_jobs,
                    f32_binning,
                    seed,
                };
                if self.task() == Task::Classification {
                    Model::Forest(ForestClassifier::new(cfg))
                } else {
                    Model::ForestReg(ForestRegressor::new(cfg))
                }
            }
            GradientBoosting => {
                let mut m = GradientBoostingClassifier::new(
                    p.u("n_estimators").max(1),
                    p.f("learning_rate"),
                    p.u("max_depth").max(1),
                    p.f("subsample"),
                    p.u("min_samples_leaf").max(1),
                    seed,
                );
                m.split_strategy = SplitStrategy::Histogram;
                m.n_jobs = n_jobs;
                Model::Gbdt(m)
            }
            GradientBoostingReg => {
                let mut m = GradientBoostingRegressor::new(
                    p.u("n_estimators").max(1),
                    p.f("learning_rate"),
                    p.u("max_depth").max(1),
                    p.f("subsample"),
                    p.u("min_samples_leaf").max(1),
                    seed,
                );
                m.split_strategy = SplitStrategy::Histogram;
                m.n_jobs = n_jobs;
                Model::GbdtReg(m)
            }
            AdaBoost => {
                let mut m = AdaBoostClassifier::new(
                    p.u("n_estimators").max(1),
                    p.f("learning_rate"),
                    p.u("max_depth").max(1),
                    seed,
                );
                m.split_strategy = SplitStrategy::Histogram;
                m.n_jobs = n_jobs;
                Model::AdaBoost(m)
            }
            Knn => {
                let w = if p.cat("weights") == 1 {
                    KnnWeights::Distance
                } else {
                    KnnWeights::Uniform
                };
                Model::Knn(KnnClassifier::new(p.u("n_neighbors").max(1), w))
            }
            KnnReg => {
                let w = if p.cat("weights") == 1 {
                    KnnWeights::Distance
                } else {
                    KnnWeights::Uniform
                };
                Model::KnnReg(KnnRegressor::new(p.u("n_neighbors").max(1), w))
            }
            GaussianNb => Model::GaussianNb(crate::naive_bayes::GaussianNb::new(p.f("var_smoothing"))),
            Lda => Model::Lda(crate::discriminant::Lda::new(p.f("shrinkage"))),
            Qda => Model::Qda(crate::discriminant::Qda::new(p.f("reg_param"))),
            Mlp | MlpReg => {
                let h = p.u("hidden_size").max(2);
                let hidden = if p.cat("n_layers") == 1 {
                    vec![h, (h / 2).max(2)]
                } else {
                    vec![h]
                };
                let cfg = MlpConfig {
                    hidden,
                    activation: if p.cat("activation") == 1 {
                        Activation::Tanh
                    } else {
                        Activation::Relu
                    },
                    learning_rate: p.f("learning_rate"),
                    alpha: p.f("alpha"),
                    max_iter: p.u("max_iter").max(1),
                    batch_size: 32,
                    seed,
                };
                if *self == Mlp {
                    Model::Mlp(MlpClassifier::new(cfg))
                } else {
                    Model::MlpReg(MlpRegressor::new(cfg))
                }
            }
            Ridge => Model::Ridge(RidgeRegression::new(p.f("alpha"))),
            Lasso => Model::Lasso(crate::linear::ElasticNet::lasso(p.f("alpha"), p.u("max_iter").max(1))),
            ElasticNet => Model::ElasticNet(crate::linear::ElasticNet::new(
                p.f("alpha"),
                p.f("l1_ratio"),
                p.u("max_iter").max(1),
            )),
            SgdRegressor => Model::SgdReg(crate::linear::SgdRegressor::new(
                p.f("alpha"),
                p.f("learning_rate"),
                p.u("max_iter").max(1),
                seed,
            )),
            SvmReg => {
                let kernel = match p.cat("kernel") {
                    1 => Kernel::Linear,
                    _ => Kernel::Rbf { gamma: p.f("gamma") },
                };
                Model::SvmReg(SvmRegressor::new(p.f("c"), p.f("epsilon"), kernel, seed))
            }
            HuberReg => Model::HuberReg(HuberRegressor::new(
                p.f("delta"),
                p.f("alpha"),
                p.u("max_iter").max(1),
                seed,
            )),
        }
    }

    /// Builds the model with every parameter at its default.
    pub fn build_default(&self, seed: u64) -> Model {
        self.build(&HashMap::new(), seed)
    }
}

/// A model of any family, dispatching [`Estimator`] calls to the concrete
/// implementation.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum Model {
    Logistic(LogisticRegression),
    LinearSvm(LinearSvm),
    KernelSvm(SvmClassifier),
    DecisionTree(DecisionTreeClassifier),
    DecisionTreeReg(DecisionTreeRegressor),
    Forest(ForestClassifier),
    ForestReg(ForestRegressor),
    Gbdt(GradientBoostingClassifier),
    GbdtReg(GradientBoostingRegressor),
    AdaBoost(AdaBoostClassifier),
    Knn(KnnClassifier),
    KnnReg(KnnRegressor),
    GaussianNb(GaussianNb),
    Lda(Lda),
    Qda(Qda),
    Mlp(MlpClassifier),
    MlpReg(MlpRegressor),
    Ridge(RidgeRegression),
    Lasso(ElasticNet),
    ElasticNet(ElasticNet),
    SgdReg(SgdRegressor),
    SvmReg(SvmRegressor),
    HuberReg(HuberRegressor),
}

macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            Model::Logistic($m) => $body,
            Model::LinearSvm($m) => $body,
            Model::KernelSvm($m) => $body,
            Model::DecisionTree($m) => $body,
            Model::DecisionTreeReg($m) => $body,
            Model::Forest($m) => $body,
            Model::ForestReg($m) => $body,
            Model::Gbdt($m) => $body,
            Model::GbdtReg($m) => $body,
            Model::AdaBoost($m) => $body,
            Model::Knn($m) => $body,
            Model::KnnReg($m) => $body,
            Model::GaussianNb($m) => $body,
            Model::Lda($m) => $body,
            Model::Qda($m) => $body,
            Model::Mlp($m) => $body,
            Model::MlpReg($m) => $body,
            Model::Ridge($m) => $body,
            Model::Lasso($m) => $body,
            Model::ElasticNet($m) => $body,
            Model::SgdReg($m) => $body,
            Model::SvmReg($m) => $body,
            Model::HuberReg($m) => $body,
        }
    };
}

impl Estimator for Model {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        dispatch!(self, m => m.fit(x, y))
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        dispatch!(self, m => m.predict(x))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        dispatch!(self, m => m.predict_proba(x))
    }
}

impl Model {
    /// Fits and immediately evaluates on held-out data, returning the metric
    /// loss. Convenience wrapper used in tests and examples.
    pub fn fit_score(
        &mut self,
        x_train: &Matrix,
        y_train: &[f64],
        x_test: &Matrix,
        y_test: &[f64],
        metric: volcanoml_data::Metric,
    ) -> Result<f64> {
        self.fit(x_train, y_train)?;
        let preds = self.predict(x_test)?;
        Ok(metric.loss(y_test, &preds))
    }
}

/// Returns an error if an algorithm/task combination is inconsistent — used
/// by the AutoML layer when users enrich spaces by hand.
pub fn check_algorithm_task(kind: AlgorithmKind, task: Task) -> Result<()> {
    if kind.task() != task {
        return Err(ModelError::Invalid(format!(
            "algorithm {} solves {:?}, not {:?}",
            kind.name(),
            kind.task(),
            task
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_regression, split};
    use volcanoml_data::metrics::accuracy;
    use volcanoml_data::Metric;

    #[test]
    fn zoo_covers_both_tasks() {
        assert_eq!(AlgorithmKind::for_task(Task::Classification).len(), 13);
        assert_eq!(AlgorithmKind::for_task(Task::Regression).len(), 12);
    }

    #[test]
    fn every_algorithm_has_params_and_defaults() {
        for task in [Task::Classification, Task::Regression] {
            for kind in AlgorithmKind::for_task(task) {
                let defs = kind.param_defs();
                assert!(!defs.is_empty(), "{} has no params", kind.name());
                for d in &defs {
                    let v = d.default_value();
                    match &d.kind {
                        ParamKind::Float { lo, hi, .. } => {
                            assert!(*lo <= v && v <= *hi, "{}::{}", kind.name(), d.name)
                        }
                        ParamKind::Int { lo, hi, .. } => {
                            let vi = v as i64;
                            assert!(*lo <= vi && vi <= *hi, "{}::{}", kind.name(), d.name)
                        }
                        ParamKind::Cat { choices, default } => {
                            assert!(default < &choices.len(), "{}::{}", kind.name(), d.name)
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn every_classifier_fits_and_predicts_with_defaults() {
        let d = easy_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        for kind in AlgorithmKind::for_task(Task::Classification) {
            let mut model = kind.build_default(0);
            model.fit(&xt, &yt).unwrap_or_else(|e| panic!("{} fit: {e}", kind.name()));
            let preds = model
                .predict(&xv)
                .unwrap_or_else(|e| panic!("{} predict: {e}", kind.name()));
            let acc = accuracy(&yv, &preds);
            assert!(acc > 0.6, "{} default accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn every_regressor_fits_and_predicts_with_defaults() {
        let d = easy_regression();
        let ((xt, yt), (xv, _yv)) = split(&d);
        for kind in AlgorithmKind::for_task(Task::Regression) {
            let mut model = kind.build_default(0);
            model.fit(&xt, &yt).unwrap_or_else(|e| panic!("{} fit: {e}", kind.name()));
            let preds = model
                .predict(&xv)
                .unwrap_or_else(|e| panic!("{} predict: {e}", kind.name()));
            assert!(
                preds.iter().all(|v| v.is_finite()),
                "{} produced non-finite predictions",
                kind.name()
            );
        }
    }

    #[test]
    fn build_respects_custom_params() {
        let mut values = HashMap::new();
        values.insert("n_estimators".to_string(), 12.0);
        let model = AlgorithmKind::RandomForest.build(&values, 0);
        if let Model::Forest(f) = &model {
            assert_eq!(f.config.n_estimators, 12);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn kernel_choice_is_applied() {
        let mut values = HashMap::new();
        values.insert("kernel".to_string(), 2.0);
        let model = AlgorithmKind::KernelSvm.build(&values, 0);
        if let Model::KernelSvm(s) = &model {
            assert_eq!(s.kernel, Kernel::Linear);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn from_name_roundtrip() {
        for task in [Task::Classification, Task::Regression] {
            for kind in AlgorithmKind::for_task(task) {
                assert_eq!(AlgorithmKind::from_name(task, kind.name()), Some(kind));
            }
        }
        assert_eq!(AlgorithmKind::from_name(Task::Classification, "nope"), None);
    }

    #[test]
    fn task_check() {
        assert!(check_algorithm_task(AlgorithmKind::Logistic, Task::Classification).is_ok());
        assert!(check_algorithm_task(AlgorithmKind::Logistic, Task::Regression).is_err());
    }

    #[test]
    fn fit_score_returns_loss() {
        let d = easy_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut model = AlgorithmKind::RandomForest.build_default(0);
        let loss = model
            .fit_score(&xt, &yt, &xv, &yv, Metric::BalancedAccuracy)
            .unwrap();
        assert!((0.0..=1.0).contains(&loss));
        assert!(loss < 0.3, "loss {loss}");
    }
}
