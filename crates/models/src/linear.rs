//! Linear models: softmax logistic regression, linear SVM (one-vs-rest
//! hinge), ridge (closed form), lasso and elastic-net (coordinate descent),
//! and an SGD regressor.
//!
//! Gradient-based models standardize features internally (mean 0 / std 1 on
//! the training set) so learning rates transfer across datasets; the learned
//! scaling is folded back into the stored weights at predict time.

use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use volcanoml_data::rand_util::{permutation, rng_from_seed};
use volcanoml_linalg::matrix::dot;
use volcanoml_linalg::{solve_spd, Matrix};

/// Internal feature standardizer shared by the gradient-based models.
#[derive(Debug, Clone, Default)]
struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    fn fit(x: &Matrix) -> Standardizer {
        let means = volcanoml_linalg::stats::column_means(x);
        let stds: Vec<f64> = volcanoml_linalg::stats::column_stds(x)
            .into_iter()
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        Standardizer { means, stds }
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = (*v - m) / s;
            }
        }
        out
    }
}

/// Multinomial (softmax) logistic regression trained with mini-batch SGD and
/// momentum, with L2 regularization.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// L2 regularization strength (λ).
    pub alpha: f64,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Number of passes over the data.
    pub max_iter: usize,
    /// RNG seed for shuffling and init.
    pub seed: u64,
    weights: Option<Matrix>, // (d+1) x k, last row is bias
    scaler: Standardizer,
    n_classes: usize,
}

impl LogisticRegression {
    /// Creates an untrained model with the given hyper-parameters.
    pub fn new(alpha: f64, learning_rate: f64, max_iter: usize, seed: u64) -> Self {
        LogisticRegression {
            alpha,
            learning_rate,
            max_iter,
            seed,
            weights: None,
            scaler: Standardizer::default(),
            n_classes: 0,
        }
    }

    fn scores(&self, xs: &Matrix) -> Result<Matrix> {
        let w = self.weights.as_ref().ok_or(ModelError::NotFitted)?;
        let d = w.rows() - 1;
        if xs.cols() != d {
            return Err(ModelError::Invalid(format!(
                "predict expects {d} features, got {}",
                xs.cols()
            )));
        }
        let k = w.cols();
        let mut out = Matrix::zeros(xs.rows(), k);
        for i in 0..xs.rows() {
            let row = xs.row(i);
            let out_row = out.row_mut(i);
            for (c, o) in out_row.iter_mut().enumerate() {
                let mut s = w.get(d, c); // bias
                for (j, &v) in row.iter().enumerate() {
                    s += w.get(j, c) * v;
                }
                *o = s;
            }
        }
        Ok(out)
    }
}

fn softmax_in_place(row: &mut [f64]) {
    let max = row.iter().fold(f64::MIN, |m, &v| m.max(v));
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

impl Estimator for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        self.n_classes = k;
        self.scaler = Standardizer::fit(x);
        let xs = self.scaler.transform(x);
        let n = xs.rows();
        let d = xs.cols();
        let mut w = Matrix::zeros(d + 1, k);
        let mut vel = Matrix::zeros(d + 1, k);
        let mut rng = rng_from_seed(self.seed);
        let batch = 32.min(n);
        let momentum = 0.9;

        for epoch in 0..self.max_iter {
            let lr = self.learning_rate / (1.0 + 0.02 * epoch as f64);
            let order = permutation(&mut rng, n);
            for chunk in order.chunks(batch) {
                // Accumulate gradient over the mini-batch.
                let mut grad = Matrix::zeros(d + 1, k);
                for &i in chunk {
                    let row = xs.row(i);
                    let mut probs = vec![0.0; k];
                    for (c, p) in probs.iter_mut().enumerate() {
                        let mut s = w.get(d, c);
                        for (j, &v) in row.iter().enumerate() {
                            s += w.get(j, c) * v;
                        }
                        *p = s;
                    }
                    softmax_in_place(&mut probs);
                    let label = y[i] as usize;
                    for (c, &p) in probs.iter().enumerate() {
                        let err = p - if c == label { 1.0 } else { 0.0 };
                        for (j, &v) in row.iter().enumerate() {
                            let g = grad.get(j, c) + err * v;
                            grad.set(j, c, g);
                        }
                        let g = grad.get(d, c) + err;
                        grad.set(d, c, g);
                    }
                }
                let scale = 1.0 / chunk.len() as f64;
                for j in 0..=d {
                    for c in 0..k {
                        let l2 = if j < d { self.alpha * w.get(j, c) } else { 0.0 };
                        let g = grad.get(j, c) * scale + l2;
                        let v = momentum * vel.get(j, c) - lr * g;
                        vel.set(j, c, v);
                        w.set(j, c, w.get(j, c) + v);
                    }
                }
            }
        }
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let probs = self.predict_proba(x)?;
        Ok((0..probs.rows())
            .map(|i| {
                volcanoml_linalg::stats::argmax(probs.row(i)).unwrap_or(0) as f64
            })
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let xs = self.scaler.transform(x);
        let mut scores = self.scores(&xs)?;
        for i in 0..scores.rows() {
            softmax_in_place(scores.row_mut(i));
        }
        Ok(scores)
    }
}

/// Linear SVM trained with one-vs-rest hinge loss and SGD (Pegasos-style
/// step-size schedule).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularization strength (λ in Pegasos).
    pub alpha: f64,
    /// Number of epochs.
    pub max_iter: usize,
    /// RNG seed.
    pub seed: u64,
    weights: Option<Matrix>, // (d+1) x k
    scaler: Standardizer,
}

impl LinearSvm {
    /// Creates an untrained model.
    pub fn new(alpha: f64, max_iter: usize, seed: u64) -> Self {
        LinearSvm {
            alpha,
            max_iter,
            seed,
            weights: None,
            scaler: Standardizer::default(),
        }
    }

    fn decision(&self, xs: &Matrix) -> Result<Matrix> {
        let w = self.weights.as_ref().ok_or(ModelError::NotFitted)?;
        let d = w.rows() - 1;
        if xs.cols() != d {
            return Err(ModelError::Invalid(format!(
                "predict expects {d} features, got {}",
                xs.cols()
            )));
        }
        let k = w.cols();
        let mut out = Matrix::zeros(xs.rows(), k);
        for i in 0..xs.rows() {
            let row = xs.row(i);
            for c in 0..k {
                let mut s = w.get(d, c);
                for (j, &v) in row.iter().enumerate() {
                    s += w.get(j, c) * v;
                }
                out.set(i, c, s);
            }
        }
        Ok(out)
    }
}

impl Estimator for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        self.scaler = Standardizer::fit(x);
        let xs = self.scaler.transform(x);
        let n = xs.rows();
        let d = xs.cols();
        let mut w = Matrix::zeros(d + 1, k);
        let mut rng = rng_from_seed(self.seed);
        let lambda = self.alpha.max(1e-8);
        let mut t = 0usize;
        for _epoch in 0..self.max_iter {
            let order = permutation(&mut rng, n);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let row = xs.row(i);
                let label = y[i] as usize;
                for c in 0..k {
                    let target = if c == label { 1.0 } else { -1.0 };
                    let mut s = w.get(d, c);
                    for (j, &v) in row.iter().enumerate() {
                        s += w.get(j, c) * v;
                    }
                    // Shrink weights (L2), then add hinge subgradient.
                    for (j, &rj) in row.iter().enumerate().take(d) {
                        let mut wj = w.get(j, c) * (1.0 - eta * lambda);
                        if target * s < 1.0 {
                            wj += eta * target * rj;
                        }
                        w.set(j, c, wj);
                    }
                    if target * s < 1.0 {
                        w.set(d, c, w.get(d, c) + eta * target);
                    }
                }
            }
        }
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let xs = self.scaler.transform(x);
        let dec = self.decision(&xs)?;
        Ok((0..dec.rows())
            .map(|i| volcanoml_linalg::stats::argmax(dec.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        // Softmax over margins: not calibrated, but a usable score surface.
        let xs = self.scaler.transform(x);
        let mut dec = self.decision(&xs)?;
        for i in 0..dec.rows() {
            softmax_in_place(dec.row_mut(i));
        }
        Ok(dec)
    }
}

/// Ridge regression solved in closed form via the normal equations.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// L2 penalty λ.
    pub alpha: f64,
    weights: Option<Vec<f64>>, // d + 1, last is intercept
    scaler: Standardizer,
    y_mean: f64,
}

impl RidgeRegression {
    /// Creates an untrained model.
    pub fn new(alpha: f64) -> Self {
        RidgeRegression {
            alpha,
            weights: None,
            scaler: Standardizer::default(),
            y_mean: 0.0,
        }
    }
}

impl Estimator for RidgeRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.scaler = Standardizer::fit(x);
        let xs = self.scaler.transform(x);
        self.y_mean = volcanoml_linalg::stats::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();
        let gram = xs.gram();
        let mut rhs = vec![0.0; xs.cols()];
        for (row, &target) in xs.iter_rows().zip(yc.iter()) {
            for (r, &v) in rhs.iter_mut().zip(row.iter()) {
                *r += v * target;
            }
        }
        let ridge = self.alpha.max(1e-10) * xs.rows() as f64;
        let w = solve_spd(&gram, &rhs, ridge).map_err(ModelError::from)?;
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let w = self.weights.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != w.len() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                w.len(),
                x.cols()
            )));
        }
        let xs = self.scaler.transform(x);
        Ok(xs.iter_rows().map(|row| dot(row, w) + self.y_mean).collect())
    }
}

/// Elastic-net regression (lasso when `l1_ratio == 1`) via cyclical
/// coordinate descent on standardized features.
#[derive(Debug, Clone)]
pub struct ElasticNet {
    /// Overall penalty strength.
    pub alpha: f64,
    /// Mix between L1 (`1.0`) and L2 (`0.0`).
    pub l1_ratio: f64,
    /// Coordinate-descent sweeps.
    pub max_iter: usize,
    weights: Option<Vec<f64>>,
    scaler: Standardizer,
    y_mean: f64,
}

impl ElasticNet {
    /// Creates an untrained model.
    pub fn new(alpha: f64, l1_ratio: f64, max_iter: usize) -> Self {
        ElasticNet {
            alpha,
            l1_ratio: l1_ratio.clamp(0.0, 1.0),
            max_iter,
            weights: None,
            scaler: Standardizer::default(),
            y_mean: 0.0,
        }
    }

    /// Pure-lasso constructor.
    pub fn lasso(alpha: f64, max_iter: usize) -> Self {
        ElasticNet::new(alpha, 1.0, max_iter)
    }

    /// Indices of features with non-zero coefficients (after fitting).
    pub fn support(&self) -> Option<Vec<usize>> {
        self.weights.as_ref().map(|w| {
            w.iter()
                .enumerate()
                .filter(|(_, &v)| v.abs() > 1e-12)
                .map(|(i, _)| i)
                .collect()
        })
    }
}

fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

impl Estimator for ElasticNet {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.scaler = Standardizer::fit(x);
        let xs = self.scaler.transform(x);
        self.y_mean = volcanoml_linalg::stats::mean(y);
        let n = xs.rows();
        let d = xs.cols();
        let yc: Vec<f64> = y.iter().map(|v| v - self.y_mean).collect();

        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);
        // Column norms (standardized columns have norm² ≈ n).
        let col_sq: Vec<f64> = (0..d)
            .map(|j| xs.iter_rows().map(|r| r[j] * r[j]).sum::<f64>() / n as f64)
            .collect();

        let mut w = vec![0.0; d];
        let mut residual = yc.clone();
        for _sweep in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for j in 0..d {
                if col_sq[j] < 1e-12 {
                    continue;
                }
                // rho = (1/n) Σ x_ij (residual_i + w_j x_ij)
                let mut rho = 0.0;
                for (row, &r) in xs.iter_rows().zip(residual.iter()) {
                    rho += row[j] * r;
                }
                rho = rho / n as f64 + w[j] * col_sq[j];
                let new_w = soft_threshold(rho, l1) / (col_sq[j] + l2);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (row, r) in xs.iter_rows().zip(residual.iter_mut()) {
                        *r -= delta * row[j];
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < 1e-7 {
                break;
            }
        }
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let w = self.weights.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != w.len() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                w.len(),
                x.cols()
            )));
        }
        let xs = self.scaler.transform(x);
        Ok(xs.iter_rows().map(|row| dot(row, w) + self.y_mean).collect())
    }
}

/// Squared-loss linear regressor trained with SGD — the cheap/streaming
/// member of the regression zoo, with tunable learning-rate schedule.
#[derive(Debug, Clone)]
pub struct SgdRegressor {
    /// L2 penalty.
    pub alpha: f64,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Epoch count.
    pub max_iter: usize,
    /// RNG seed for shuffling.
    pub seed: u64,
    weights: Option<Vec<f64>>, // d + 1, last is intercept
    scaler: Standardizer,
}

impl SgdRegressor {
    /// Creates an untrained model.
    pub fn new(alpha: f64, learning_rate: f64, max_iter: usize, seed: u64) -> Self {
        SgdRegressor {
            alpha,
            learning_rate,
            max_iter,
            seed,
            weights: None,
            scaler: Standardizer::default(),
        }
    }
}

impl Estimator for SgdRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.scaler = Standardizer::fit(x);
        let xs = self.scaler.transform(x);
        let n = xs.rows();
        let d = xs.cols();
        // Standardize the target too: keeps step sizes sane for targets with
        // large magnitudes; un-scaled at predict time.
        let y_mean = volcanoml_linalg::stats::mean(y);
        let y_std = {
            let s = volcanoml_linalg::stats::std_dev(y);
            if s < 1e-9 {
                1.0
            } else {
                s
            }
        };
        let yn: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let mut w = vec![0.0; d + 1];
        let mut rng = rng_from_seed(self.seed);
        for epoch in 0..self.max_iter {
            let lr = self.learning_rate / (1.0 + 0.05 * epoch as f64);
            let order = permutation(&mut rng, n);
            for &i in &order {
                let row = xs.row(i);
                let pred = dot(row, &w[..d]) + w[d];
                let err = pred - yn[i];
                for j in 0..d {
                    w[j] -= lr * (err * row[j] + self.alpha * w[j]);
                }
                w[d] -= lr * err;
            }
        }
        // Fold the target scaling back in.
        for wj in w.iter_mut() {
            *wj *= y_std;
        }
        w[d] += y_mean;
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let w = self.weights.as_ref().ok_or(ModelError::NotFitted)?;
        let d = w.len() - 1;
        if x.cols() != d {
            return Err(ModelError::Invalid(format!(
                "predict expects {d} features, got {}",
                x.cols()
            )));
        }
        let xs = self.scaler.transform(x);
        Ok(xs.iter_rows().map(|row| dot(row, &w[..d]) + w[d]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_multiclass, easy_regression, split};
    use volcanoml_data::metrics::{accuracy, r2};

    #[test]
    fn logistic_learns_separable_binary() {
        let d = easy_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = LogisticRegression::new(1e-4, 0.1, 40, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn logistic_handles_multiclass() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = LogisticRegression::new(1e-4, 0.1, 40, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn logistic_probabilities_sum_to_one() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, _)) = split(&d);
        let mut m = LogisticRegression::new(1e-3, 0.1, 20, 0);
        m.fit(&xt, &yt).unwrap();
        let p = m.predict_proba(&xv).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn unfitted_predict_errors() {
        let m = LogisticRegression::new(1e-3, 0.1, 5, 0);
        assert!(m.predict(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let d = easy_binary();
        let ((xt, yt), _) = split(&d);
        let mut m = LogisticRegression::new(1e-3, 0.1, 5, 0);
        m.fit(&xt, &yt).unwrap();
        assert!(m.predict(&Matrix::zeros(2, 99)).is_err());
    }

    #[test]
    fn linear_svm_learns_separable() {
        let d = easy_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = LinearSvm::new(1e-4, 30, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn linear_svm_multiclass() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = LinearSvm::new(1e-4, 30, 5);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn ridge_recovers_linear_signal() {
        let d = easy_regression();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = RidgeRegression::new(1e-4);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.95, "r2 {score}");
    }

    #[test]
    fn ridge_shrinks_with_large_alpha() {
        let d = easy_regression();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut weak = RidgeRegression::new(1e3);
        weak.fit(&xt, &yt).unwrap();
        let weak_r2 = r2(&yv, &weak.predict(&xv).unwrap());
        let mut strong = RidgeRegression::new(1e-4);
        strong.fit(&xt, &yt).unwrap();
        let strong_r2 = r2(&yv, &strong.predict(&xv).unwrap());
        assert!(strong_r2 > weak_r2);
    }

    #[test]
    fn lasso_produces_sparse_solution() {
        // 2 informative + 8 noise features: lasso should zero most noise.
        let d = volcanoml_data::synthetic::make_regression(
            &volcanoml_data::synthetic::RegressionSpec {
                n_samples: 300,
                n_features: 10,
                n_informative: 2,
                noise: 0.05,
                nonlinear: false,
            },
            3,
        );
        let mut m = ElasticNet::lasso(0.2, 200);
        m.fit(&d.x, &d.y).unwrap();
        let support = m.support().unwrap();
        assert!(support.len() <= 4, "support {support:?}");
        assert!(support.contains(&0) || support.contains(&1));
    }

    #[test]
    fn elastic_net_predicts_reasonably() {
        let d = easy_regression();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = ElasticNet::new(0.01, 0.5, 300);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.9, "r2 {score}");
    }

    #[test]
    fn sgd_regressor_fits_linear_data() {
        let d = easy_regression();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = SgdRegressor::new(1e-5, 0.01, 60, 0);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.9, "r2 {score}");
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    fn rejects_nan_features() {
        let mut x = Matrix::zeros(3, 2);
        x.set(0, 0, f64::NAN);
        let mut m = RidgeRegression::new(1.0);
        assert!(m.fit(&x, &[1.0, 2.0, 3.0]).is_err());
    }
}
