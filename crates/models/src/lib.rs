//! From-scratch ML model zoo — the scikit-learn substitute for the VolcanoML
//! reproduction.
//!
//! The paper's search space chooses among ~a dozen algorithm families per
//! task (§3.1). This crate implements each family with the hyper-parameters
//! that matter for AutoML search, exposes a uniform [`Estimator`] interface,
//! and publishes per-algorithm hyper-parameter descriptors
//! ([`zoo::AlgorithmKind::param_defs`]) that the AutoML layer compiles into
//! its search space.
//!
//! Classification algorithms: logistic regression (softmax), linear SVM,
//! kernel SVM (SMO), decision tree, random forest, extra-trees, gradient
//! boosting, AdaBoost (SAMME), k-NN, Gaussian naive Bayes, LDA, QDA, MLP.
//! Regression algorithms: ridge, lasso, elastic-net, SGD, decision tree,
//! random forest, extra-trees, gradient boosting, k-NN, MLP.

pub mod binned;
pub mod boosting;
pub mod discriminant;
pub mod forest;
pub mod linear;
pub mod mlp;
pub mod naive_bayes;
pub mod neighbors;
pub mod parallel;
pub mod svm;
pub mod svr;
pub mod tree;
pub mod zoo;

pub use zoo::{AlgorithmKind, Model, ParamDef, ParamKind};

use volcanoml_linalg::Matrix;

/// Errors produced by model fitting and prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// `predict` was called before `fit`.
    NotFitted,
    /// Invalid hyper-parameter or input shape.
    Invalid(String),
    /// A numeric routine failed (singular system, divergence).
    Numeric(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NotFitted => write!(f, "model is not fitted"),
            ModelError::Invalid(s) => write!(f, "invalid input: {s}"),
            ModelError::Numeric(s) => write!(f, "numeric failure: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<volcanoml_linalg::LinalgError> for ModelError {
    fn from(e: volcanoml_linalg::LinalgError) -> Self {
        ModelError::Numeric(e.to_string())
    }
}

/// Convenience alias for model results.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Uniform supervised-model interface.
///
/// Classification targets are class indices stored as `f64`; regression
/// targets are arbitrary reals. `fit` must be callable repeatedly (each call
/// re-trains from scratch).
pub trait Estimator {
    /// Trains on the given features and targets.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()>;

    /// Predicts targets (class indices for classifiers) for each row of `x`.
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Class-probability estimates, one row per sample and one column per
    /// class. The default implementation one-hot encodes `predict` output;
    /// models with calibrated scores override it.
    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let preds = self.predict(x)?;
        let k = preds
            .iter()
            .fold(0usize, |m, &p| m.max(p.max(0.0) as usize + 1))
            .max(2);
        let mut out = Matrix::zeros(preds.len(), k);
        for (i, &p) in preds.iter().enumerate() {
            out.set(i, p.max(0.0) as usize, 1.0);
        }
        Ok(out)
    }
}

/// Validates the `(x, y)` pair shared by every `fit` implementation.
pub(crate) fn check_fit_inputs(x: &Matrix, y: &[f64]) -> Result<()> {
    if x.rows() != y.len() {
        return Err(ModelError::Invalid(format!(
            "{} rows but {} targets",
            x.rows(),
            y.len()
        )));
    }
    if x.rows() == 0 {
        return Err(ModelError::Invalid("empty training set".into()));
    }
    if x.cols() == 0 {
        return Err(ModelError::Invalid("no features".into()));
    }
    if x.data().iter().any(|v| !v.is_finite()) {
        return Err(ModelError::Invalid(
            "non-finite feature values; run imputation first".into(),
        ));
    }
    Ok(())
}

/// Infers class count from integer labels (at least 2).
pub(crate) fn infer_n_classes(y: &[f64]) -> usize {
    y.iter()
        .fold(0usize, |m, &v| m.max(v.max(0.0) as usize + 1))
        .max(2)
}

#[cfg(test)]
pub(crate) mod test_util {
    use volcanoml_data::synthetic::{
        make_blobs, make_classification, make_moons, make_regression, ClassificationSpec,
        RegressionSpec,
    };
    use volcanoml_data::Dataset;

    /// Easy, well-separated binary classification task.
    pub fn easy_binary() -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 240,
                n_features: 6,
                n_informative: 4,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 2.2,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            7,
        )
    }

    /// Easy 3-class blobs.
    pub fn easy_multiclass() -> Dataset {
        make_blobs(240, 3, 5, 0.6, 11)
    }

    /// Nonlinear binary task (moons).
    pub fn nonlinear_binary() -> Dataset {
        make_moons(300, 0.12, 0, 13)
    }

    /// Clean linear regression task.
    pub fn easy_regression() -> Dataset {
        make_regression(
            &RegressionSpec {
                n_samples: 220,
                n_features: 6,
                n_informative: 4,
                noise: 0.1,
                nonlinear: false,
            },
            17,
        )
    }

    /// Train/test split helper.
    pub fn split(
        d: &Dataset,
    ) -> (
        (volcanoml_linalg::Matrix, Vec<f64>),
        (volcanoml_linalg::Matrix, Vec<f64>),
    ) {
        let (train, test) = volcanoml_data::train_test_split(d, 0.25, 3).unwrap();
        (
            (train.x.clone(), train.y.clone()),
            (test.x.clone(), test.y.clone()),
        )
    }
}
