//! Binned (histogram) dataset layout for fast tree training.
//!
//! [`BinnedMatrix`] quantizes every feature column once into at most
//! `max_bins` ordered bins (LightGBM-style), storing column-major `u16` bin
//! codes plus the raw-value cut points between adjacent bins. Tree builders
//! then scan per-node *bin histograms* instead of re-sorting rows at every
//! node, and an ensemble can share one binned layout across all of its
//! trees. Chosen thresholds are mapped back to raw feature space, so a tree
//! fitted on a `BinnedMatrix` predicts directly on raw [`Matrix`] rows.
//!
//! Binning rules:
//! - When a feature has at most `max_bins` distinct values, each distinct
//!   value gets its own bin and the cuts are the midpoints between adjacent
//!   distinct values — exactly the candidate-threshold set of the exact
//!   sorted-scan splitter, which is what makes `Histogram` splits equivalent
//!   to `Best` splits on such features.
//! - Otherwise bins are (approximately) equal-frequency: distinct values are
//!   greedily grouped until each bin holds roughly `n / max_bins` rows.
//! - Values closer than `1e-12` are treated as identical (the exact
//!   splitter's guard), so no cut can fall inside a tie group.

use volcanoml_linalg::Matrix;

/// Process-global counters over the binned-tree training path, sampled into
/// the metrics registry at end of run. Relaxed atomics: the counts are
/// best-effort telemetry, not synchronization.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Number of [`super::BinnedMatrix`] layouts built.
    pub static MATRICES_BUILT: AtomicU64 = AtomicU64::new(0);
    /// Total `rows * features` cells quantized across all layouts.
    pub static CELLS_ENCODED: AtomicU64 = AtomicU64::new(0);
    /// Number of per-node histogram fill passes during tree training.
    pub static HIST_NODE_SCANS: AtomicU64 = AtomicU64::new(0);

    /// `(matrices_built, cells_encoded, hist_node_scans)` at this instant.
    pub fn snapshot() -> (u64, u64, u64) {
        (
            MATRICES_BUILT.load(Ordering::Relaxed),
            CELLS_ENCODED.load(Ordering::Relaxed),
            HIST_NODE_SCANS.load(Ordering::Relaxed),
        )
    }
}

/// Default number of bins per feature (fits u8-sized histograms; stored as
/// u16 codes so callers may raise it).
pub const DEFAULT_MAX_BINS: usize = 255;

/// A column-major quantized view of a feature matrix.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    n_rows: usize,
    n_features: usize,
    /// `codes[f * n_rows + i]` is row `i`'s bin for feature `f`.
    codes: Vec<u16>,
    /// `cuts[f][b]` is the raw-space threshold between bins `b` and `b + 1`;
    /// `cuts[f].len() + 1` is the bin count of feature `f`.
    cuts: Vec<Vec<f64>>,
}

impl BinnedMatrix {
    /// Quantizes `x` with at most `max_bins` bins per feature.
    pub fn from_matrix(x: &Matrix, max_bins: usize) -> BinnedMatrix {
        let n = x.rows();
        let d = x.cols();
        stats::MATRICES_BUILT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        stats::CELLS_ENCODED.fetch_add((n * d) as u64, std::sync::atomic::Ordering::Relaxed);
        let max_bins = max_bins.clamp(2, u16::MAX as usize + 1);
        let mut codes = vec![0u16; n * d];
        let mut cuts = Vec::with_capacity(d);
        let mut sorted: Vec<f64> = Vec::with_capacity(n);
        for f in 0..d {
            sorted.clear();
            sorted.extend((0..n).map(|i| x.get(i, f)));
            sorted.sort_by(f64::total_cmp);
            // Distinct values with multiplicities, merging ties (< 1e-12).
            let mut distinct: Vec<(f64, usize)> = Vec::new();
            for &v in sorted.iter() {
                match distinct.last_mut() {
                    Some((last, count)) if v - *last < 1e-12 => *count += 1,
                    _ => distinct.push((v, 1)),
                }
            }
            let feature_cuts = if distinct.len() <= max_bins {
                // One bin per distinct value; cuts at midpoints.
                distinct
                    .windows(2)
                    .map(|w| (w[0].0 + w[1].0) / 2.0)
                    .collect::<Vec<f64>>()
            } else {
                // Equal-frequency grouping of distinct values.
                let target = n.div_ceil(max_bins);
                let mut c = Vec::with_capacity(max_bins - 1);
                let mut in_bin = 0usize;
                for (j, &(v, count)) in distinct.iter().enumerate() {
                    in_bin += count;
                    if in_bin >= target && j + 1 < distinct.len() && c.len() + 2 <= max_bins {
                        c.push((v + distinct[j + 1].0) / 2.0);
                        in_bin = 0;
                    }
                }
                c
            };
            let col = &mut codes[f * n..(f + 1) * n];
            for (i, code) in col.iter_mut().enumerate() {
                let v = x.get(i, f);
                *code = feature_cuts.partition_point(|&c| v > c) as u16;
            }
            cuts.push(feature_cuts);
        }
        BinnedMatrix {
            n_rows: n,
            n_features: d,
            codes,
            cuts,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Bin count of feature `f` (≥ 1; constant features have one bin).
    pub fn n_bins(&self, f: usize) -> usize {
        self.cuts[f].len() + 1
    }

    /// Column-major code slice for feature `f` (one code per row).
    pub fn column(&self, f: usize) -> &[u16] {
        &self.codes[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Raw-space threshold between bins `b` and `b + 1` of feature `f`:
    /// rows with `code <= b` satisfy `value <= cut(f, b)`.
    pub fn cut(&self, f: usize, b: usize) -> f64 {
        self.cuts[f][b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_from_cols(cols: &[Vec<f64>]) -> Matrix {
        let n = cols[0].len();
        let d = cols.len();
        let mut m = Matrix::zeros(n, d);
        for (f, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m.set(i, f, v);
            }
        }
        m
    }

    #[test]
    fn distinct_values_get_own_bins() {
        let x = matrix_from_cols(&[vec![3.0, 1.0, 2.0, 1.0, 3.0]]);
        let b = BinnedMatrix::from_matrix(&x, 255);
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.column(0), &[2, 0, 1, 0, 2]);
        assert!((b.cut(0, 0) - 1.5).abs() < 1e-12);
        assert!((b.cut(0, 1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_has_one_bin() {
        let x = matrix_from_cols(&[vec![7.0; 6]]);
        let b = BinnedMatrix::from_matrix(&x, 255);
        assert_eq!(b.n_bins(0), 1);
        assert!(b.column(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn many_distinct_values_are_capped() {
        let col: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let x = matrix_from_cols(&[col]);
        let b = BinnedMatrix::from_matrix(&x, 8);
        assert!(b.n_bins(0) <= 8, "{} bins", b.n_bins(0));
        assert!(b.n_bins(0) >= 4);
        // Codes must be monotone in the raw values.
        let codes = b.column(0);
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cuts_separate_codes() {
        let col: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let x = matrix_from_cols(std::slice::from_ref(&col));
        let b = BinnedMatrix::from_matrix(&x, 8);
        for (i, &v) in col.iter().enumerate() {
            let code = b.column(0)[i] as usize;
            if code > 0 {
                assert!(v > b.cut(0, code - 1));
            }
            if code + 1 < b.n_bins(0) {
                assert!(v <= b.cut(0, code));
            }
        }
    }

    #[test]
    fn near_ties_share_a_bin() {
        let x = matrix_from_cols(&[vec![1.0, 1.0 + 1e-14, 2.0]]);
        let b = BinnedMatrix::from_matrix(&x, 255);
        assert_eq!(b.n_bins(0), 2);
        assert_eq!(b.column(0), &[0, 0, 1]);
    }
}
