//! Binned (histogram) dataset layout for fast tree training.
//!
//! [`BinnedMatrix`] quantizes every feature column once into at most
//! `max_bins` ordered bins (LightGBM-style), storing column-major bin codes
//! plus the raw-value cut points between adjacent bins. Tree builders then
//! scan per-node *bin histograms* instead of re-sorting rows at every node,
//! and an ensemble can share one binned layout across all of its trees.
//! Chosen thresholds are mapped back to raw feature space, so a tree fitted
//! on a `BinnedMatrix` predicts directly on raw [`Matrix`] rows.
//!
//! Memory layout (bandwidth-lean, PR 7):
//! - Bin codes are `u8` whenever `max_bins <= 256` (the default 255 fits),
//!   halving code-array traffic on every per-node histogram fill; the `u16`
//!   path remains for callers that raise `max_bins`.
//! - Cut points live in one flat `Vec<f64>` with per-feature offsets
//!   instead of a ragged `Vec<Vec<f64>>`, and the per-feature *bin offsets*
//!   ([`BinnedMatrix::bin_offset`]) double as the layout of the flat
//!   node-major histogram arenas the tree builder fills.
//! - Binning itself parallelizes across features ([`from_matrix_jobs`];
//!   each feature's cuts and codes are independent, and columns are
//!   reassembled in feature order, so any job count is bit-identical).
//! - An `f32` source ([`from_matrix_f32`]) bins single-precision storage
//!   directly, halving raw-matrix read traffic; cuts stay `f64`.
//!
//! [`from_matrix_jobs`]: BinnedMatrix::from_matrix_jobs
//! [`from_matrix_f32`]: BinnedMatrix::from_matrix_f32
//!
//! Binning rules:
//! - When a feature has at most `max_bins` distinct values, each distinct
//!   value gets its own bin and the cuts are the midpoints between adjacent
//!   distinct values — exactly the candidate-threshold set of the exact
//!   sorted-scan splitter, which is what makes `Histogram` splits equivalent
//!   to `Best` splits on such features.
//! - Otherwise bins are (approximately) equal-frequency: distinct values are
//!   greedily grouped until each bin holds roughly `n / max_bins` rows.
//! - Values closer than `1e-12` are treated as identical (the exact
//!   splitter's guard), so no cut can fall inside a tie group.

use crate::parallel::parallel_map;
use volcanoml_linalg::{Matrix, MatrixF32};

/// Process-global counters over the binned-tree training path, sampled into
/// the metrics registry at end of run. Relaxed atomics: the counts are
/// best-effort telemetry, not synchronization.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Number of [`super::BinnedMatrix`] layouts built.
    pub static MATRICES_BUILT: AtomicU64 = AtomicU64::new(0);
    /// Total `rows * features` cells quantized across all layouts.
    pub static CELLS_ENCODED: AtomicU64 = AtomicU64::new(0);
    /// Number of per-node histogram fill passes during tree training.
    pub static HIST_NODE_SCANS: AtomicU64 = AtomicU64::new(0);
    /// Bin-code bytes read by histogram fill passes (`rows × candidate
    /// features × code width` per pass) — the bandwidth the u8 layout halves.
    pub static HIST_BYTES_SCANNED: AtomicU64 = AtomicU64::new(0);
    /// Histogram arena slabs served from the thread-local pool instead of a
    /// fresh allocation.
    pub static ARENA_REUSES: AtomicU64 = AtomicU64::new(0);
    /// Per-node histogram fills that split features across workers and
    /// merged the partial arenas deterministically.
    pub static FEATURE_PARALLEL_MERGES: AtomicU64 = AtomicU64::new(0);

    /// Point-in-time values of every binned-path counter.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Snapshot {
        /// [`MATRICES_BUILT`] at this instant.
        pub matrices_built: u64,
        /// [`CELLS_ENCODED`] at this instant.
        pub cells_encoded: u64,
        /// [`HIST_NODE_SCANS`] at this instant.
        pub hist_node_scans: u64,
        /// [`HIST_BYTES_SCANNED`] at this instant.
        pub hist_bytes_scanned: u64,
        /// [`ARENA_REUSES`] at this instant.
        pub arena_reuses: u64,
        /// [`FEATURE_PARALLEL_MERGES`] at this instant.
        pub feature_parallel_merges: u64,
    }

    /// All binned-path counters at this instant.
    pub fn snapshot() -> Snapshot {
        Snapshot {
            matrices_built: MATRICES_BUILT.load(Ordering::Relaxed),
            cells_encoded: CELLS_ENCODED.load(Ordering::Relaxed),
            hist_node_scans: HIST_NODE_SCANS.load(Ordering::Relaxed),
            hist_bytes_scanned: HIST_BYTES_SCANNED.load(Ordering::Relaxed),
            arena_reuses: ARENA_REUSES.load(Ordering::Relaxed),
            feature_parallel_merges: FEATURE_PARALLEL_MERGES.load(Ordering::Relaxed),
        }
    }
}

/// Default number of bins per feature. 255 keeps codes in `u8` storage
/// (≤ 256 bins) for half the code-array bandwidth of the `u16` fallback.
pub const DEFAULT_MAX_BINS: usize = 255;

/// A bin-code element: `u8` for up to 256 bins, `u16` beyond. The trait is
/// what lets the tree builder's hot loops monomorphize per width instead of
/// branching per access.
pub trait BinCode: Copy + Send + Sync + 'static {
    /// Storage width in bytes (bandwidth accounting).
    const BYTES: usize;
    /// Encodes a bin index (caller guarantees it fits).
    fn from_bin(bin: usize) -> Self;
    /// The bin index this code denotes.
    fn bin(self) -> usize;
}

impl BinCode for u8 {
    const BYTES: usize = 1;
    #[inline]
    fn from_bin(bin: usize) -> Self {
        bin as u8
    }
    #[inline]
    fn bin(self) -> usize {
        self as usize
    }
}

impl BinCode for u16 {
    const BYTES: usize = 2;
    #[inline]
    fn from_bin(bin: usize) -> Self {
        bin as u16
    }
    #[inline]
    fn bin(self) -> usize {
        self as usize
    }
}

/// Column-major code storage at the width chosen from `max_bins`.
#[derive(Debug, Clone)]
enum Codes {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

/// Borrowed view of the full code array; `codes[f * n_rows + i]` is row
/// `i`'s bin for feature `f` at either width.
#[derive(Debug, Clone, Copy)]
pub enum CodesRef<'a> {
    /// `u8` codes (`max_bins <= 256`).
    U8(&'a [u8]),
    /// `u16` codes.
    U16(&'a [u16]),
}

/// A column-major quantized view of a feature matrix.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    n_rows: usize,
    n_features: usize,
    codes: Codes,
    /// Flat cut storage: feature `f`'s cuts are
    /// `cut_values[cut_offsets[f]..cut_offsets[f + 1]]`.
    cut_values: Vec<f64>,
    /// `n_features + 1` entries.
    cut_offsets: Vec<usize>,
    /// `bin_offsets[f]` = total bins of features `< f`; `n_features + 1`
    /// entries. This is the node-major arena layout: feature `f`'s bins of a
    /// node's flat histogram start at `bin_offsets[f] * channels`.
    bin_offsets: Vec<usize>,
}

/// One feature's quantization: cut points plus this column's codes.
fn bin_feature<C: BinCode>(
    n: usize,
    max_bins: usize,
    raw: impl Fn(usize) -> f64,
) -> (Vec<f64>, Vec<C>) {
    let mut sorted: Vec<f64> = (0..n).map(&raw).collect();
    sorted.sort_by(f64::total_cmp);
    // Distinct values with multiplicities, merging ties (< 1e-12).
    let mut distinct: Vec<(f64, usize)> = Vec::new();
    for &v in sorted.iter() {
        match distinct.last_mut() {
            Some((last, count)) if v - *last < 1e-12 => *count += 1,
            _ => distinct.push((v, 1)),
        }
    }
    let cuts = if distinct.len() <= max_bins {
        // One bin per distinct value; cuts at midpoints.
        distinct
            .windows(2)
            .map(|w| (w[0].0 + w[1].0) / 2.0)
            .collect::<Vec<f64>>()
    } else {
        // Equal-frequency grouping of distinct values.
        let target = n.div_ceil(max_bins);
        let mut c = Vec::with_capacity(max_bins - 1);
        let mut in_bin = 0usize;
        for (j, &(v, count)) in distinct.iter().enumerate() {
            in_bin += count;
            if in_bin >= target && j + 1 < distinct.len() && c.len() + 2 <= max_bins {
                c.push((v + distinct[j + 1].0) / 2.0);
                in_bin = 0;
            }
        }
        c
    };
    let codes = (0..n)
        .map(|i| C::from_bin(cuts.partition_point(|&c| raw(i) > c)))
        .collect();
    (cuts, codes)
}

/// Quantizes all `d` features at width `C`, `n_jobs`-parallel across
/// features. Columns are reassembled in feature order, so the result is
/// bit-identical for any job count.
fn bin_all<C: BinCode>(
    n: usize,
    d: usize,
    max_bins: usize,
    n_jobs: usize,
    get: impl Fn(usize, usize) -> f64 + Sync,
) -> (Vec<C>, Vec<f64>, Vec<usize>, Vec<usize>) {
    let per_feature: Vec<(Vec<f64>, Vec<C>)> =
        parallel_map(n_jobs, d, |f| bin_feature(n, max_bins, |i| get(i, f)));
    let mut codes: Vec<C> = Vec::with_capacity(n * d);
    let mut cut_values = Vec::new();
    let mut cut_offsets = Vec::with_capacity(d + 1);
    let mut bin_offsets = Vec::with_capacity(d + 1);
    cut_offsets.push(0);
    bin_offsets.push(0);
    for (cuts, col) in per_feature {
        codes.extend_from_slice(&col);
        bin_offsets.push(bin_offsets.last().unwrap() + cuts.len() + 1);
        cut_values.extend_from_slice(&cuts);
        cut_offsets.push(cut_values.len());
    }
    (codes, cut_values, cut_offsets, bin_offsets)
}

impl BinnedMatrix {
    fn build(
        n: usize,
        d: usize,
        max_bins: usize,
        n_jobs: usize,
        force_u16: bool,
        get: impl Fn(usize, usize) -> f64 + Sync,
    ) -> BinnedMatrix {
        stats::MATRICES_BUILT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        stats::CELLS_ENCODED.fetch_add((n * d) as u64, std::sync::atomic::Ordering::Relaxed);
        let max_bins = max_bins.clamp(2, u16::MAX as usize + 1);
        let (codes, cut_values, cut_offsets, bin_offsets) =
            if max_bins <= u8::MAX as usize + 1 && !force_u16 {
                let (c, cv, co, bo) = bin_all::<u8>(n, d, max_bins, n_jobs, get);
                (Codes::U8(c), cv, co, bo)
            } else {
                let (c, cv, co, bo) = bin_all::<u16>(n, d, max_bins, n_jobs, get);
                (Codes::U16(c), cv, co, bo)
            };
        BinnedMatrix {
            n_rows: n,
            n_features: d,
            codes,
            cut_values,
            cut_offsets,
            bin_offsets,
        }
    }

    /// Quantizes `x` with at most `max_bins` bins per feature (serial).
    pub fn from_matrix(x: &Matrix, max_bins: usize) -> BinnedMatrix {
        BinnedMatrix::from_matrix_jobs(x, max_bins, 1)
    }

    /// Quantizes `x` with up to `n_jobs` workers splitting the features.
    pub fn from_matrix_jobs(x: &Matrix, max_bins: usize, n_jobs: usize) -> BinnedMatrix {
        BinnedMatrix::build(x.rows(), x.cols(), max_bins, n_jobs, false, |i, f| {
            x.get(i, f)
        })
    }

    /// Quantizes single-precision storage — half the raw-matrix read traffic
    /// of the `f64` path. Cut points are computed in `f64` over the widened
    /// values, so trees fitted on the result still predict on `f64` rows.
    pub fn from_matrix_f32(x: &MatrixF32, max_bins: usize, n_jobs: usize) -> BinnedMatrix {
        BinnedMatrix::build(x.rows(), x.cols(), max_bins, n_jobs, false, |i, f| {
            x.get(i, f)
        })
    }

    /// Forces `u16` code storage regardless of `max_bins`. Cut points are
    /// identical to [`BinnedMatrix::from_matrix`]'s, which makes this the
    /// equivalence oracle for u8-vs-u16 kernel tests and the PR 2 baseline
    /// for the bench rig.
    #[doc(hidden)]
    pub fn from_matrix_u16(x: &Matrix, max_bins: usize) -> BinnedMatrix {
        BinnedMatrix::build(x.rows(), x.cols(), max_bins, 1, true, |i, f| x.get(i, f))
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Bin count of feature `f` (≥ 1; constant features have one bin).
    pub fn n_bins(&self, f: usize) -> usize {
        self.cut_offsets[f + 1] - self.cut_offsets[f] + 1
    }

    /// Total bins of features `< f` — the flat-arena bin offset of feature
    /// `f`. `bin_offset(n_features)` is the total bin count of the layout.
    pub fn bin_offset(&self, f: usize) -> usize {
        self.bin_offsets[f]
    }

    /// Total bins across all features (the flat-arena row length in bins).
    pub fn total_bins(&self) -> usize {
        self.bin_offsets[self.n_features]
    }

    /// True when codes are stored as `u8` (`max_bins <= 256`).
    pub fn is_u8(&self) -> bool {
        matches!(self.codes, Codes::U8(_))
    }

    /// The full column-major code array at its storage width.
    pub fn codes(&self) -> CodesRef<'_> {
        match &self.codes {
            Codes::U8(c) => CodesRef::U8(c),
            Codes::U16(c) => CodesRef::U16(c),
        }
    }

    /// Row `i`'s bin for feature `f` (width-agnostic; convenience for tests
    /// and diagnostics — hot loops use [`BinnedMatrix::codes`]).
    pub fn code(&self, i: usize, f: usize) -> usize {
        match &self.codes {
            Codes::U8(c) => c[f * self.n_rows + i] as usize,
            Codes::U16(c) => c[f * self.n_rows + i] as usize,
        }
    }

    /// Raw-space threshold between bins `b` and `b + 1` of feature `f`:
    /// rows with `code <= b` satisfy `value <= cut(f, b)`.
    pub fn cut(&self, f: usize, b: usize) -> f64 {
        self.cut_values[self.cut_offsets[f] + b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_from_cols(cols: &[Vec<f64>]) -> Matrix {
        let n = cols[0].len();
        let d = cols.len();
        let mut m = Matrix::zeros(n, d);
        for (f, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m.set(i, f, v);
            }
        }
        m
    }

    fn column(b: &BinnedMatrix, f: usize) -> Vec<usize> {
        (0..b.n_rows()).map(|i| b.code(i, f)).collect()
    }

    #[test]
    fn distinct_values_get_own_bins() {
        let x = matrix_from_cols(&[vec![3.0, 1.0, 2.0, 1.0, 3.0]]);
        let b = BinnedMatrix::from_matrix(&x, 255);
        assert!(b.is_u8(), "default max_bins must choose u8 codes");
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(column(&b, 0), &[2, 0, 1, 0, 2]);
        assert!((b.cut(0, 0) - 1.5).abs() < 1e-12);
        assert!((b.cut(0, 1) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_has_one_bin() {
        let x = matrix_from_cols(&[vec![7.0; 6]]);
        let b = BinnedMatrix::from_matrix(&x, 255);
        assert_eq!(b.n_bins(0), 1);
        assert!(column(&b, 0).iter().all(|&c| c == 0));
    }

    #[test]
    fn many_distinct_values_are_capped() {
        let col: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let x = matrix_from_cols(&[col]);
        let b = BinnedMatrix::from_matrix(&x, 8);
        assert!(b.n_bins(0) <= 8, "{} bins", b.n_bins(0));
        assert!(b.n_bins(0) >= 4);
        // Codes must be monotone in the raw values.
        let codes = column(&b, 0);
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cuts_separate_codes() {
        let col: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let x = matrix_from_cols(std::slice::from_ref(&col));
        let b = BinnedMatrix::from_matrix(&x, 8);
        for (i, &v) in col.iter().enumerate() {
            let code = b.code(i, 0);
            if code > 0 {
                assert!(v > b.cut(0, code - 1));
            }
            if code + 1 < b.n_bins(0) {
                assert!(v <= b.cut(0, code));
            }
        }
    }

    #[test]
    fn near_ties_share_a_bin() {
        let x = matrix_from_cols(&[vec![1.0, 1.0 + 1e-14, 2.0]]);
        let b = BinnedMatrix::from_matrix(&x, 255);
        assert_eq!(b.n_bins(0), 2);
        assert_eq!(column(&b, 0), &[0, 0, 1]);
    }

    #[test]
    fn wide_max_bins_selects_u16() {
        let col: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let x = matrix_from_cols(&[col]);
        let b = BinnedMatrix::from_matrix(&x, 512);
        assert!(!b.is_u8());
        assert_eq!(b.n_bins(0), 300);
        assert_eq!(b.code(299, 0), 299);
    }

    #[test]
    fn u16_oracle_matches_u8_layout_exactly() {
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|f| (0..60).map(|i| ((i * (f + 3)) as f64 * 0.37).sin()).collect())
            .collect();
        let x = matrix_from_cols(&cols);
        let a = BinnedMatrix::from_matrix(&x, 255);
        let b = BinnedMatrix::from_matrix_u16(&x, 255);
        assert!(a.is_u8() && !b.is_u8());
        for f in 0..x.cols() {
            assert_eq!(a.n_bins(f), b.n_bins(f), "feature {f} bin counts");
            for c in 0..a.n_bins(f) - 1 {
                assert_eq!(a.cut(f, c), b.cut(f, c), "feature {f} cut {c}");
            }
            assert_eq!(column(&a, f), column(&b, f), "feature {f} codes");
        }
    }

    #[test]
    fn parallel_binning_is_bit_identical() {
        let cols: Vec<Vec<f64>> = (0..7)
            .map(|f| (0..80).map(|i| ((i + f * 13) as f64 * 0.29).cos()).collect())
            .collect();
        let x = matrix_from_cols(&cols);
        let serial = BinnedMatrix::from_matrix_jobs(&x, 16, 1);
        for jobs in [2, 4, 8] {
            let par = BinnedMatrix::from_matrix_jobs(&x, 16, jobs);
            for f in 0..x.cols() {
                assert_eq!(serial.n_bins(f), par.n_bins(f), "jobs={jobs} feature {f}");
                assert_eq!(column(&serial, f), column(&par, f), "jobs={jobs} feature {f}");
                for c in 0..serial.n_bins(f) - 1 {
                    assert_eq!(serial.cut(f, c), par.cut(f, c));
                }
            }
        }
    }

    #[test]
    fn parallel_binning_keeps_cells_encoded_exact() {
        let x = matrix_from_cols(&[(0..50).map(|i| i as f64).collect(), vec![1.0; 50]]);
        let before = stats::snapshot();
        let _ = BinnedMatrix::from_matrix_jobs(&x, 8, 4);
        let after = stats::snapshot();
        assert_eq!(after.cells_encoded - before.cells_encoded, 100);
        assert_eq!(after.matrices_built - before.matrices_built, 1);
    }

    #[test]
    fn f32_source_bins_like_f64_on_representable_values() {
        // Values exactly representable in f32 must produce identical cuts.
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|f| (0..40).map(|i| (i * (f + 1)) as f64 * 0.5).collect())
            .collect();
        let x = matrix_from_cols(&cols);
        let xf = MatrixF32::from_matrix(&x);
        let a = BinnedMatrix::from_matrix(&x, 255);
        let b = BinnedMatrix::from_matrix_f32(&xf, 255, 1);
        for f in 0..x.cols() {
            assert_eq!(a.n_bins(f), b.n_bins(f));
            assert_eq!(column(&a, f), column(&b, f));
        }
    }

    #[test]
    fn bin_offsets_partition_the_arena() {
        let x = matrix_from_cols(&[
            (0..30).map(|i| i as f64).collect(),
            vec![2.0; 30],
            (0..30).map(|i| (i % 5) as f64).collect(),
        ]);
        let b = BinnedMatrix::from_matrix(&x, 8);
        assert_eq!(b.bin_offset(0), 0);
        let mut total = 0;
        for f in 0..3 {
            assert_eq!(b.bin_offset(f), total);
            total += b.n_bins(f);
        }
        assert_eq!(b.total_bins(), total);
    }
}
