//! k-nearest-neighbors classifier and regressor (brute force, with uniform
//! or inverse-distance weighting and internal feature standardization).

use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use volcanoml_linalg::matrix::squared_distance;
use volcanoml_linalg::Matrix;

/// Neighbor weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeights {
    /// All neighbors vote equally.
    Uniform,
    /// Votes weighted by 1 / distance.
    Distance,
}

#[derive(Debug, Clone)]
struct KnnBase {
    k: usize,
    weights: KnnWeights,
    x: Option<Matrix>,
    y: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl KnnBase {
    fn new(k: usize, weights: KnnWeights) -> Self {
        KnnBase {
            k: k.max(1),
            weights,
            x: None,
            y: Vec::new(),
            means: Vec::new(),
            stds: Vec::new(),
        }
    }

    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.means = volcanoml_linalg::stats::column_means(x);
        self.stds = volcanoml_linalg::stats::column_stds(x)
            .into_iter()
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        let mut xs = x.clone();
        for r in 0..xs.rows() {
            let row = xs.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = (*v - m) / s;
            }
        }
        self.x = Some(xs);
        self.y = y.to_vec();
        Ok(())
    }

    /// Returns `(index, weight)` of each of the k nearest neighbors of `row`.
    fn neighbors(&self, row: &[f64]) -> Result<Vec<(usize, f64)>> {
        let x = self.x.as_ref().ok_or(ModelError::NotFitted)?;
        if row.len() != x.cols() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                x.cols(),
                row.len()
            )));
        }
        let scaled: Vec<f64> = row
            .iter()
            .zip(self.means.iter())
            .zip(self.stds.iter())
            .map(|((v, m), s)| (v - m) / s)
            .collect();
        let mut dists: Vec<(usize, f64)> = (0..x.rows())
            .map(|i| (i, squared_distance(x.row(i), &scaled)))
            .collect();
        let k = self.k.min(dists.len());
        // total_cmp: a NaN distance (NaN feature in the query or training
        // rows) must sort last, never displacing finite neighbors.
        dists.select_nth_unstable_by(k - 1, |a, b| a.1.total_cmp(&b.1));
        dists.truncate(k);
        Ok(dists
            .into_iter()
            .map(|(i, d2)| {
                let w = match self.weights {
                    KnnWeights::Uniform => 1.0,
                    KnnWeights::Distance => 1.0 / (d2.sqrt() + 1e-9),
                };
                (i, w)
            })
            .collect())
    }
}

/// k-NN classifier.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    base: KnnBase,
    n_classes: usize,
}

impl KnnClassifier {
    /// Creates an untrained classifier.
    pub fn new(k: usize, weights: KnnWeights) -> Self {
        KnnClassifier {
            base: KnnBase::new(k, weights),
            n_classes: 0,
        }
    }
}

impl Estimator for KnnClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.n_classes = infer_n_classes(y);
        self.base.fit(x, y)
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| volcanoml_linalg::stats::argmax(p.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for i in 0..x.rows() {
            let neigh = self.base.neighbors(x.row(i))?;
            let row = out.row_mut(i);
            let mut total = 0.0;
            for (idx, w) in neigh {
                row[self.base.y[idx] as usize] += w;
                total += w;
            }
            if total > 0.0 {
                for v in row.iter_mut() {
                    *v /= total;
                }
            }
        }
        Ok(out)
    }
}

/// k-NN regressor.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    base: KnnBase,
}

impl KnnRegressor {
    /// Creates an untrained regressor.
    pub fn new(k: usize, weights: KnnWeights) -> Self {
        KnnRegressor {
            base: KnnBase::new(k, weights),
        }
    }
}

impl Estimator for KnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.base.fit(x, y)
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let neigh = self.base.neighbors(x.row(i))?;
            let mut sum = 0.0;
            let mut wsum = 0.0;
            for (idx, w) in neigh {
                sum += w * self.base.y[idx];
                wsum += w;
            }
            out.push(if wsum > 0.0 { sum / wsum } else { 0.0 });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::{accuracy, r2};
    use volcanoml_data::synthetic::{make_friedman1, make_circles};

    #[test]
    fn knn_classifies_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = KnnClassifier::new(5, KnnWeights::Uniform);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.92, "accuracy {acc}");
    }

    #[test]
    fn knn_classifies_circles() {
        let d = make_circles(300, 0.05, 0.5, 1);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = KnnClassifier::new(7, KnnWeights::Distance);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn k1_memorizes_training_set() {
        let d = easy_multiclass();
        let mut m = KnnClassifier::new(1, KnnWeights::Uniform);
        m.fit(&d.x, &d.y).unwrap();
        let acc = accuracy(&d.y, &m.predict(&d.x).unwrap());
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn distance_weighting_differs_from_uniform() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, _)) = split(&d);
        let mut u = KnnClassifier::new(15, KnnWeights::Uniform);
        u.fit(&xt, &yt).unwrap();
        let mut w = KnnClassifier::new(15, KnnWeights::Distance);
        w.fit(&xt, &yt).unwrap();
        let pu = u.predict_proba(&xv).unwrap();
        let pw = w.predict_proba(&xv).unwrap();
        assert_ne!(pu.data(), pw.data());
    }

    #[test]
    fn knn_regressor_fits_smooth_signal() {
        let d = make_friedman1(400, 0, 0.2, 2);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = KnnRegressor::new(7, KnnWeights::Distance);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.7, "r2 {score}");
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let x = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]).unwrap();
        let y = vec![0.0, 1.0, 1.0];
        let mut m = KnnClassifier::new(50, KnnWeights::Uniform);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        assert_eq!(preds, vec![1.0, 1.0, 1.0]); // majority vote over all 3
    }

    /// NaN injection: training rows are validated at fit time, but a query
    /// row with a NaN feature makes *every* neighbor distance NaN at
    /// predict time. The `total_cmp` selection must stay deterministic and
    /// panic-free under NaN, and finite query rows in the same batch must
    /// be completely unaffected. (The old `partial_cmp(..).unwrap_or(
    /// Equal)` comparator fed `select_nth_unstable_by` an inconsistent
    /// order whenever NaN appeared.)
    #[test]
    fn nan_query_row_is_deterministic_and_isolated() {
        let d = easy_multiclass();
        let mut m = KnnClassifier::new(5, KnnWeights::Uniform);
        m.fit(&d.x, &d.y).unwrap();
        let clean = m.predict(&d.x).unwrap();

        // Poison the first query row with NaN, keep the rest intact.
        let w = d.x.cols();
        let mut data = d.x.data().to_vec();
        for v in data.iter_mut().take(w) {
            *v = f64::NAN;
        }
        let x_poisoned = Matrix::from_vec(d.x.rows(), w, data).unwrap();
        let got1 = m.predict(&x_poisoned).unwrap();
        let got2 = m.predict(&x_poisoned).unwrap();
        assert_eq!(got1, got2, "NaN query made selection non-deterministic");
        assert_eq!(
            got1[1..],
            clean[1..],
            "NaN query row leaked into finite rows' predictions"
        );
    }

    #[test]
    fn unfitted_errors() {
        let m = KnnClassifier::new(3, KnnWeights::Uniform);
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn wrong_width_errors() {
        let d = easy_multiclass();
        let mut m = KnnClassifier::new(3, KnnWeights::Uniform);
        m.fit(&d.x, &d.y).unwrap();
        assert!(m.predict(&Matrix::zeros(1, 99)).is_err());
    }
}
