//! Gaussian naive Bayes.

use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use volcanoml_linalg::Matrix;

/// Gaussian naive Bayes classifier with variance smoothing.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Fraction of the largest feature variance added to all variances for
    /// numerical stability (sklearn's `var_smoothing`).
    pub var_smoothing: f64,
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl GaussianNb {
    /// Creates an untrained model.
    pub fn new(var_smoothing: f64) -> Self {
        GaussianNb {
            var_smoothing,
            priors: Vec::new(),
            means: Vec::new(),
            vars: Vec::new(),
        }
    }

    fn log_joint(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.priors.is_empty() {
            return Err(ModelError::NotFitted);
        }
        if row.len() != self.means[0].len() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                self.means[0].len(),
                row.len()
            )));
        }
        Ok((0..self.priors.len())
            .map(|c| {
                let mut lj = self.priors[c].max(1e-12).ln();
                for ((&v, &m), &var) in row
                    .iter()
                    .zip(self.means[c].iter())
                    .zip(self.vars[c].iter())
                {
                    let d = v - m;
                    lj += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
                }
                lj
            })
            .collect())
    }
}

impl Estimator for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        let d = x.cols();
        let n = x.rows();

        let mut counts = vec![0usize; k];
        let mut means = vec![vec![0.0; d]; k];
        for (row, &label) in x.iter_rows().zip(y.iter()) {
            let c = label as usize;
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                for m in means[c].iter_mut() {
                    *m /= *count as f64;
                }
            }
        }
        let mut vars = vec![vec![0.0; d]; k];
        for (row, &label) in x.iter_rows().zip(y.iter()) {
            let c = label as usize;
            for ((v, &xv), &m) in vars[c].iter_mut().zip(row.iter()).zip(means[c].iter()) {
                let diff = xv - m;
                *v += diff * diff;
            }
        }
        // Global max variance for smoothing.
        let global_max_var = {
            let col_vars = volcanoml_linalg::stats::column_stds(x);
            col_vars.iter().map(|s| s * s).fold(1e-9, f64::max)
        };
        let eps = self.var_smoothing.max(1e-12) * global_max_var;
        for (c, count) in counts.iter().enumerate() {
            let denom = (*count).max(1) as f64;
            for v in vars[c].iter_mut() {
                *v = *v / denom + eps;
            }
        }
        self.priors = counts.iter().map(|&c| c as f64 / n as f64).collect();
        self.means = means;
        self.vars = vars;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let lj = self.log_joint(x.row(i))?;
            out.push(volcanoml_linalg::stats::argmax(&lj).unwrap_or(0) as f64);
        }
        Ok(out)
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let k = self.priors.len().max(1);
        let mut out = Matrix::zeros(x.rows(), k);
        for i in 0..x.rows() {
            let lj = self.log_joint(x.row(i))?;
            let max = lj.iter().fold(f64::MIN, |m, &v| m.max(v));
            let mut sum = 0.0;
            let row = out.row_mut(i);
            for (o, &l) in row.iter_mut().zip(lj.iter()) {
                *o = (l - max).exp();
                sum += *o;
            }
            if sum > 0.0 {
                for o in row.iter_mut() {
                    *o /= sum;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_multiclass, split};
    use volcanoml_data::metrics::accuracy;

    #[test]
    fn nb_learns_gaussian_clusters() {
        let d = easy_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = GaussianNb::new(1e-9);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn nb_multiclass_blobs() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = GaussianNb::new(1e-9);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn proba_sums_to_one() {
        let d = easy_binary();
        let mut m = GaussianNb::new(1e-9);
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn priors_reflect_class_frequencies() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.1, 5.0, 5.1]).unwrap();
        let y = vec![0.0, 0.0, 0.0, 1.0];
        let mut m = GaussianNb::new(1e-9);
        m.fit(&x, &y).unwrap();
        assert!((m.priors[0] - 0.75).abs() < 1e-12);
        assert!((m.priors[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn smoothing_handles_constant_features() {
        // One feature is constant within a class; without smoothing the
        // variance would be zero and the density infinite.
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 1.0, 0.1, 2.0, 5.0, 2.0, 5.2]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let mut m = GaussianNb::new(1e-9);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        assert_eq!(preds, y);
    }

    #[test]
    fn unfitted_errors() {
        let m = GaussianNb::new(1e-9);
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
    }
}
