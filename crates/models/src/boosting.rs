//! Boosted ensembles: gradient boosting (GBDT) and AdaBoost (SAMME).
//!
//! All three models support histogram-mode base learners (`split_strategy =
//! Histogram`): the dataset is binned once up front and every round fits
//! against the shared [`BinnedMatrix`]. Round-to-round dependencies stay
//! serial; `n_jobs` parallelizes the independent work inside a round (the
//! per-class trees of OvR gradient boosting, per-row stage predictions),
//! with results applied in a fixed order so fits are bit-identical for any
//! thread count.

use crate::binned::BinnedMatrix;
use crate::parallel::parallel_map;
use crate::tree::{Criterion, HistKernel, MaxFeatures, SplitStrategy, Tree, TreeConfig};
use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_linalg::Matrix;

/// Fits one base learner on raw or pre-binned data.
fn fit_base_tree(
    x: &Matrix,
    binned: Option<&BinnedMatrix>,
    y: &[f64],
    weights: Option<&[f64]>,
    n_outputs: usize,
    cfg: &TreeConfig,
) -> Result<Tree> {
    match binned {
        Some(bm) => Tree::fit_binned(bm, y, weights, n_outputs, cfg),
        None => Tree::fit(x, y, weights, n_outputs, cfg),
    }
}

/// Gradient-boosted regression trees with squared loss.
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Depth of each weak tree.
    pub max_depth: usize,
    /// Row subsampling fraction per round (stochastic gradient boosting).
    pub subsample: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Base-learner split strategy (`Histogram` bins the data once and
    /// reuses the layout every round).
    pub split_strategy: SplitStrategy,
    /// Bins per feature in histogram mode.
    pub max_bins: usize,
    /// Worker threads for intra-round work; results are thread-count
    /// independent.
    pub n_jobs: usize,
    /// RNG seed.
    pub seed: u64,
    base: f64,
    trees: Vec<Tree>,
}

impl GradientBoostingRegressor {
    /// Creates an untrained model.
    pub fn new(
        n_estimators: usize,
        learning_rate: f64,
        max_depth: usize,
        subsample: f64,
        min_samples_leaf: usize,
        seed: u64,
    ) -> Self {
        GradientBoostingRegressor {
            n_estimators,
            learning_rate,
            max_depth,
            subsample: subsample.clamp(0.1, 1.0),
            min_samples_leaf,
            split_strategy: SplitStrategy::Best,
            max_bins: crate::binned::DEFAULT_MAX_BINS,
            n_jobs: 1,
            seed,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    fn tree_config(&self, round: usize) -> TreeConfig {
        TreeConfig {
            criterion: Criterion::Mse,
            max_depth: self.max_depth,
            min_samples_split: 2 * self.min_samples_leaf.max(1),
            min_samples_leaf: self.min_samples_leaf.max(1),
            max_features: MaxFeatures::All,
            split_strategy: self.split_strategy,
            max_bins: self.max_bins,
            // Boosting rounds are inherently serial and fit one tree each,
            // so the configured job budget goes to feature-parallel
            // histogram fills inside that tree.
            hist_n_jobs: self.n_jobs,
            hist_kernel: HistKernel::Flat,
            seed: derive_seed(self.seed, round as u64),
        }
    }
}

/// Selects the per-round training subset for stochastic boosting.
fn subsample_indices(n: usize, fraction: f64, seed: u64) -> Vec<usize> {
    if fraction >= 1.0 {
        return (0..n).collect();
    }
    let k = ((n as f64 * fraction).round() as usize).clamp(2.min(n), n);
    let mut rng = volcanoml_data::rand_util::rng_from_seed(seed);
    let mut idx = volcanoml_data::rand_util::permutation(&mut rng, n);
    idx.truncate(k);
    idx
}

/// The per-round subset as a 0/1 weight mask (`None` when no subsampling),
/// so stochastic rounds fit on the full matrix without a row-copy — the
/// tree builders drop zero-weight rows before growing.
fn subsample_mask(n: usize, fraction: f64, seed: u64) -> Option<Vec<f64>> {
    if fraction >= 1.0 {
        return None;
    }
    let mut mask = vec![0.0; n];
    for i in subsample_indices(n, fraction, seed) {
        mask[i] = 1.0;
    }
    Some(mask)
}

impl Estimator for GradientBoostingRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let n = x.rows();
        self.base = volcanoml_linalg::stats::mean(y);
        self.trees.clear();
        let binned = (self.split_strategy == SplitStrategy::Histogram)
            .then(|| BinnedMatrix::from_matrix(x, self.max_bins));
        let mut preds = vec![self.base; n];
        for round in 0..self.n_estimators {
            let residuals: Vec<f64> = y.iter().zip(preds.iter()).map(|(t, p)| t - p).collect();
            let mask = subsample_mask(n, self.subsample, derive_seed(self.seed, 1000 + round as u64));
            let tree = fit_base_tree(
                x,
                binned.as_ref(),
                &residuals,
                mask.as_deref(),
                1,
                &self.tree_config(round),
            )?;
            let deltas = parallel_map(self.n_jobs, n, |i| tree.predict_row(x.row(i))[0]);
            for (p, d) in preds.iter_mut().zip(deltas.iter()) {
                *p += self.learning_rate * d;
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        if x.cols() != self.trees[0].n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                self.trees[0].n_features(),
                x.cols()
            )));
        }
        let mut out = vec![self.base; x.rows()];
        for tree in &self.trees {
            for (i, o) in out.iter_mut().enumerate() {
                *o += self.learning_rate * tree.predict_row(x.row(i))[0];
            }
        }
        Ok(out)
    }
}

/// Gradient-boosted classification via one-vs-rest logistic boosting: one
/// stage-wise additive model per class, trained on logistic gradients.
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Depth of each weak tree.
    pub max_depth: usize,
    /// Row subsampling fraction per round.
    pub subsample: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Base-learner split strategy (`Histogram` bins once, reuses per round).
    pub split_strategy: SplitStrategy,
    /// Bins per feature in histogram mode.
    pub max_bins: usize,
    /// Worker threads for the per-class trees within a round (independent in
    /// one-vs-rest boosting); score updates are applied serially in class
    /// order so fits are thread-count independent.
    pub n_jobs: usize,
    /// RNG seed.
    pub seed: u64,
    // trees[class][round]
    trees: Vec<Vec<Tree>>,
    priors: Vec<f64>,
    n_classes: usize,
}

impl GradientBoostingClassifier {
    /// Creates an untrained model.
    pub fn new(
        n_estimators: usize,
        learning_rate: f64,
        max_depth: usize,
        subsample: f64,
        min_samples_leaf: usize,
        seed: u64,
    ) -> Self {
        GradientBoostingClassifier {
            n_estimators,
            learning_rate,
            max_depth,
            subsample: subsample.clamp(0.1, 1.0),
            min_samples_leaf,
            split_strategy: SplitStrategy::Best,
            max_bins: crate::binned::DEFAULT_MAX_BINS,
            n_jobs: 1,
            seed,
            trees: Vec::new(),
            priors: Vec::new(),
            n_classes: 0,
        }
    }

    fn raw_scores(&self, x: &Matrix) -> Result<Matrix> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let d = self.trees[0]
            .first()
            .map(|t| t.n_features())
            .unwrap_or(x.cols());
        if x.cols() != d {
            return Err(ModelError::Invalid(format!(
                "predict expects {d} features, got {}",
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for (c, stages) in self.trees.iter().enumerate() {
            for i in 0..x.rows() {
                let mut s = self.priors[c];
                for tree in stages {
                    s += self.learning_rate * tree.predict_row(x.row(i))[0];
                }
                out.set(i, c, s);
            }
        }
        Ok(out)
    }
}

impl Estimator for GradientBoostingClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        self.n_classes = k;
        let n = x.rows();
        self.trees = vec![Vec::with_capacity(self.n_estimators); k];
        // Log-odds priors.
        self.priors = (0..k)
            .map(|c| {
                let p = y.iter().filter(|&&v| v as usize == c).count() as f64 / n as f64;
                let p = p.clamp(1e-4, 1.0 - 1e-4);
                (p / (1.0 - p)).ln()
            })
            .collect();

        let cfg = |seed: u64| TreeConfig {
            criterion: Criterion::Mse,
            max_depth: self.max_depth,
            min_samples_split: 2 * self.min_samples_leaf.max(1),
            min_samples_leaf: self.min_samples_leaf.max(1),
            max_features: MaxFeatures::All,
            split_strategy: self.split_strategy,
            max_bins: self.max_bins,
            // Jobs left over after class-parallelism go to feature-parallel
            // histogram fills within each class's tree.
            hist_n_jobs: (self.n_jobs / k.max(1)).max(1),
            hist_kernel: HistKernel::Flat,
            seed,
        };
        let binned = (self.split_strategy == SplitStrategy::Histogram)
            .then(|| BinnedMatrix::from_matrix(x, self.max_bins));

        // scores[i][c]
        let mut scores = Matrix::zeros(n, k);
        for i in 0..n {
            scores.row_mut(i).copy_from_slice(&self.priors);
        }
        for round in 0..self.n_estimators {
            // Within a round the per-class stages are independent: class
            // `c` reads only score column `c`, so trees and their update
            // vectors can be fitted in parallel and applied in class order.
            let fit_class = |c: usize| -> Result<(Tree, Vec<f64>)> {
                // Negative gradient of OvR logistic loss: t - sigmoid(score).
                let grads: Vec<f64> = (0..n)
                    .map(|i| {
                        let t = if y[i] as usize == c { 1.0 } else { 0.0 };
                        let p = 1.0 / (1.0 + (-scores.get(i, c)).exp());
                        t - p
                    })
                    .collect();
                let mask = subsample_mask(
                    n,
                    self.subsample,
                    derive_seed(self.seed, (round * k + c) as u64),
                );
                let tree = fit_base_tree(
                    x,
                    binned.as_ref(),
                    &grads,
                    mask.as_deref(),
                    1,
                    &cfg(derive_seed(self.seed, (7000 + round * k + c) as u64)),
                )?;
                let deltas: Vec<f64> = (0..n).map(|i| tree.predict_row(x.row(i))[0]).collect();
                Ok((tree, deltas))
            };
            for (c, fitted) in parallel_map(self.n_jobs, k, fit_class).into_iter().enumerate() {
                let (tree, deltas) = fitted?;
                for (i, d) in deltas.iter().enumerate() {
                    let s = scores.get(i, c) + self.learning_rate * d;
                    scores.set(i, c, s);
                }
                self.trees[c].push(tree);
            }
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let scores = self.raw_scores(x)?;
        Ok((0..scores.rows())
            .map(|i| volcanoml_linalg::stats::argmax(scores.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let mut scores = self.raw_scores(x)?;
        for i in 0..scores.rows() {
            let row = scores.row_mut(i);
            // Sigmoid per class, then normalize across classes.
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = 1.0 / (1.0 + (-*v).exp());
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        Ok(scores)
    }
}

/// AdaBoost with the multi-class SAMME algorithm over depth-limited trees.
#[derive(Debug, Clone)]
pub struct AdaBoostClassifier {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Weight shrinkage applied to each stage's vote.
    pub learning_rate: f64,
    /// Depth of the weak learners (1 = decision stumps).
    pub max_depth: usize,
    /// Weak-learner split strategy (`Histogram` bins once for all stages).
    pub split_strategy: SplitStrategy,
    /// Bins per feature in histogram mode.
    pub max_bins: usize,
    /// Worker threads for per-row stage predictions; the weight update
    /// itself stays serial, so fits are thread-count independent.
    pub n_jobs: usize,
    /// RNG seed.
    pub seed: u64,
    stages: Vec<(Tree, f64)>,
    n_classes: usize,
}

impl AdaBoostClassifier {
    /// Creates an untrained model.
    pub fn new(n_estimators: usize, learning_rate: f64, max_depth: usize, seed: u64) -> Self {
        AdaBoostClassifier {
            n_estimators,
            learning_rate,
            max_depth,
            split_strategy: SplitStrategy::Best,
            max_bins: crate::binned::DEFAULT_MAX_BINS,
            n_jobs: 1,
            seed,
            stages: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Estimator for AdaBoostClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let n = x.rows();
        let k = infer_n_classes(y);
        self.n_classes = k;
        self.stages.clear();
        let binned = (self.split_strategy == SplitStrategy::Histogram)
            .then(|| BinnedMatrix::from_matrix(x, self.max_bins));
        let mut w = vec![1.0 / n as f64; n];
        for round in 0..self.n_estimators {
            let cfg = TreeConfig {
                criterion: Criterion::Gini,
                max_depth: self.max_depth,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: MaxFeatures::All,
                split_strategy: self.split_strategy,
                max_bins: self.max_bins,
                // Rounds are serial; spend the job budget inside the tree.
                hist_n_jobs: self.n_jobs,
                hist_kernel: HistKernel::Flat,
                seed: derive_seed(self.seed, round as u64),
            };
            let tree = fit_base_tree(x, binned.as_ref(), y, Some(&w), k, &cfg)?;
            // Weighted error of this stage.
            let preds = parallel_map(self.n_jobs, n, |i| {
                volcanoml_linalg::stats::argmax(tree.predict_row(x.row(i))).unwrap_or(0)
            });
            let mut err = 0.0;
            let mut wrong = vec![false; n];
            for (i, &pred) in preds.iter().enumerate() {
                if pred != y[i] as usize {
                    err += w[i];
                    wrong[i] = true;
                }
            }
            let total: f64 = w.iter().sum();
            let err = (err / total).clamp(1e-10, 1.0);
            if err >= 1.0 - 1.0 / k as f64 {
                // Worse than chance: stop boosting.
                if self.stages.is_empty() {
                    self.stages.push((tree, 1.0));
                }
                break;
            }
            let alpha =
                self.learning_rate * (((1.0 - err) / err).ln() + (k as f64 - 1.0).ln());
            for i in 0..n {
                if wrong[i] {
                    w[i] *= alpha.exp().min(1e6);
                }
            }
            // Renormalize.
            let sum: f64 = w.iter().sum();
            if sum > 0.0 {
                for wi in &mut w {
                    *wi /= sum;
                }
            }
            self.stages.push((tree, alpha));
            if err < 1e-9 {
                break; // perfect stage
            }
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| volcanoml_linalg::stats::argmax(p.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        if self.stages.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let d = self.stages[0].0.n_features();
        if x.cols() != d {
            return Err(ModelError::Invalid(format!(
                "predict expects {d} features, got {}",
                x.cols()
            )));
        }
        let mut votes = Matrix::zeros(x.rows(), self.n_classes);
        for (tree, alpha) in &self.stages {
            for i in 0..x.rows() {
                let probs = tree.predict_row(x.row(i));
                let pred = volcanoml_linalg::stats::argmax(probs).unwrap_or(0);
                let v = votes.get(i, pred) + alpha;
                votes.set(i, pred, v);
            }
        }
        for i in 0..votes.rows() {
            let row = votes.row_mut(i);
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        Ok(votes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::{accuracy, r2};
    use volcanoml_data::synthetic::{make_friedman1, make_xor};

    #[test]
    fn gbdt_regressor_fits_friedman() {
        let d = make_friedman1(400, 3, 0.3, 1);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = GradientBoostingRegressor::new(80, 0.1, 3, 1.0, 3, 0);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.8, "r2 {score}");
    }

    #[test]
    fn gbdt_improves_with_more_rounds() {
        let d = make_friedman1(300, 2, 0.3, 2);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut short = GradientBoostingRegressor::new(5, 0.1, 3, 1.0, 3, 0);
        short.fit(&xt, &yt).unwrap();
        let mut long = GradientBoostingRegressor::new(80, 0.1, 3, 1.0, 3, 0);
        long.fit(&xt, &yt).unwrap();
        let r_short = r2(&yv, &short.predict(&xv).unwrap());
        let r_long = r2(&yv, &long.predict(&xv).unwrap());
        assert!(r_long > r_short, "{r_long} vs {r_short}");
    }

    #[test]
    fn gbdt_classifier_learns_xor() {
        let d = make_xor(400, 2, 3, 0.02, 3);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = GradientBoostingClassifier::new(60, 0.3, 4, 1.0, 2, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn gbdt_classifier_multiclass() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = GradientBoostingClassifier::new(20, 0.3, 2, 1.0, 2, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn gbdt_proba_is_normalized() {
        let d = easy_multiclass();
        let mut m = GradientBoostingClassifier::new(10, 0.3, 2, 1.0, 2, 0);
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn adaboost_learns_nonlinear_boundary() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = AdaBoostClassifier::new(60, 0.5, 2, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn adaboost_stumps_beat_single_stump() {
        let d = make_xor(400, 2, 3, 0.0, 9);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut single = AdaBoostClassifier::new(1, 1.0, 1, 0);
        single.fit(&xt, &yt).unwrap();
        let mut many = AdaBoostClassifier::new(100, 0.8, 2, 0);
        many.fit(&xt, &yt).unwrap();
        let a1 = accuracy(&yv, &single.predict(&xv).unwrap());
        let a2 = accuracy(&yv, &many.predict(&xv).unwrap());
        assert!(a2 > a1, "{a2} vs {a1}");
    }

    #[test]
    fn unfitted_models_error() {
        let m = GradientBoostingRegressor::new(5, 0.1, 2, 1.0, 1, 0);
        assert!(m.predict(&Matrix::zeros(2, 2)).is_err());
        let c = AdaBoostClassifier::new(5, 0.1, 1, 0);
        assert!(c.predict(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn subsampling_still_learns() {
        let d = make_friedman1(400, 2, 0.3, 4);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = GradientBoostingRegressor::new(60, 0.1, 3, 0.6, 3, 0);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.7, "r2 {score}");
    }

    #[test]
    fn histogram_gbdt_regressor_fits_friedman() {
        let d = make_friedman1(400, 3, 0.3, 1);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = GradientBoostingRegressor::new(80, 0.1, 3, 1.0, 3, 0);
        m.split_strategy = SplitStrategy::Histogram;
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.8, "r2 {score}");
    }

    #[test]
    fn histogram_adaboost_learns() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = AdaBoostClassifier::new(60, 0.5, 2, 0);
        m.split_strategy = SplitStrategy::Histogram;
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn gbdt_classifier_is_bit_identical_across_n_jobs() {
        let d = easy_multiclass();
        let fit = |jobs: usize, strategy: SplitStrategy| {
            let mut m = GradientBoostingClassifier::new(10, 0.3, 3, 0.8, 2, 0);
            m.n_jobs = jobs;
            m.split_strategy = strategy;
            m.fit(&d.x, &d.y).unwrap();
            m.predict_proba(&d.x).unwrap()
        };
        for strategy in [SplitStrategy::Best, SplitStrategy::Histogram] {
            let serial = fit(1, strategy);
            for jobs in [2, 4] {
                assert_eq!(
                    serial.data(),
                    fit(jobs, strategy).data(),
                    "{strategy:?} with n_jobs={jobs} diverged"
                );
            }
        }
    }

    #[test]
    fn adaboost_is_bit_identical_across_n_jobs() {
        let d = nonlinear_binary();
        let fit = |jobs: usize| {
            let mut m = AdaBoostClassifier::new(30, 0.5, 2, 0);
            m.n_jobs = jobs;
            m.fit(&d.x, &d.y).unwrap();
            m.predict_proba(&d.x).unwrap()
        };
        let serial = fit(1);
        for jobs in [2, 4] {
            assert_eq!(serial.data(), fit(jobs).data(), "n_jobs={jobs} diverged");
        }
    }
}
