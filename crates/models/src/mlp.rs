//! Multi-layer perceptron (1–2 hidden layers) trained with Adam, for both
//! classification (softmax head) and regression (linear head).

use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use volcanoml_data::rand_util::{permutation, rng_from_seed, standard_normal};
use volcanoml_linalg::Matrix;

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(&self, v: f64) -> f64 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
        }
    }

    #[inline]
    fn derivative(&self, activated: f64) -> f64 {
        match self {
            Activation::Relu => {
                if activated > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - activated * activated,
        }
    }
}

/// MLP hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Width of each hidden layer (1 or 2 entries).
    pub hidden: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 penalty.
    pub alpha: f64,
    /// Training epochs.
    pub max_iter: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![32],
            activation: Activation::Relu,
            learning_rate: 1e-3,
            alpha: 1e-4,
            max_iter: 60,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// A dense layer with Adam state.
#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut rand::rngs::StdRng) -> Layer {
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| scale * standard_normal(rng))
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            out.push(volcanoml_linalg::matrix::dot(row, input) + self.b[o]);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn adam_step(
        &mut self,
        grad_w: &[f64],
        grad_b: &[f64],
        lr: f64,
        alpha: f64,
        t: usize,
    ) {
        let b1: f64 = 0.9;
        let b2: f64 = 0.999;
        let eps = 1e-8;
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        for (i, &gw) in grad_w.iter().enumerate().take(self.w.len()) {
            let g = gw + alpha * self.w[i];
            self.mw[i] = b1 * self.mw[i] + (1.0 - b1) * g;
            self.vw[i] = b2 * self.vw[i] + (1.0 - b2) * g * g;
            let mhat = self.mw[i] / bias1;
            let vhat = self.vw[i] / bias2;
            self.w[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
        for (i, &g) in grad_b.iter().enumerate().take(self.b.len()) {
            self.mb[i] = b1 * self.mb[i] + (1.0 - b1) * g;
            self.vb[i] = b2 * self.vb[i] + (1.0 - b2) * g * g;
            let mhat = self.mb[i] / bias1;
            let vhat = self.vb[i] / bias2;
            self.b[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// The shared network; the head interpretation depends on the task.
#[derive(Debug, Clone)]
struct Network {
    layers: Vec<Layer>,
    activation: Activation,
}

impl Network {
    fn new(sizes: &[usize], activation: Activation, seed: u64) -> Network {
        let mut rng = rng_from_seed(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        Network { layers, activation }
    }

    /// Forward pass; returns all activations (input first, logits last).
    fn forward(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().expect("non-empty"), &mut buf);
            let is_last = li == self.layers.len() - 1;
            if !is_last {
                for v in buf.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            acts.push(buf.clone());
        }
        acts
    }
}

/// Trains `net` on `(x, targets)` where `delta_fn` converts (logits, sample
/// index) into the output-layer error signal dL/dlogit.
fn train_network<F: Fn(&[f64], usize, &mut Vec<f64>)>(
    net: &mut Network,
    x: &Matrix,
    n_samples: usize,
    cfg: &MlpConfig,
    delta_fn: F,
) {
    let mut rng = rng_from_seed(cfg.seed ^ 0x7777);
    let mut t = 0usize;
    let batch = cfg.batch_size.clamp(1, n_samples);
    let mut delta = Vec::new();
    for _epoch in 0..cfg.max_iter {
        let order = permutation(&mut rng, n_samples);
        for chunk in order.chunks(batch) {
            t += 1;
            // Accumulate gradients across the chunk.
            let mut grads_w: Vec<Vec<f64>> = net
                .layers
                .iter()
                .map(|l| vec![0.0; l.w.len()])
                .collect();
            let mut grads_b: Vec<Vec<f64>> =
                net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
            for &i in chunk {
                let acts = net.forward(x.row(i));
                delta_fn(acts.last().expect("logits"), i, &mut delta);
                // Backprop.
                let mut cur = delta.clone();
                for li in (0..net.layers.len()).rev() {
                    let input = &acts[li];
                    {
                        let gw = &mut grads_w[li];
                        let gb = &mut grads_b[li];
                        let n_in = net.layers[li].n_in;
                        for (o, &dv) in cur.iter().enumerate() {
                            gb[o] += dv;
                            let grow = &mut gw[o * n_in..(o + 1) * n_in];
                            for (g, &iv) in grow.iter_mut().zip(input.iter()) {
                                *g += dv * iv;
                            }
                        }
                    }
                    if li > 0 {
                        // Propagate through weights and the activation of layer li-1.
                        let layer = &net.layers[li];
                        let mut prev = vec![0.0; layer.n_in];
                        for (o, &dv) in cur.iter().enumerate() {
                            let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                            for (p, &w) in prev.iter_mut().zip(row.iter()) {
                                *p += dv * w;
                            }
                        }
                        for (p, &a) in prev.iter_mut().zip(acts[li].iter()) {
                            *p *= net.activation.derivative(a);
                        }
                        cur = prev;
                    }
                }
            }
            let scale = 1.0 / chunk.len() as f64;
            for li in 0..net.layers.len() {
                for g in grads_w[li].iter_mut() {
                    *g *= scale;
                }
                for g in grads_b[li].iter_mut() {
                    *g *= scale;
                }
                net.layers[li].adam_step(&grads_w[li], &grads_b[li], cfg.learning_rate, cfg.alpha, t);
            }
        }
    }
}

/// MLP classifier (softmax + cross-entropy).
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// Network hyper-parameters.
    pub config: MlpConfig,
    net: Option<Network>,
    n_classes: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl MlpClassifier {
    /// Creates an untrained classifier.
    pub fn new(config: MlpConfig) -> Self {
        MlpClassifier {
            config,
            net: None,
            n_classes: 0,
            means: Vec::new(),
            stds: Vec::new(),
        }
    }

    fn scale(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = (*v - m) / s;
            }
        }
        out
    }
}

fn softmax(logits: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let max = logits.iter().fold(f64::MIN, |m, &v| m.max(v));
    let mut sum = 0.0;
    for &l in logits {
        let e = (l - max).exp();
        out.push(e);
        sum += e;
    }
    if sum > 0.0 {
        for v in out.iter_mut() {
            *v /= sum;
        }
    }
}

impl Estimator for MlpClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        self.n_classes = k;
        self.means = volcanoml_linalg::stats::column_means(x);
        self.stds = volcanoml_linalg::stats::column_stds(x)
            .into_iter()
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        let xs = self.scale(x);
        let mut sizes = vec![x.cols()];
        sizes.extend(self.config.hidden.iter().copied().filter(|&h| h > 0));
        sizes.push(k);
        let mut net = Network::new(&sizes, self.config.activation, self.config.seed);
        let labels: Vec<usize> = y.iter().map(|&v| v as usize).collect();
        train_network(&mut net, &xs, xs.rows(), &self.config, |logits, i, delta| {
            softmax(logits, delta);
            delta[labels[i]] -= 1.0;
        });
        self.net = Some(net);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| volcanoml_linalg::stats::argmax(p.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let net = self.net.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != net.layers[0].n_in {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                net.layers[0].n_in,
                x.cols()
            )));
        }
        let xs = self.scale(x);
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        let mut probs = Vec::new();
        for i in 0..xs.rows() {
            let acts = net.forward(xs.row(i));
            softmax(acts.last().expect("logits"), &mut probs);
            out.row_mut(i).copy_from_slice(&probs);
        }
        Ok(out)
    }
}

/// MLP regressor (linear head + squared loss); the target is standardized
/// internally.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    /// Network hyper-parameters.
    pub config: MlpConfig,
    net: Option<Network>,
    means: Vec<f64>,
    stds: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl MlpRegressor {
    /// Creates an untrained regressor.
    pub fn new(config: MlpConfig) -> Self {
        MlpRegressor {
            config,
            net: None,
            means: Vec::new(),
            stds: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn scale(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = (*v - m) / s;
            }
        }
        out
    }
}

impl Estimator for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        self.means = volcanoml_linalg::stats::column_means(x);
        self.stds = volcanoml_linalg::stats::column_stds(x)
            .into_iter()
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        self.y_mean = volcanoml_linalg::stats::mean(y);
        self.y_std = {
            let s = volcanoml_linalg::stats::std_dev(y);
            if s < 1e-9 {
                1.0
            } else {
                s
            }
        };
        let xs = self.scale(x);
        let yn: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();
        let mut sizes = vec![x.cols()];
        sizes.extend(self.config.hidden.iter().copied().filter(|&h| h > 0));
        sizes.push(1);
        let mut net = Network::new(&sizes, self.config.activation, self.config.seed);
        train_network(&mut net, &xs, xs.rows(), &self.config, |logits, i, delta| {
            delta.clear();
            delta.push(logits[0] - yn[i]);
        });
        self.net = Some(net);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let net = self.net.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != net.layers[0].n_in {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                net.layers[0].n_in,
                x.cols()
            )));
        }
        let xs = self.scale(x);
        Ok((0..xs.rows())
            .map(|i| {
                let acts = net.forward(xs.row(i));
                acts.last().expect("output")[0] * self.y_std + self.y_mean
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::{accuracy, r2};
    use volcanoml_data::synthetic::{make_friedman1, make_xor};

    #[test]
    fn mlp_learns_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = MlpClassifier::new(MlpConfig::default());
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn mlp_learns_xor() {
        let d = make_xor(400, 2, 3, 0.0, 5);
        let ((xt, yt), (xv, yv)) = split(&d);
        let cfg = MlpConfig {
            hidden: vec![32, 16],
            max_iter: 80,
            ..Default::default()
        };
        let mut m = MlpClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn mlp_multiclass() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = MlpClassifier::new(MlpConfig::default());
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn tanh_activation_works() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let cfg = MlpConfig {
            activation: Activation::Tanh,
            ..Default::default()
        };
        let mut m = MlpClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn mlp_regressor_fits_friedman() {
        let d = make_friedman1(400, 0, 0.2, 6);
        let ((xt, yt), (xv, yv)) = split(&d);
        let cfg = MlpConfig {
            max_iter: 120,
            hidden: vec![48],
            ..Default::default()
        };
        let mut m = MlpRegressor::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.75, "r2 {score}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = nonlinear_binary();
        let mut a = MlpClassifier::new(MlpConfig::default());
        a.fit(&d.x, &d.y).unwrap();
        let mut b = MlpClassifier::new(MlpConfig::default());
        b.fit(&d.x, &d.y).unwrap();
        assert_eq!(
            a.predict_proba(&d.x).unwrap().data(),
            b.predict_proba(&d.x).unwrap().data()
        );
    }

    #[test]
    fn proba_sums_to_one() {
        let d = easy_multiclass();
        let mut m = MlpClassifier::new(MlpConfig::default());
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unfitted_errors() {
        let m = MlpClassifier::new(MlpConfig::default());
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
        let r = MlpRegressor::new(MlpConfig::default());
        assert!(r.predict(&Matrix::zeros(1, 2)).is_err());
    }
}
