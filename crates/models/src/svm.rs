//! Kernel SVM classifier trained with simplified SMO, one-vs-rest for
//! multi-class — the `Lib_SVM` stand-in from the paper's search space.

use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use rand::RngExt;
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_linalg::matrix::{dot, squared_distance};
use volcanoml_linalg::Matrix;

/// SVM kernel functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// ⟨x, y⟩
    Linear,
    /// exp(−γ ‖x − y‖²)
    Rbf {
        /// Bandwidth γ.
        gamma: f64,
    },
    /// (γ ⟨x, y⟩ + c₀)^degree
    Poly {
        /// Scale γ.
        gamma: f64,
        /// Offset c₀.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
}

impl Kernel {
    /// Evaluates the kernel on two feature vectors.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * squared_distance(a, b)).exp(),
            Kernel::Poly { gamma, coef0, degree } => (gamma * dot(a, b) + coef0).powi(degree as i32),
        }
    }
}

/// One binary SVM trained on ±1 targets with simplified SMO.
#[derive(Debug, Clone)]
struct BinarySvm {
    alphas: Vec<f64>,
    bias: f64,
    support_idx: Vec<usize>,
}

fn train_binary(
    x: &Matrix,
    targets: &[f64], // ±1
    c: f64,
    kernel: Kernel,
    tol: f64,
    max_passes: usize,
    seed: u64,
) -> BinarySvm {
    let n = x.rows();
    let mut alphas = vec![0.0; n];
    let mut b = 0.0;
    let mut rng = rng_from_seed(seed);

    // Cache kernel rows lazily would be nicer; for our n (≤ a few thousand,
    // typically a few hundred after subsampling) a full scan per lookup is
    // acceptable and memory-friendly.
    let f = |alphas: &[f64], b: f64, i: usize| -> f64 {
        let mut s = b;
        let row_i = x.row(i);
        for (j, &a) in alphas.iter().enumerate() {
            if a != 0.0 {
                s += a * targets[j] * kernel.eval(x.row(j), row_i);
            }
        }
        s
    };

    let mut passes = 0usize;
    let mut iter_guard = 0usize;
    let max_iters = max_passes * 40;
    while passes < max_passes && iter_guard < max_iters {
        iter_guard += 1;
        let mut changed = 0usize;
        for i in 0..n {
            let ei = f(&alphas, b, i) - targets[i];
            let ri = ei * targets[i];
            if (ri < -tol && alphas[i] < c) || (ri > tol && alphas[i] > 0.0) {
                // Pick j != i at random.
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alphas, b, j) - targets[j];
                let (ai_old, aj_old) = (alphas[i], alphas[j]);
                let (lo, hi) = if targets[i] != targets[j] {
                    ((aj_old - ai_old).max(0.0), (c + aj_old - ai_old).min(c))
                } else {
                    ((ai_old + aj_old - c).max(0.0), (ai_old + aj_old).min(c))
                };
                if hi - lo < 1e-12 {
                    continue;
                }
                let kii = kernel.eval(x.row(i), x.row(i));
                let kjj = kernel.eval(x.row(j), x.row(j));
                let kij = kernel.eval(x.row(i), x.row(j));
                let eta = 2.0 * kij - kii - kjj;
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - targets[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + targets[i] * targets[j] * (aj_old - aj);
                alphas[i] = ai;
                alphas[j] = aj;
                let b1 = b - ei
                    - targets[i] * (ai - ai_old) * kii
                    - targets[j] * (aj - aj_old) * kij;
                let b2 = b - ej
                    - targets[i] * (ai - ai_old) * kij
                    - targets[j] * (aj - aj_old) * kjj;
                b = if ai > 0.0 && ai < c {
                    b1
                } else if aj > 0.0 && aj < c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    let support_idx: Vec<usize> = alphas
        .iter()
        .enumerate()
        .filter(|(_, &a)| a > 1e-9)
        .map(|(i, _)| i)
        .collect();
    BinarySvm {
        alphas,
        bias: b,
        support_idx,
    }
}

/// Kernel SVM classifier (one-vs-rest for more than two classes).
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    /// Soft-margin penalty C.
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Consecutive clean passes before SMO stops.
    pub max_passes: usize,
    /// RNG seed for the SMO second-index heuristic.
    pub seed: u64,
    machines: Vec<BinarySvm>,
    x_train: Option<Matrix>,
    y_train: Vec<f64>,
    n_classes: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl SvmClassifier {
    /// Creates an untrained model.
    pub fn new(c: f64, kernel: Kernel, seed: u64) -> Self {
        SvmClassifier {
            c,
            kernel,
            tol: 1e-3,
            max_passes: 3,
            seed,
            machines: Vec::new(),
            x_train: None,
            y_train: Vec::new(),
            n_classes: 0,
            means: Vec::new(),
            stds: Vec::new(),
        }
    }

    /// Total number of support vectors across the one-vs-rest machines.
    pub fn n_support_vectors(&self) -> usize {
        self.machines.iter().map(|m| m.support_idx.len()).sum()
    }

    fn scale_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    fn decision(&self, x: &Matrix) -> Result<Matrix> {
        let xt = self.x_train.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != xt.cols() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                xt.cols(),
                x.cols()
            )));
        }
        let xs = self.scale_matrix(x);
        let mut out = Matrix::zeros(x.rows(), self.machines.len());
        for (c, machine) in self.machines.iter().enumerate() {
            for i in 0..xs.rows() {
                let mut s = machine.bias;
                for &j in &machine.support_idx {
                    let target = if self.y_train[j] as usize == c { 1.0 } else { -1.0 };
                    s += machine.alphas[j] * target * self.kernel.eval(xt.row(j), xs.row(i));
                }
                out.set(i, c, s);
            }
        }
        Ok(out)
    }
}

impl Estimator for SvmClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        self.n_classes = k;
        self.means = volcanoml_linalg::stats::column_means(x);
        self.stds = volcanoml_linalg::stats::column_stds(x)
            .into_iter()
            .map(|s| if s < 1e-9 { 1.0 } else { s })
            .collect();
        let xs = self.scale_matrix(x);

        // SMO is O(n²)-ish; cap the working set to keep worst-case cost
        // bounded inside AutoML loops.
        let cap = 600usize;
        let (x_work, y_work): (Matrix, Vec<f64>) = if xs.rows() > cap {
            let mut rng = rng_from_seed(self.seed ^ 0x5af3);
            let idx = volcanoml_data::rand_util::sample_without_replacement(&mut rng, xs.rows(), cap);
            (xs.select_rows(&idx), idx.iter().map(|&i| y[i]).collect())
        } else {
            (xs, y.to_vec())
        };

        self.machines = (0..k)
            .map(|c| {
                let targets: Vec<f64> = y_work
                    .iter()
                    .map(|&label| if label as usize == c { 1.0 } else { -1.0 })
                    .collect();
                train_binary(
                    &x_work,
                    &targets,
                    self.c,
                    self.kernel,
                    self.tol,
                    self.max_passes,
                    volcanoml_data::rand_util::derive_seed(self.seed, c as u64),
                )
            })
            .collect();
        self.x_train = Some(x_work);
        self.y_train = y_work;
        // x_train is already scaled; predict-time scaling uses means/stds,
        // so neutralize the stored scaling by keeping the scaled matrix and
        // the original scalers (decision() scales incoming x only).
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let dec = self.decision(x)?;
        if self.n_classes == 2 {
            // For binary, machine 1 (class 1 vs rest) suffices and is better
            // calibrated around 0; argmax over two OvR machines is equivalent
            // in the common case but this avoids ties.
            return Ok((0..dec.rows())
                .map(|i| if dec.get(i, 1) > dec.get(i, 0) { 1.0 } else { 0.0 })
                .collect());
        }
        Ok((0..dec.rows())
            .map(|i| volcanoml_linalg::stats::argmax(dec.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        // Softmax over margins (uncalibrated but monotone).
        let mut dec = self.decision(x)?;
        for i in 0..dec.rows() {
            let row = dec.row_mut(i);
            let max = row.iter().fold(f64::MIN, |m, &v| m.max(v));
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        Ok(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::accuracy;
    use volcanoml_data::synthetic::make_circles;

    #[test]
    fn kernel_evaluations() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(Kernel::Linear.eval(&a, &b), 0.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&a, &a) - 1.0).abs() < 1e-12);
        assert!((rbf.eval(&a, &b) - (-1.0f64).exp()).abs() < 1e-12);
        let poly = Kernel::Poly { gamma: 1.0, coef0: 1.0, degree: 2 };
        assert_eq!(poly.eval(&a, &b), 1.0);
    }

    #[test]
    fn linear_svm_separates_easy_binary() {
        let d = easy_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = SvmClassifier::new(1.0, Kernel::Linear, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn rbf_svm_solves_circles() {
        let d = make_circles(240, 0.05, 0.5, 1);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = SvmClassifier::new(5.0, Kernel::Rbf { gamma: 1.0 }, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn rbf_svm_solves_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = SvmClassifier::new(5.0, Kernel::Rbf { gamma: 2.0 }, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn multiclass_ovr() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = SvmClassifier::new(1.0, Kernel::Rbf { gamma: 0.5 }, 0);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn has_support_vectors_after_fit() {
        let d = easy_binary();
        let mut m = SvmClassifier::new(1.0, Kernel::Linear, 0);
        m.fit(&d.x, &d.y).unwrap();
        assert!(m.n_support_vectors() > 0);
    }

    #[test]
    fn unfitted_errors() {
        let m = SvmClassifier::new(1.0, Kernel::Linear, 0);
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn proba_normalized() {
        let d = easy_binary();
        let mut m = SvmClassifier::new(1.0, Kernel::Linear, 0);
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
