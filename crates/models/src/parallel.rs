//! Deterministic data parallelism over scoped threads (std-only).
//!
//! Ensemble fitting parallelizes over *independent, individually seeded*
//! work items (trees, per-class boosting stages, prediction row ranges).
//! Because every item derives its randomness from its own index — never
//! from a shared RNG stream — and results are reassembled in submission
//! order, the output is bit-identical for any `n_jobs`, including 1.

/// Maps `f` over `0..n`, splitting the range into at most `n_jobs`
/// contiguous chunks executed on scoped threads. Results come back in index
/// order; with `n_jobs <= 1` (or `n <= 1`) this is a plain serial map.
///
/// `f` must be pure with respect to the item index (no shared mutable
/// state), which is what guarantees thread-count-independent results.
pub fn parallel_map<T, F>(n_jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = n_jobs.max(1).min(n);
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(jobs);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(ci * chunk + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("parallel_map worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_any_job_count() {
        let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            assert_eq!(parallel_map(jobs, 23, |i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn jobs_larger_than_items_is_fine() {
        assert_eq!(parallel_map(16, 3, |i| i), vec![0, 1, 2]);
    }
}
