//! Deterministic data parallelism over scoped threads (std-only).
//!
//! Ensemble fitting parallelizes over *independent, individually seeded*
//! work items (trees, per-class boosting stages, prediction row ranges,
//! per-node feature chunks). Because every item derives its randomness from
//! its own index — never from a shared RNG stream — and results are
//! reassembled in submission order, the output is bit-identical for any
//! `n_jobs`, including 1.
//!
//! The requested job count is a *ceiling*, not a promise: it is clamped to
//! the machine's available hardware parallelism (overridable through the
//! `VOLCANOML_CPUS` env var) before any thread is spawned. On a 1-CPU box a
//! `n_jobs = 4` forest therefore takes the plain serial path — scoped-thread
//! spawns cost real time and buy nothing without cores to run on (this was
//! the `parallel_speedup: 0.97` regression in BENCH_models.json).

use std::sync::OnceLock;

/// Process-global counters over the parallel execution path. Relaxed
/// atomics: best-effort telemetry, also used by tests to assert that the
/// serial fast path really spawns nothing.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Scoped worker threads spawned by [`super::parallel_map`] so far.
    pub static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

    /// Threads spawned since process start.
    pub fn threads_spawned() -> u64 {
        THREADS_SPAWNED.load(Ordering::Relaxed)
    }
}

/// Hardware parallelism cap: `VOLCANOML_CPUS` if set (useful for benches and
/// tests), otherwise [`std::thread::available_parallelism`]. Cached after the
/// first call.
pub fn hardware_parallelism() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        if let Ok(v) = std::env::var("VOLCANOML_CPUS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Effective worker count for `n` items under `n_jobs` requested and `hw`
/// available cores: never more jobs than items or cores, never less than 1.
fn cap_jobs(n_jobs: usize, n: usize, hw: usize) -> usize {
    n_jobs.max(1).min(n.max(1)).min(hw.max(1))
}

/// Maps `f` over `0..n`, splitting the range into contiguous chunks executed
/// on scoped threads. Results come back in index order; with an effective
/// job count of 1 this is a plain serial map with zero thread spawns.
///
/// The effective job count is `min(n_jobs, n, hardware_parallelism())`, so
/// callers can pass their configured `n_jobs` unconditionally — tiny inputs
/// and single-core machines take the serial fast path automatically.
///
/// `f` must be pure with respect to the item index (no shared mutable
/// state), which is what guarantees thread-count-independent results.
pub fn parallel_map<T, F>(n_jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_capped(n_jobs, n, hardware_parallelism(), f)
}

/// [`parallel_map`] with an explicit hardware cap (testable core).
fn parallel_map_capped<T, F>(n_jobs: usize, n: usize, hw: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = cap_jobs(n_jobs, n, hw);
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(jobs);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            stats::THREADS_SPAWNED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            scope.spawn(move || {
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(ci * chunk + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("parallel_map worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_any_job_count() {
        let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            assert_eq!(parallel_map(jobs, 23, |i| i * i), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn jobs_larger_than_items_is_fine() {
        assert_eq!(parallel_map(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn job_cap_respects_items_cores_and_floor() {
        assert_eq!(cap_jobs(4, 40, 1), 1, "1-CPU box must stay serial");
        assert_eq!(cap_jobs(4, 40, 2), 2);
        assert_eq!(cap_jobs(4, 2, 8), 2, "never more jobs than items");
        assert_eq!(cap_jobs(0, 10, 8), 1);
        assert_eq!(cap_jobs(3, 0, 8), 1);
    }

    #[test]
    fn serial_path_spawns_zero_threads() {
        // n_jobs = 1: serial regardless of the machine.
        let before = stats::threads_spawned();
        let out = parallel_map(1, 100, |i| i + 1);
        assert_eq!(out.len(), 100);
        assert_eq!(
            stats::threads_spawned(),
            before,
            "n_jobs=1 must not spawn threads"
        );
    }

    #[test]
    fn single_core_cap_spawns_zero_threads() {
        // The BENCH_models.json regression: 40 trees, n_jobs=4, 1 CPU. The
        // hardware clamp must take the serial path without a single spawn.
        let before = stats::threads_spawned();
        let expect: Vec<usize> = (0..40).map(|i| i * 3).collect();
        assert_eq!(parallel_map_capped(4, 40, 1, |i| i * 3), expect);
        assert_eq!(
            stats::threads_spawned(),
            before,
            "hw=1 must not spawn threads"
        );
    }

    #[test]
    fn parallel_path_counts_spawns() {
        let before = stats::threads_spawned();
        let expect: Vec<usize> = (0..8).collect();
        assert_eq!(parallel_map_capped(2, 8, 4, |i| i), expect);
        assert_eq!(stats::threads_spawned(), before + 2);
    }
}
