//! CART decision trees (classification and regression).
//!
//! A single implementation handles both tasks: leaves store a value vector —
//! a class-probability histogram for classification, a single mean for
//! regression. Splits are exact (sort-based scan) by default; the
//! [`SplitStrategy::Random`] mode draws thresholds uniformly at random
//! (extra-trees style), which the forest module uses for `ExtraTrees`; the
//! [`SplitStrategy::Histogram`] mode scans per-node bin histograms over a
//! [`BinnedMatrix`] (LightGBM-style) instead of re-sorting, with
//! parent-minus-sibling histogram subtraction and index-range node
//! partitioning. Ensembles bin once and call [`Tree::fit_binned`] per tree.

use crate::binned::{BinCode, BinnedMatrix, CodesRef};
use crate::parallel::parallel_map;
use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use rand::rngs::StdRng;
use rand::RngExt;
use std::cell::RefCell;
use volcanoml_data::rand_util::{rng_from_seed, sample_without_replacement};
use volcanoml_linalg::Matrix;

/// Impurity criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Sum of squared errors (regression).
    Mse,
}

/// How many features to consider per split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// ⌈√d⌉ random features (random-forest default for classification).
    Sqrt,
    /// ⌈log₂ d⌉ random features.
    Log2,
    /// A fixed fraction of features (clamped to at least one).
    Fraction(f64),
}

impl MaxFeatures {
    fn resolve(&self, d: usize) -> usize {
        let m = match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (d as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Fraction(f) => (d as f64 * f).ceil() as usize,
        };
        m.clamp(1, d)
    }
}

/// Threshold-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Exact best split via sorted scan.
    Best,
    /// One uniformly random threshold per candidate feature (extra-trees).
    Random,
    /// Best split over quantile-binned feature values (histogram scan).
    /// Equivalent to `Best` whenever every feature has at most
    /// [`TreeConfig::max_bins`] distinct values; much faster on large data.
    Histogram,
}

/// Histogram-kernel variant. [`HistKernel::Flat`] is the fast default:
/// node-major contiguous arenas, fused per-row statistics, pooled slabs.
/// [`HistKernel::PerNode`] keeps the PR 2 per-feature-vector kernel as a
/// bitwise-equivalence oracle for tests and as the bench baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistKernel {
    /// Flat node-major arena, fused accumulation (default).
    #[default]
    Flat,
    /// Legacy per-node `Vec<Vec<f64>>` histograms (test/bench oracle).
    PerNode,
}

/// Tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Impurity criterion; must match the task.
    pub criterion: Criterion,
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Threshold strategy.
    pub split_strategy: SplitStrategy,
    /// Bins per feature for [`SplitStrategy::Histogram`] (ignored otherwise).
    pub max_bins: usize,
    /// Worker threads for feature-parallel histogram accumulation inside a
    /// single tree (ignored outside histogram mode). Features are split
    /// into contiguous chunks and the partial arenas merged in feature
    /// order, so fits are bit-identical for any value. Ensembles that
    /// already parallelize across trees should leave this at 1.
    pub hist_n_jobs: usize,
    /// Histogram-kernel variant (leave at the default outside benches).
    pub hist_kernel: HistKernel,
    /// RNG seed (feature subsets / random thresholds).
    pub seed: u64,
}

impl TreeConfig {
    /// Sensible classification defaults.
    pub fn classification() -> Self {
        TreeConfig {
            criterion: Criterion::Gini,
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            split_strategy: SplitStrategy::Best,
            max_bins: crate::binned::DEFAULT_MAX_BINS,
            hist_n_jobs: 1,
            hist_kernel: HistKernel::Flat,
            seed: 0,
        }
    }

    /// Sensible regression defaults.
    pub fn regression() -> Self {
        TreeConfig {
            criterion: Criterion::Mse,
            ..TreeConfig::classification()
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// `usize::MAX` marks a leaf.
    feature: usize,
    threshold: f64,
    left: usize,
    right: usize,
    /// Class histogram (classification) or `[mean]` (regression).
    value: Vec<f64>,
}

/// A fitted CART tree. Usually constructed through
/// [`DecisionTreeClassifier`] / [`DecisionTreeRegressor`], or internally by
/// ensembles.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    n_outputs: usize,
    n_features: usize,
}

impl Tree {
    /// Fits a tree on `(x, y)` with optional per-sample weights.
    ///
    /// For classification, `n_outputs` is the class count and `y` holds
    /// class indices; for regression pass `n_outputs = 1`.
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        weights: Option<&[f64]>,
        n_outputs: usize,
        config: &TreeConfig,
    ) -> Result<Tree> {
        check_fit_inputs(x, y)?;
        if let Some(w) = weights {
            if w.len() != y.len() {
                return Err(ModelError::Invalid(format!(
                    "{} weights for {} samples",
                    w.len(),
                    y.len()
                )));
            }
        }
        if config.split_strategy == SplitStrategy::Histogram {
            let bm = BinnedMatrix::from_matrix(x, config.max_bins);
            return Tree::fit_binned(&bm, y, weights, n_outputs, config);
        }
        let mut builder = Builder {
            x,
            y,
            weights,
            n_outputs,
            config,
            nodes: Vec::new(),
            rng: rng_from_seed(config.seed),
        };
        // Zero-weight rows carry no signal and would distort count-based
        // stopping rules (min_samples_*), so they never enter the root.
        let indices: Vec<usize> = match weights {
            Some(w) => (0..x.rows()).filter(|&i| w[i] > 0.0).collect(),
            None => (0..x.rows()).collect(),
        };
        if indices.is_empty() {
            return Err(ModelError::Invalid("all sample weights are zero".into()));
        }
        builder.build(&indices, 0);
        Ok(Tree {
            nodes: builder.nodes,
            n_outputs,
            n_features: x.cols(),
        })
    }

    /// Fits a tree on an already-binned dataset (histogram splits).
    ///
    /// This is the fast path ensembles use: bin once with
    /// [`BinnedMatrix::from_matrix`], then fit every tree against the shared
    /// binned layout. Thresholds are mapped back to raw feature space, so
    /// the fitted tree predicts on raw rows. The `split_strategy` field of
    /// `config` is ignored (this entry point is always histogram-mode);
    /// `max_features`, seeding, and stopping rules behave exactly as in
    /// [`Tree::fit`].
    pub fn fit_binned(
        bm: &BinnedMatrix,
        y: &[f64],
        weights: Option<&[f64]>,
        n_outputs: usize,
        config: &TreeConfig,
    ) -> Result<Tree> {
        let n = bm.n_rows();
        if n == 0 || bm.n_features() == 0 {
            return Err(ModelError::Invalid("empty binned training set".into()));
        }
        if y.len() != n {
            return Err(ModelError::Invalid(format!(
                "{} rows but {} targets",
                n,
                y.len()
            )));
        }
        if let Some(w) = weights {
            if w.len() != n {
                return Err(ModelError::Invalid(format!(
                    "{} weights for {} samples",
                    w.len(),
                    n
                )));
            }
        }
        let idx: Vec<u32> = match weights {
            Some(w) => (0..n).filter(|&i| w[i] > 0.0).map(|i| i as u32).collect(),
            None => (0..n).map(|i| i as u32).collect(),
        };
        if idx.is_empty() {
            return Err(ModelError::Invalid("all sample weights are zero".into()));
        }
        // Monomorphize the hot kernels on the stored code width.
        match bm.codes() {
            CodesRef::U8(codes) => fit_binned_codes(bm, codes, idx, y, weights, n_outputs, config),
            CodesRef::U16(codes) => fit_binned_codes(bm, codes, idx, y, weights, n_outputs, config),
        }
    }

    /// Returns the leaf value vector for one sample.
    pub fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            if n.feature == usize::MAX {
                return &n.value;
            }
            node = if row[n.feature] <= n.threshold {
                n.left
            } else {
                n.right
            };
        }
    }

    /// Returns the leaf value vector for one `f32`-storage sample. Split
    /// thresholds are `f64`; the comparison widens each visited feature, so
    /// only the raw-matrix read traffic is halved, not the decision logic.
    pub fn predict_row_f32(&self, row: &[f32]) -> &[f64] {
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            if n.feature == usize::MAX {
                return &n.value;
            }
            node = if (row[n.feature] as f64) <= n.threshold {
                n.left
            } else {
                n.right
            };
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf values per node (classes or 1).
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Feature count the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            let n = &nodes[i];
            if n.feature == usize::MAX {
                0
            } else {
                1 + walk(nodes, n.left).max(walk(nodes, n.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    weights: Option<&'a [f64]>,
    n_outputs: usize,
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    rng: StdRng,
}

impl Builder<'_> {
    fn weight(&self, i: usize) -> f64 {
        self.weights.map_or(1.0, |w| w[i])
    }

    /// Leaf value: normalized class histogram or weighted mean.
    fn leaf_value(&self, indices: &[usize]) -> Vec<f64> {
        if self.config.criterion == Criterion::Mse {
            let mut sum = 0.0;
            let mut wsum = 0.0;
            for &i in indices {
                let w = self.weight(i);
                sum += w * self.y[i];
                wsum += w;
            }
            vec![if wsum > 0.0 { sum / wsum } else { 0.0 }]
        } else {
            let mut hist = vec![0.0; self.n_outputs];
            let mut wsum = 0.0;
            for &i in indices {
                let w = self.weight(i);
                hist[self.y[i] as usize] += w;
                wsum += w;
            }
            if wsum > 0.0 {
                for h in &mut hist {
                    *h /= wsum;
                }
            }
            hist
        }
    }

    fn impurity_from_stats(&self, hist: &[f64], wsum: f64, sum: f64, sum_sq: f64) -> f64 {
        match self.config.criterion {
            Criterion::Gini => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut g = 1.0;
                for &h in hist {
                    let p = h / wsum;
                    g -= p * p;
                }
                g
            }
            Criterion::Entropy => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut e = 0.0;
                for &h in hist {
                    if h > 0.0 {
                        let p = h / wsum;
                        e -= p * p.log2();
                    }
                }
                e
            }
            Criterion::Mse => {
                if wsum <= 0.0 {
                    0.0
                } else {
                    sum_sq / wsum - (sum / wsum) * (sum / wsum)
                }
            }
        }
    }

    fn is_pure(&self, indices: &[usize]) -> bool {
        let first = self.y[indices[0]];
        indices.iter().all(|&i| (self.y[i] - first).abs() < 1e-12)
    }

    /// Builds the subtree for `indices`, returning the node id.
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let make_leaf = |b: &mut Builder, idx: &[usize]| -> usize {
            let value = b.leaf_value(idx);
            b.nodes.push(Node {
                feature: usize::MAX,
                threshold: 0.0,
                left: 0,
                right: 0,
                value,
            });
            b.nodes.len() - 1
        };

        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || indices.len() < 2 * self.config.min_samples_leaf
            || self.is_pure(indices)
        {
            return make_leaf(self, indices);
        }

        let d = self.x.cols();
        let n_candidates = self.config.max_features.resolve(d);
        let features: Vec<usize> = if n_candidates == d {
            (0..d).collect()
        } else {
            sample_without_replacement(&mut self.rng, d, n_candidates)
        };

        let best = match self.config.split_strategy {
            // Histogram configs are routed to `fit_binned` before this
            // builder runs; the exact scan is the equivalent fallback.
            SplitStrategy::Best | SplitStrategy::Histogram => self.best_split(indices, &features),
            SplitStrategy::Random => self.random_split(indices, &features),
        };

        let Some((feature, threshold)) = best else {
            return make_leaf(self, indices);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.x.get(i, feature) <= threshold);
        if left_idx.len() < self.config.min_samples_leaf
            || right_idx.len() < self.config.min_samples_leaf
        {
            return make_leaf(self, indices);
        }

        // Reserve this node's slot before recursing so child ids are stable.
        let value = self.leaf_value(indices);
        let me = self.nodes.len();
        self.nodes.push(Node {
            feature,
            threshold,
            left: 0,
            right: 0,
            value,
        });
        let left = self.build(&left_idx, depth + 1);
        let right = self.build(&right_idx, depth + 1);
        self.nodes[me].left = left;
        self.nodes[me].right = right;
        me
    }

    /// Exact best split across candidate features (sorted scan).
    fn best_split(&mut self, indices: &[usize], features: &[usize]) -> Option<(usize, f64)> {
        let min_leaf = self.config.min_samples_leaf;
        let is_mse = self.config.criterion == Criterion::Mse;
        let k = if is_mse { 0 } else { self.n_outputs };

        // Parent statistics.
        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        for &i in indices {
            let w = self.weight(i);
            total_w += w;
            if is_mse {
                total_sum += w * self.y[i];
                total_sq += w * self.y[i] * self.y[i];
            } else {
                total_hist[self.y[i] as usize] += w;
            }
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted: Vec<usize> = Vec::with_capacity(indices.len());
        for &f in features {
            sorted.clear();
            sorted.extend_from_slice(indices);
            sorted.sort_by(|&a, &b| self.x.get(a, f).total_cmp(&self.x.get(b, f)));
            let mut left_hist = vec![0.0; k];
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            for pos in 0..sorted.len() - 1 {
                let i = sorted[pos];
                let w = self.weight(i);
                lw += w;
                if is_mse {
                    lsum += w * self.y[i];
                    lsq += w * self.y[i] * self.y[i];
                } else {
                    left_hist[self.y[i] as usize] += w;
                }
                let n_left = pos + 1;
                let n_right = sorted.len() - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let a = self.x.get(i, f);
                let b = self.x.get(sorted[pos + 1], f);
                if b - a < 1e-12 {
                    continue; // no threshold separates identical values
                }
                let rw = total_w - lw;
                let (left_imp, right_imp) = if is_mse {
                    (
                        self.impurity_from_stats(&[], lw, lsum, lsq),
                        self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                    )
                } else {
                    let right_hist: Vec<f64> = total_hist
                        .iter()
                        .zip(left_hist.iter())
                        .map(|(t, l)| t - l)
                        .collect();
                    (
                        self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                        self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                    )
                };
                let weighted = (lw * left_imp + rw * right_imp) / total_w;
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, (a + b) / 2.0, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    /// Extra-trees split: one random threshold per feature, pick the best.
    fn random_split(&mut self, indices: &[usize], features: &[usize]) -> Option<(usize, f64)> {
        let is_mse = self.config.criterion == Criterion::Mse;
        let k = if is_mse { 0 } else { self.n_outputs };
        let min_leaf = self.config.min_samples_leaf;

        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        for &i in indices {
            let w = self.weight(i);
            total_w += w;
            if is_mse {
                total_sum += w * self.y[i];
                total_sq += w * self.y[i] * self.y[i];
            } else {
                total_hist[self.y[i] as usize] += w;
            }
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in features {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in indices {
                let v = self.x.get(i, f);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < 1e-12 {
                continue;
            }
            let threshold = lo + self.rng.random::<f64>() * (hi - lo);
            let mut left_hist = vec![0.0; k];
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            let mut n_left = 0usize;
            for &i in indices {
                if self.x.get(i, f) <= threshold {
                    let w = self.weight(i);
                    n_left += 1;
                    lw += w;
                    if is_mse {
                        lsum += w * self.y[i];
                        lsq += w * self.y[i] * self.y[i];
                    } else {
                        left_hist[self.y[i] as usize] += w;
                    }
                }
            }
            let n_right = indices.len() - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let rw = total_w - lw;
            let (left_imp, right_imp) = if is_mse {
                (
                    self.impurity_from_stats(&[], lw, lsum, lsq),
                    self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                )
            } else {
                let right_hist: Vec<f64> = total_hist
                    .iter()
                    .zip(left_hist.iter())
                    .map(|(t, l)| t - l)
                    .collect();
                (
                    self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                    self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                )
            };
            let weighted = (lw * left_imp + rw * right_imp) / total_w;
            let gain = parent_impurity - weighted;
            if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                best = Some((f, threshold, gain));
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

/// Channel count of regression histograms: `[wsum, w·y, w·y², count]`.
const REG_CHANNELS: usize = 4;

/// Minimum `node rows × candidate features` before a feature-parallel
/// histogram fill can pay for its scoped-thread spawns; smaller nodes stay
/// on the serial fill even when `hist_n_jobs > 1`.
const FEATURE_PARALLEL_MIN_CELLS: usize = 8192;

/// Cap on retired slabs kept per thread. Slabs are `total candidate bins ×
/// channels` floats, so a handful per worker covers the deepest recursion
/// without pinning unbounded memory after a wide ensemble fit.
const SLAB_POOL_CAP: usize = 64;

/// Largest node (rows) whose flat-kernel fill tracks touched bins. A node
/// this small populates at most `rows` of a feature's ≤ 255 bins, so split
/// search and slab retirement walk the short touched list instead of every
/// bin — the dominant per-node cost for the thousands of small nodes a
/// deep tree visits. Larger nodes touch most bins anyway and skip the
/// tracking branch.
const TRACKED_MAX_ROWS: usize = 256;

/// Bins per feature region in the flat u8 kernel's padded slab layout.
/// Every feature gets a fixed `PAD_BINS × channels` region regardless of
/// its real bin count, so the fill loops can view a region as a
/// `[[f64; CH]; PAD_BINS]` array: a u8 bin code masked to `PAD_BINS - 1`
/// provably fits, and the bounds checks (and per-access slice arithmetic)
/// disappear. Pad cells are never written (u8 codes bin below `PAD_BINS`)
/// and never read (scans walk a feature's real bins only), so they stay
/// zero and the padding is bitwise neutral.
const PAD_BINS: usize = 256;

/// Views a padded feature region as a fixed-size array of bin cells — the
/// shape that lets the fill loop's indexing compile without bounds checks.
fn fixed_region<const CH: usize>(region: &mut [f64]) -> &mut [[f64; CH]; PAD_BINS] {
    let (cells, rest) = region.as_chunks_mut::<CH>();
    debug_assert!(rest.is_empty());
    cells.try_into().expect("padded region is PAD_BINS cells")
}

/// One padded feature region's touched-bin set as a bitmap — cheaper to
/// maintain than a sorted list (an idempotent OR per row, no 0 → 1 test,
/// no sort) and iterated in the same ascending bin order.
type TouchedBits = [u64; PAD_BINS / 64];

/// Calls `f` for each set bit, in ascending order.
fn for_each_bit(bits: &TouchedBits, mut f: impl FnMut(usize)) {
    for (wi, &word) in bits.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            f(wi * 64 + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// Which touched-bin representation the current node's tracked fill
/// produced (consumed by `scan_split` and `retire_slab`, invalidated when
/// slabs are donated through the subtraction trick).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tracked {
    /// Untracked fill (large node, feature-parallel, or PerNode).
    None,
    /// Sorted `Vec<u32>` lists (generic layouts).
    Lists,
    /// [`TouchedBits`] bitmaps (padded u8 layout, fixed channel count).
    Bits,
}

thread_local! {
    /// Retired flat histogram slabs, reused across nodes and across every
    /// tree an ensemble fits on this worker thread. The tree visits
    /// thousands of small nodes; without pooling, per-node arena
    /// allocation dominates deep-tree fit time.
    static SLAB_POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// A zeroed histogram slab of `len` floats, from the pool when possible.
fn take_slab(len: usize) -> Vec<f64> {
    let pooled = SLAB_POOL.with(|p| p.borrow_mut().pop());
    match pooled {
        Some(mut slab) => {
            crate::binned::stats::ARENA_REUSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Pooled slabs are all-zero (the `put_slab` invariant), so no
            // clearing pass: shrinking truncates a zeroed prefix, growing
            // appends zeros. This is where deep trees win — a full memset
            // of a ~255-bin slab dwarfs the fill cost of a small node.
            slab.resize(len, 0.0);
            slab
        }
        None => vec![0.0; len],
    }
}

/// Retires a slab into the thread-local pool.
///
/// Invariant: `slab` must be all-zero — `take_slab` skips the clearing
/// memset and hands pooled slabs straight to the fill loop. Retiring nodes
/// restore the invariant by zeroing exactly the cells they touched
/// ([`HistBuilder::retire_slab`]), which for a small node is far cheaper
/// than clearing the whole arena.
fn put_slab(slab: Vec<f64>) {
    if slab.capacity() == 0 {
        return;
    }
    debug_assert!(slab.iter().all(|&v| v == 0.0), "pooled slab not zeroed");
    SLAB_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < SLAB_POOL_CAP {
            pool.push(slab);
        }
    });
}

/// Everything one flat histogram fill pass reads, bundled so the
/// feature-parallel workers can share it without borrowing the builder
/// (whose RNG and node vector must stay on the fitting thread).
///
/// The fused per-row statistics are the bandwidth trick: weights and the
/// `w·y` / `w·y²` products are computed once per tree instead of once per
/// `(row, feature)` pair per node, so the fill loop is pure reads + adds.
struct FillCtx<'a, C: BinCode> {
    bm: &'a BinnedMatrix,
    codes: &'a [C],
    /// The node's rows (`idx[start..end]` of the builder).
    rows: &'a [u32],
    channels: usize,
    is_mse: bool,
    /// Per-row weight (`1.0` when unweighted).
    row_w: &'a [f64],
    /// Per-row `w·y` (regression only).
    row_wy: &'a [f64],
    /// Per-row `(w·y)·y` — left-associated to match the unfused kernel's
    /// `w * y[i] * y[i]` bit for bit (regression only).
    row_wyy: &'a [f64],
    /// Per-row class index (classification only).
    row_cls: &'a [u32],
    /// Padded slab layout (`PAD_BINS` bins per feature region) — set for
    /// the flat kernel over u8 codes, where it enables the fixed-array
    /// fill paths.
    pad: bool,
}

impl<C: BinCode> FillCtx<'_, C> {
    /// Region width (floats) of feature `f` under the active layout.
    fn width(&self, f: usize) -> usize {
        if self.pad {
            PAD_BINS * self.channels
        } else {
            self.bm.n_bins(f) * self.channels
        }
    }

    /// Slab length (floats) for a candidate feature list.
    fn slab_len(&self, features: &[usize]) -> usize {
        features.iter().map(|&f| self.width(f)).sum()
    }

    /// Fills `slab` — features laid out in order, `n_bins(f) × channels`
    /// apiece — from the node's rows. Accumulation per feature touches only
    /// that feature's bins, which is what makes the feature-parallel path
    /// bitwise identical to this serial walk.
    ///
    /// Features are processed in pairs sharing one pass over the rows: the
    /// row index and its fused statistics are loaded once and feed two
    /// independent histogram regions, halving the sequential-read traffic
    /// and giving the FPU two dependency chains. Per-feature accumulation
    /// order is still row order, so the slab is bitwise identical to a
    /// feature-at-a-time walk.
    fn fill(&self, features: &[usize], slab: &mut [f64]) {
        if self.pad {
            match self.channels {
                3 => return self.fill_fixed::<3>(features, slab),
                4 => return self.fill_fixed::<4>(features, slab),
                _ => {}
            }
        }
        let ch = self.channels;
        let n = self.bm.n_rows();
        let mut off = 0usize;
        let mut pairs = features.chunks_exact(2);
        for pair in pairs.by_ref() {
            let col0 = &self.codes[pair[0] * n..(pair[0] + 1) * n];
            let col1 = &self.codes[pair[1] * n..(pair[1] + 1) * n];
            let w0 = self.width(pair[0]);
            let w1 = self.width(pair[1]);
            let (h0, rest) = slab[off..].split_at_mut(w0);
            let h1 = &mut rest[..w1];
            if self.is_mse {
                for &i in self.rows {
                    let i = i as usize;
                    let b0 = col0[i].bin() * ch;
                    let b1 = col1[i].bin() * ch;
                    let (w, wy, wyy) = (self.row_w[i], self.row_wy[i], self.row_wyy[i]);
                    h0[b0] += w;
                    h0[b0 + 1] += wy;
                    h0[b0 + 2] += wyy;
                    h0[b0 + 3] += 1.0;
                    h1[b1] += w;
                    h1[b1 + 1] += wy;
                    h1[b1 + 2] += wyy;
                    h1[b1 + 3] += 1.0;
                }
            } else {
                for &i in self.rows {
                    let i = i as usize;
                    let b0 = col0[i].bin() * ch;
                    let b1 = col1[i].bin() * ch;
                    let (w, c) = (self.row_w[i], self.row_cls[i] as usize);
                    h0[b0 + c] += w;
                    h0[b0 + ch - 1] += 1.0;
                    h1[b1 + c] += w;
                    h1[b1 + ch - 1] += 1.0;
                }
            }
            off += w0 + w1;
        }
        for &f in pairs.remainder() {
            let col = &self.codes[f * n..(f + 1) * n];
            let width = self.width(f);
            let h = &mut slab[off..off + width];
            if self.is_mse {
                for &i in self.rows {
                    let i = i as usize;
                    let base = col[i].bin() * ch;
                    h[base] += self.row_w[i];
                    h[base + 1] += self.row_wy[i];
                    h[base + 2] += self.row_wyy[i];
                    h[base + 3] += 1.0;
                }
            } else {
                for &i in self.rows {
                    let i = i as usize;
                    let base = col[i].bin() * ch;
                    h[base + self.row_cls[i] as usize] += self.row_w[i];
                    h[base + ch - 1] += 1.0;
                }
            }
            off += width;
        }
    }

    /// [`FillCtx::fill`] for the padded u8 layout with a compile-time
    /// channel count: every region is a `[[f64; CH]; PAD_BINS]` array and
    /// every index is provably in range (bins masked to `PAD_BINS - 1` —
    /// a no-op for u8 codes — and the class channel clamped to its
    /// `CH - 2` maximum), so the accumulation loop is pure loads and adds.
    /// Same adds in the same order as the generic walk, bitwise identical.
    fn fill_fixed<const CH: usize>(&self, features: &[usize], slab: &mut [f64]) {
        debug_assert_eq!(self.channels, CH);
        let n = self.bm.n_rows();
        let mut off = 0usize;
        let mut pairs = features.chunks_exact(2);
        for pair in pairs.by_ref() {
            let col0 = &self.codes[pair[0] * n..(pair[0] + 1) * n];
            let col1 = &self.codes[pair[1] * n..(pair[1] + 1) * n];
            let (r0, rest) = slab[off..].split_at_mut(PAD_BINS * CH);
            let h0 = fixed_region::<CH>(r0);
            let h1 = fixed_region::<CH>(&mut rest[..PAD_BINS * CH]);
            if self.is_mse {
                for &i in self.rows {
                    let i = i as usize;
                    let b0 = col0[i].bin() & (PAD_BINS - 1);
                    let b1 = col1[i].bin() & (PAD_BINS - 1);
                    let (w, wy, wyy) = (self.row_w[i], self.row_wy[i], self.row_wyy[i]);
                    let c0 = &mut h0[b0];
                    c0[0] += w;
                    c0[1] += wy;
                    c0[2] += wyy;
                    c0[CH - 1] += 1.0;
                    let c1 = &mut h1[b1];
                    c1[0] += w;
                    c1[1] += wy;
                    c1[2] += wyy;
                    c1[CH - 1] += 1.0;
                }
            } else {
                for &i in self.rows {
                    let i = i as usize;
                    let b0 = col0[i].bin() & (PAD_BINS - 1);
                    let b1 = col1[i].bin() & (PAD_BINS - 1);
                    let (w, c) = (self.row_w[i], (self.row_cls[i] as usize).min(CH - 2));
                    let c0 = &mut h0[b0];
                    c0[c] += w;
                    c0[CH - 1] += 1.0;
                    let c1 = &mut h1[b1];
                    c1[c] += w;
                    c1[CH - 1] += 1.0;
                }
            }
            off += 2 * PAD_BINS * CH;
        }
        for &f in pairs.remainder() {
            let col = &self.codes[f * n..(f + 1) * n];
            let h = fixed_region::<CH>(&mut slab[off..off + PAD_BINS * CH]);
            if self.is_mse {
                for &i in self.rows {
                    let i = i as usize;
                    let cell = &mut h[col[i].bin() & (PAD_BINS - 1)];
                    cell[0] += self.row_w[i];
                    cell[1] += self.row_wy[i];
                    cell[2] += self.row_wyy[i];
                    cell[CH - 1] += 1.0;
                }
            } else {
                for &i in self.rows {
                    let i = i as usize;
                    let cell = &mut h[col[i].bin() & (PAD_BINS - 1)];
                    cell[(self.row_cls[i] as usize).min(CH - 2)] += self.row_w[i];
                    cell[CH - 1] += 1.0;
                }
            }
            off += PAD_BINS * CH;
        }
    }

    /// [`FillCtx::fill`] plus touched-bin tracking: each feature's list in
    /// `touched` receives the bins this node actually populated (pushed on
    /// the count channel's 0 → 1 transition, then sorted ascending). Small
    /// nodes touch a handful of a feature's ≤ 255 bins, and the lists let
    /// split search and slab retirement walk only those cells instead of
    /// the whole arena. Accumulation arithmetic is untouched, so the slab
    /// is bitwise identical to the untracked fill's.
    fn fill_tracked(&self, features: &[usize], slab: &mut [f64], touched: &mut [Vec<u32>]) {
        let ch = self.channels;
        let n = self.bm.n_rows();
        let mut off = 0usize;
        for (fi, &f) in features.iter().enumerate() {
            let col = &self.codes[f * n..(f + 1) * n];
            let width = self.width(f);
            let h = &mut slab[off..off + width];
            let list = &mut touched[fi];
            list.clear();
            for &i in self.rows {
                let i = i as usize;
                let bin = col[i].bin();
                let base = bin * ch;
                if h[base + ch - 1] == 0.0 {
                    list.push(bin as u32);
                }
                if self.is_mse {
                    h[base] += self.row_w[i];
                    h[base + 1] += self.row_wy[i];
                    h[base + 2] += self.row_wyy[i];
                    h[base + 3] += 1.0;
                } else {
                    h[base + self.row_cls[i] as usize] += self.row_w[i];
                    h[base + ch - 1] += 1.0;
                }
            }
            list.sort_unstable();
            off += width;
        }
    }

    /// [`FillCtx::fill_tracked`] on the padded fixed-array layout — the
    /// same bounds-check-free accumulation as [`FillCtx::fill_fixed`],
    /// with each touched bin recorded by an idempotent OR into a
    /// [`TouchedBits`] bitmap (no per-row 0 → 1 test, no sort; iteration
    /// is ascending either way).
    fn fill_tracked_fixed<const CH: usize>(
        &self,
        features: &[usize],
        slab: &mut [f64],
        touched: &mut [TouchedBits],
    ) {
        debug_assert_eq!(self.channels, CH);
        let n = self.bm.n_rows();
        let mut off = 0usize;
        for (fi, &f) in features.iter().enumerate() {
            let col = &self.codes[f * n..(f + 1) * n];
            let h = fixed_region::<CH>(&mut slab[off..off + PAD_BINS * CH]);
            let bits = &mut touched[fi];
            *bits = [0; PAD_BINS / 64];
            for &i in self.rows {
                let i = i as usize;
                let bin = col[i].bin() & (PAD_BINS - 1);
                bits[bin >> 6] |= 1u64 << (bin & 63);
                let cell = &mut h[bin];
                if self.is_mse {
                    cell[0] += self.row_w[i];
                    cell[1] += self.row_wy[i];
                    cell[2] += self.row_wyy[i];
                    cell[CH - 1] += 1.0;
                } else {
                    cell[(self.row_cls[i] as usize).min(CH - 2)] += self.row_w[i];
                    cell[CH - 1] += 1.0;
                }
            }
            off += PAD_BINS * CH;
        }
    }
}

/// Histogram-mode tree builder, monomorphized on the bin-code width `C`
/// (`u8` for ≤ 256 bins, `u16` beyond) so the hot loops never branch on
/// storage width.
///
/// Rows live in a single shared index buffer (`idx`); each node owns the
/// contiguous range `idx[start..end]` and splitting stably partitions that
/// range in place (via `scratch`), so no per-node index vectors are
/// allocated. A node's histograms are one flat node-major slab — candidate
/// features in order, `n_bins(f) × channels` floats apiece — taken from a
/// thread-local pool and walked with running offsets. Classification bins
/// carry per-class weight sums plus a row count, regression bins carry
/// `[wsum, w·y, w·y², count]`, with the per-row products fused into arrays
/// computed once per tree. When both children can still split and the
/// candidate set is all features, only the smaller child's slab is built
/// from data — the larger child's is the parent's minus the smaller's
/// (LightGBM's subtraction trick), a single vectorizable pass on flat
/// storage.
struct HistBuilder<'a, C: BinCode> {
    bm: &'a BinnedMatrix,
    codes: &'a [C],
    y: &'a [f64],
    weights: Option<&'a [f64]>,
    n_outputs: usize,
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    rng: StdRng,
    idx: Vec<u32>,
    scratch: Vec<u32>,
    channels: usize,
    /// Fused per-row statistics (empty under [`HistKernel::PerNode`], which
    /// recomputes them per access exactly as the PR 2 kernel did).
    row_w: Vec<f64>,
    row_wy: Vec<f64>,
    row_wyy: Vec<f64>,
    row_cls: Vec<u32>,
    /// [`HistKernel::PerNode`]'s builder-local slab pool, mirroring the
    /// PR 2 kernel's recycling so the bench baseline keeps its real costs.
    local_pool: Vec<Vec<f64>>,
    /// Per-candidate-feature touched-bin sets for the current node (flat
    /// kernel, nodes of ≤ [`TRACKED_MAX_ROWS`] rows) — bitmaps on the
    /// padded u8 layout, sorted lists otherwise. Valid only between a
    /// tracked `build_hists` and the node's `scan_split`/`retire_slab`;
    /// donated (subtraction-trick) slabs never consult them.
    touched: Vec<Vec<u32>>,
    touched_bits: Vec<TouchedBits>,
    tracked: Tracked,
    /// Padded slab layout — flat kernel over u8 codes (see [`PAD_BINS`]).
    pad: bool,
}

impl<C: BinCode> HistBuilder<'_, C> {
    fn weight(&self, i: usize) -> f64 {
        self.weights.map_or(1.0, |w| w[i])
    }

    /// Slab region width (floats) of feature `f` under the active
    /// kernel's layout — `PAD_BINS` bins for the padded flat u8 layout,
    /// the feature's real bin count otherwise (PerNode, u16 codes).
    fn width(&self, f: usize) -> usize {
        if self.pad {
            PAD_BINS * self.channels
        } else {
            self.bm.n_bins(f) * self.channels
        }
    }

    fn is_mse(&self) -> bool {
        self.config.criterion == Criterion::Mse
    }

    fn leaf_value(&self, start: usize, end: usize) -> Vec<f64> {
        // The flat kernel's fused per-row arrays serve here too: `row_wy`
        // holds exactly the `w * y` product and `row_cls` the class cast,
        // so node values come out bitwise identical to the per-access
        // walk the PerNode oracle keeps.
        let fused = !self.row_w.is_empty();
        if self.is_mse() {
            let mut sum = 0.0;
            let mut wsum = 0.0;
            if fused {
                for &i in &self.idx[start..end] {
                    sum += self.row_wy[i as usize];
                    wsum += self.row_w[i as usize];
                }
            } else {
                for &i in &self.idx[start..end] {
                    let w = self.weight(i as usize);
                    sum += w * self.y[i as usize];
                    wsum += w;
                }
            }
            vec![if wsum > 0.0 { sum / wsum } else { 0.0 }]
        } else {
            let mut hist = vec![0.0; self.n_outputs];
            let mut wsum = 0.0;
            if fused {
                for &i in &self.idx[start..end] {
                    let w = self.row_w[i as usize];
                    hist[self.row_cls[i as usize] as usize] += w;
                    wsum += w;
                }
            } else {
                for &i in &self.idx[start..end] {
                    let w = self.weight(i as usize);
                    hist[self.y[i as usize] as usize] += w;
                    wsum += w;
                }
            }
            if wsum > 0.0 {
                for h in &mut hist {
                    *h /= wsum;
                }
            }
            hist
        }
    }

    fn impurity_from_stats(&self, hist: &[f64], wsum: f64, sum: f64, sum_sq: f64) -> f64 {
        match self.config.criterion {
            Criterion::Gini => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut g = 1.0;
                for &h in hist {
                    let p = h / wsum;
                    g -= p * p;
                }
                g
            }
            Criterion::Entropy => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut e = 0.0;
                for &h in hist {
                    if h > 0.0 {
                        let p = h / wsum;
                        e -= p * p.log2();
                    }
                }
                e
            }
            Criterion::Mse => {
                if wsum <= 0.0 {
                    0.0
                } else {
                    sum_sq / wsum - (sum / wsum) * (sum / wsum)
                }
            }
        }
    }

    fn is_pure(&self, start: usize, end: usize) -> bool {
        let first = self.y[self.idx[start] as usize];
        self.idx[start..end]
            .iter()
            .all(|&i| (self.y[i as usize] - first).abs() < 1e-12)
    }

    fn make_leaf(&mut self, start: usize, end: usize) -> usize {
        let value = self.leaf_value(start, end);
        self.nodes.push(Node {
            feature: usize::MAX,
            threshold: 0.0,
            left: 0,
            right: 0,
            value,
        });
        self.nodes.len() - 1
    }

    /// One pass over the node's rows fills every candidate feature's bins
    /// into a single flat slab (features in candidate order, running
    /// offsets). Also charges the bandwidth counters: each fill reads
    /// `rows × features × C::BYTES` of bin codes.
    fn build_hists(&mut self, start: usize, end: usize, features: &[usize]) -> Vec<f64> {
        use std::sync::atomic::Ordering::Relaxed;
        crate::binned::stats::HIST_NODE_SCANS.fetch_add(1, Relaxed);
        crate::binned::stats::HIST_BYTES_SCANNED
            .fetch_add(((end - start) * features.len() * C::BYTES) as u64, Relaxed);
        self.tracked = Tracked::None;
        if self.config.hist_kernel == HistKernel::PerNode {
            return self.build_hists_per_node(start, end, features);
        }
        let ctx = FillCtx {
            bm: self.bm,
            codes: self.codes,
            rows: &self.idx[start..end],
            channels: self.channels,
            is_mse: self.is_mse(),
            row_w: &self.row_w,
            row_wy: &self.row_wy,
            row_wyy: &self.row_wyy,
            row_cls: &self.row_cls,
            pad: self.pad,
        };
        let mut slab = take_slab(ctx.slab_len(features));
        let jobs = self.config.hist_n_jobs;
        let cells = (end - start) * features.len();
        if jobs > 1 && features.len() > 1 && cells >= FEATURE_PARALLEL_MIN_CELLS {
            fill_parallel(&ctx, features, &mut slab, jobs);
        } else if end - start <= TRACKED_MAX_ROWS {
            match self.channels {
                3 if self.pad => {
                    self.touched_bits.resize(features.len(), [0; PAD_BINS / 64]);
                    ctx.fill_tracked_fixed::<3>(features, &mut slab, &mut self.touched_bits);
                    self.tracked = Tracked::Bits;
                }
                4 if self.pad => {
                    self.touched_bits.resize(features.len(), [0; PAD_BINS / 64]);
                    ctx.fill_tracked_fixed::<4>(features, &mut slab, &mut self.touched_bits);
                    self.tracked = Tracked::Bits;
                }
                _ => {
                    self.touched.resize(features.len(), Vec::new());
                    ctx.fill_tracked(features, &mut slab, &mut self.touched);
                    self.tracked = Tracked::Lists;
                }
            }
        } else {
            ctx.fill(features, &mut slab);
        }
        slab
    }

    /// The PR 2 kernel, kept verbatim in spirit: per-access weight lookup
    /// and `w·y` / `w·y²` products, builder-local buffer recycling, always
    /// serial. Produces the same slab layout (and, channel by channel, the
    /// same sums in the same order) as the flat kernel — the bitwise
    /// equivalence the property tests pin down.
    fn build_hists_per_node(&mut self, start: usize, end: usize, features: &[usize]) -> Vec<f64> {
        let is_mse = self.is_mse();
        let ch = self.channels;
        let n = self.bm.n_rows();
        let len: usize = features.iter().map(|&f| self.bm.n_bins(f) * ch).sum();
        let mut slab = self.local_pool.pop().unwrap_or_default();
        slab.clear();
        slab.resize(len, 0.0);
        let mut off = 0usize;
        for &f in features {
            let col = &self.codes[f * n..(f + 1) * n];
            let width = self.bm.n_bins(f) * ch;
            let h = &mut slab[off..off + width];
            for &i in &self.idx[start..end] {
                let i = i as usize;
                let w = self.weights.map_or(1.0, |w| w[i]);
                let base = col[i].bin() * ch;
                if is_mse {
                    h[base] += w;
                    h[base + 1] += w * self.y[i];
                    h[base + 2] += w * self.y[i] * self.y[i];
                    h[base + 3] += 1.0;
                } else {
                    h[base + self.y[i] as usize] += w;
                    h[base + ch - 1] += 1.0;
                }
            }
            off += width;
        }
        slab
    }

    /// Returns a node's histogram slab to the matching pool.
    ///
    /// The flat pool's invariant is that parked slabs are all-zero, so the
    /// retiring node pays the clearing cost — and it knows exactly which
    /// cells its fill touched: `rows = Some((start, end))` when the slab
    /// was built from `idx[start..end]` (partition may have reordered the
    /// range, but zeroing only needs the row *set*). Small nodes then zero
    /// `rows × features` cells instead of the whole ~`bins × features`
    /// arena; inherited (subtraction-trick) slabs and large nodes fall
    /// back to one sequential clear.
    fn retire_slab(&mut self, mut slab: Vec<f64>, rows: Option<(usize, usize)>, features: &[usize]) {
        match self.config.hist_kernel {
            HistKernel::PerNode => self.local_pool.push(slab),
            HistKernel::Flat => {
                if self.tracked != Tracked::None && rows.is_some() {
                    // Tracked fill: zero exactly the populated cells.
                    let ch = self.channels;
                    let mut off = 0usize;
                    for (fi, &f) in features.iter().enumerate() {
                        let width = self.width(f);
                        let h = &mut slab[off..off + width];
                        match self.tracked {
                            Tracked::Bits => {
                                for_each_bit(&self.touched_bits[fi], |b| {
                                    h[b * ch..b * ch + ch].fill(0.0);
                                });
                            }
                            _ => {
                                for &b in &self.touched[fi] {
                                    let base = b as usize * ch;
                                    h[base..base + ch].fill(0.0);
                                }
                            }
                        }
                        off += width;
                    }
                    self.tracked = Tracked::None;
                } else {
                    match rows {
                        Some((start, end))
                            if (end - start) * features.len() * self.channels * 2
                                <= slab.len() =>
                        {
                            self.zero_touched(&mut slab, start, end, features);
                        }
                        _ => slab.fill(0.0),
                    }
                }
                put_slab(slab);
            }
        }
    }

    /// Zeroes exactly the cells a fill over `idx[start..end] × features`
    /// touched, restoring the all-zero pool invariant without a full-slab
    /// memset.
    fn zero_touched(&self, slab: &mut [f64], start: usize, end: usize, features: &[usize]) {
        let ch = self.channels;
        let n = self.bm.n_rows();
        let mut off = 0usize;
        for &f in features {
            let col = &self.codes[f * n..(f + 1) * n];
            let width = self.width(f);
            let h = &mut slab[off..off + width];
            for &i in &self.idx[start..end] {
                let base = col[i as usize].bin() * ch;
                h[base..base + ch].fill(0.0);
            }
            off += width;
        }
    }

    /// Scans bin boundaries for the best split; returns the winning
    /// candidate's position in `features` and the boundary bin.
    ///
    /// When the node's fill tracked its touched bins, only those bins are
    /// visited (in ascending order, exactly the non-empty bins the full
    /// walk would not have skipped — and empty bins contribute exact `0.0`
    /// terms to the parent sums, so skipping them is bitwise neutral).
    /// Untracked nodes — large ones, and the PerNode oracle — walk every
    /// bin with the empty-skip, as the PR 2 kernel did.
    fn scan_split(&self, slab: &[f64], features: &[usize], n_node: usize) -> Option<(usize, usize)> {
        let is_mse = self.is_mse();
        let ch = self.channels;
        let k = if is_mse { 0 } else { self.n_outputs };
        let min_leaf = self.config.min_samples_leaf.max(1);

        // Parent statistics = any feature's histogram summed over bins.
        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        {
            let h0 = &slab[..self.bm.n_bins(features[0]) * ch];
            let mut add_parent = |bin: &[f64]| {
                if is_mse {
                    total_w += bin[0];
                    total_sum += bin[1];
                    total_sq += bin[2];
                } else {
                    for (t, b) in total_hist.iter_mut().zip(bin[..k].iter()) {
                        *t += b;
                    }
                }
            };
            match self.tracked {
                Tracked::Bits => {
                    for_each_bit(&self.touched_bits[0], |b| {
                        let base = b * ch;
                        add_parent(&h0[base..base + ch]);
                    });
                }
                Tracked::Lists => {
                    for &b in &self.touched[0] {
                        let base = b as usize * ch;
                        add_parent(&h0[base..base + ch]);
                    }
                }
                Tracked::None => {
                    for bin in h0.chunks_exact(ch) {
                        add_parent(bin);
                    }
                }
            }
        }
        if !is_mse {
            total_w = total_hist.iter().sum();
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, usize, f64)> = None; // (feature pos, bin, gain)
        let mut left_hist = vec![0.0; k];
        let mut right_hist = vec![0.0; k];
        let mut off = 0usize;
        for (fi, &f) in features.iter().enumerate() {
            let nb = self.bm.n_bins(f);
            // Scan only the feature's real bins; padding (if any) sits
            // between `nb * ch` and the region width and is never read.
            let h = &slab[off..off + nb * ch];
            off += self.width(f);
            if nb < 2 {
                continue;
            }
            left_hist.iter_mut().for_each(|v| *v = 0.0);
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            let mut n_left = 0usize;
            // An empty bin leaves the partition unchanged, so boundary `b`
            // duplicates boundary `b - 1`; only the first boundary of each
            // run (where the added bin is non-empty) can win under the
            // strictly-greater gain rule. The untracked walk skips them by
            // testing the count channel; tracked nodes never visit them.
            let mut visit = |b: usize| {
                let bin = &h[b * ch..(b + 1) * ch];
                if bin[ch - 1] == 0.0 {
                    return;
                }
                if is_mse {
                    lw += bin[0];
                    lsum += bin[1];
                    lsq += bin[2];
                } else {
                    for (l, v) in left_hist.iter_mut().zip(bin[..k].iter()) {
                        *l += v;
                        lw += v;
                    }
                }
                n_left += bin[ch - 1] as usize;
                let n_right = n_node - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    return;
                }
                let rw = total_w - lw;
                let (left_imp, right_imp) = if is_mse {
                    (
                        self.impurity_from_stats(&[], lw, lsum, lsq),
                        self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                    )
                } else {
                    for ((r, t), l) in right_hist
                        .iter_mut()
                        .zip(total_hist.iter())
                        .zip(left_hist.iter())
                    {
                        *r = t - l;
                    }
                    (
                        self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                        self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                    )
                };
                let weighted = (lw * left_imp + rw * right_imp) / total_w;
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((fi, b, gain));
                }
            };
            match self.tracked {
                Tracked::Bits => {
                    // Ascending bit order matches the sorted-list walk;
                    // the last real bin is never a boundary.
                    for_each_bit(&self.touched_bits[fi], |b| {
                        if b + 1 < nb {
                            visit(b);
                        }
                    });
                }
                Tracked::Lists => {
                    for &b in &self.touched[fi] {
                        let b = b as usize;
                        // Lists are sorted; the last bin is never a
                        // boundary (the full walk stops at `nb - 1`).
                        if b >= nb - 1 {
                            break;
                        }
                        visit(b);
                    }
                }
                Tracked::None => {
                    for b in 0..nb - 1 {
                        visit(b);
                    }
                }
            }
        }
        best.map(|(fi, b, _)| (fi, b))
    }

    /// Stably partitions `idx[start..end]` on `code <= bin`; returns the
    /// boundary position (start of the right child's range).
    fn partition(&mut self, start: usize, end: usize, feature: usize, bin: usize) -> usize {
        let n = self.bm.n_rows();
        let col = &self.codes[feature * n..(feature + 1) * n];
        self.scratch.clear();
        let mut write = start;
        for r in start..end {
            let i = self.idx[r];
            if col[i as usize].bin() <= bin {
                self.idx[write] = i;
                write += 1;
            } else {
                self.scratch.push(i);
            }
        }
        self.idx[write..end].copy_from_slice(&self.scratch);
        write
    }

    /// Could a node of `n` rows at `depth` still be split?
    fn may_split(&self, n: usize, depth: usize) -> bool {
        depth < self.config.max_depth
            && n >= self.config.min_samples_split
            && n >= 2 * self.config.min_samples_leaf
    }

    /// Builds the subtree for `idx[start..end]`, returning the node id.
    /// `inherited` carries the slab precomputed by the parent (the
    /// subtraction trick); it is only ever `Some` in all-features mode,
    /// where parent and child candidate sets (and thus slab layouts)
    /// coincide.
    fn build(
        &mut self,
        start: usize,
        end: usize,
        depth: usize,
        inherited: Option<Vec<f64>>,
    ) -> usize {
        let n_node = end - start;
        if !self.may_split(n_node, depth) || self.is_pure(start, end) {
            if let Some(h) = inherited {
                // Inherited slabs hold parent-minus-sibling values whose
                // nonzero set we don't track; full clear on retirement.
                self.retire_slab(h, None, &[]);
            }
            return self.make_leaf(start, end);
        }

        let d = self.bm.n_features();
        let n_candidates = self.config.max_features.resolve(d);
        let all_features = n_candidates == d;
        let features: Vec<usize> = if all_features {
            (0..d).collect()
        } else {
            sample_without_replacement(&mut self.rng, d, n_candidates)
        };

        // Fresh slabs were filled from exactly `idx[start..end]`, so their
        // touched cells are recomputable for targeted zeroing; inherited
        // ones are not.
        let fresh_rows = if inherited.is_none() {
            Some((start, end))
        } else {
            None
        };
        let hists = match inherited {
            Some(h) => h,
            None => self.build_hists(start, end, &features),
        };

        let Some((fpos, bin)) = self.scan_split(&hists, &features, n_node) else {
            self.retire_slab(hists, fresh_rows, &features);
            return self.make_leaf(start, end);
        };
        let feature = features[fpos];
        let threshold = self.bm.cut(feature, bin);
        let mid = self.partition(start, end, feature, bin);
        let (ln, rn) = (mid - start, end - mid);
        if ln < self.config.min_samples_leaf || rn < self.config.min_samples_leaf {
            self.retire_slab(hists, fresh_rows, &features);
            return self.make_leaf(start, end);
        }

        let value = self.leaf_value(start, end);
        let me = self.nodes.len();
        self.nodes.push(Node {
            feature,
            threshold,
            left: 0,
            right: 0,
            value,
        });

        let subtract = all_features
            && self.may_split(ln, depth + 1)
            && self.may_split(rn, depth + 1);
        let (left_h, right_h) = if subtract {
            let (s_start, s_end, small_is_left) = if ln <= rn {
                (start, mid, true)
            } else {
                (mid, end, false)
            };
            let small = self.build_hists(s_start, s_end, &features);
            let mut large = hists; // reuse the parent's slab
            for (a, b) in large.iter_mut().zip(small.iter()) {
                *a -= b;
            }
            // Both slabs are donated to the children, whose scans and
            // retirements must not consult this node's touched sets.
            self.tracked = Tracked::None;
            if small_is_left {
                (Some(small), Some(large))
            } else {
                (Some(large), Some(small))
            }
        } else {
            self.retire_slab(hists, fresh_rows, &features);
            (None, None)
        };

        let left = self.build(start, mid, depth + 1, left_h);
        let right = self.build(mid, end, depth + 1, right_h);
        self.nodes[me].left = left;
        self.nodes[me].right = right;
        me
    }
}

/// Feature-parallel flat fill: contiguous feature chunks are filled into
/// private sub-slabs on worker threads, then copied back in feature order.
/// Per-feature accumulation is independent (each feature owns its bins) and
/// the merge is a positional copy, so the result is bitwise identical to
/// [`FillCtx::fill`] for any job count.
fn fill_parallel<C: BinCode>(ctx: &FillCtx<'_, C>, features: &[usize], slab: &mut [f64], jobs: usize) {
    crate::binned::stats::FEATURE_PARALLEL_MERGES
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let jobs = jobs.min(features.len());
    let chunk = features.len().div_ceil(jobs);
    let n_chunks = features.len().div_ceil(chunk);
    let parts: Vec<Vec<f64>> = parallel_map(jobs, n_chunks, |ci| {
        let fs = &features[ci * chunk..((ci + 1) * chunk).min(features.len())];
        let mut sub = vec![0.0; ctx.slab_len(fs)];
        ctx.fill(fs, &mut sub);
        sub
    });
    let mut off = 0usize;
    for mut part in parts {
        slab[off..off + part.len()].copy_from_slice(&part);
        off += part.len();
        part.fill(0.0);
        put_slab(part);
    }
}

/// Entry point below [`Tree::fit_binned`], monomorphized on the code width.
/// Builds the fused per-row statistic arrays (flat kernel only — the
/// PerNode oracle recomputes per access, as PR 2 did), then grows the tree.
fn fit_binned_codes<C: BinCode>(
    bm: &BinnedMatrix,
    codes: &[C],
    idx: Vec<u32>,
    y: &[f64],
    weights: Option<&[f64]>,
    n_outputs: usize,
    config: &TreeConfig,
) -> Result<Tree> {
    let n = bm.n_rows();
    let is_mse = config.criterion == Criterion::Mse;
    let channels = if is_mse { REG_CHANNELS } else { n_outputs + 1 };
    let (mut row_w, mut row_wy, mut row_wyy, mut row_cls) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    if config.hist_kernel == HistKernel::Flat {
        row_w = match weights {
            Some(w) => w.to_vec(),
            None => vec![1.0; n],
        };
        if is_mse {
            row_wy = Vec::with_capacity(n);
            row_wyy = Vec::with_capacity(n);
            for i in 0..n {
                // Left-associated products so bins match the PerNode
                // kernel's `w * y * y` bit for bit.
                let wy = row_w[i] * y[i];
                row_wy.push(wy);
                row_wyy.push(wy * y[i]);
            }
        } else {
            row_cls = y.iter().map(|&v| v as u32).collect();
        }
    }
    let n_rows_fit = idx.len();
    let mut builder = HistBuilder {
        bm,
        codes,
        y,
        weights,
        n_outputs,
        config,
        nodes: Vec::new(),
        rng: rng_from_seed(config.seed),
        idx,
        scratch: Vec::with_capacity(n_rows_fit),
        channels,
        row_w,
        row_wy,
        row_wyy,
        row_cls,
        local_pool: Vec::new(),
        touched: Vec::new(),
        touched_bits: Vec::new(),
        tracked: Tracked::None,
        pad: config.hist_kernel == HistKernel::Flat && C::BYTES == 1,
    };
    builder.build(0, n_rows_fit, 0, None);
    Ok(Tree {
        nodes: builder.nodes,
        n_outputs,
        n_features: bm.n_features(),
    })
}

/// Single-tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    tree: Option<Tree>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Creates an untrained classifier.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeClassifier {
            config,
            tree: None,
            n_classes: 0,
        }
    }

    /// Access to the fitted tree.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

impl Estimator for DecisionTreeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.n_classes = infer_n_classes(y);
        self.tree = Some(Tree::fit(x, y, None, self.n_classes, &self.config)?);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| volcanoml_linalg::stats::argmax(p.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let tree = self.tree.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != tree.n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                tree.n_features(),
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for i in 0..x.rows() {
            let v = tree.predict_row(x.row(i));
            out.row_mut(i).copy_from_slice(v);
        }
        Ok(out)
    }
}

/// Single-tree regressor.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    tree: Option<Tree>,
}

impl DecisionTreeRegressor {
    /// Creates an untrained regressor.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeRegressor { config, tree: None }
    }

    /// Access to the fitted tree.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

impl Estimator for DecisionTreeRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        let mut config = self.config.clone();
        config.criterion = Criterion::Mse;
        self.tree = Some(Tree::fit(x, y, None, 1, &config)?);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let tree = self.tree.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != tree.n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                tree.n_features(),
                x.cols()
            )));
        }
        Ok((0..x.rows())
            .map(|i| tree.predict_row(x.row(i))[0])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::{accuracy, r2};
    use volcanoml_data::synthetic::{make_piecewise, make_xor};

    #[test]
    fn tree_fits_xor_perfectly() {
        let d = make_xor(300, 2, 4, 0.0, 5);
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&d.x, &d.y).unwrap();
        let acc = accuracy(&d.y, &m.predict(&d.x).unwrap());
        assert!(acc > 0.98, "train accuracy {acc}");
    }

    #[test]
    fn tree_generalizes_on_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn max_depth_limits_tree() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.max_depth = 2;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&d.x, &d.y).unwrap();
        assert!(m.tree().unwrap().depth() <= 2);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.min_samples_leaf = 30;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&d.x, &d.y).unwrap();
        // A 240-sample dataset with 30-sample leaves has at most 8 leaves ->
        // at most 15 nodes.
        assert!(m.tree().unwrap().n_nodes() <= 15);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.criterion = Criterion::Entropy;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "{acc}");
    }

    #[test]
    fn random_split_strategy_learns() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.split_strategy = SplitStrategy::Random;
        cfg.max_depth = 16;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.75, "{acc}");
    }

    #[test]
    fn regressor_fits_piecewise_signal() {
        let d = make_piecewise(400, 3, 3, 0.05, 1);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = DecisionTreeRegressor::new(TreeConfig::regression());
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.85, "r2 {score}");
    }

    #[test]
    fn weighted_fit_shifts_leaf_values() {
        // Two classes at the same x; weights decide the histogram.
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 1.0, 3.0, 3.0];
        let cfg = TreeConfig::classification();
        let tree = Tree::fit(&x, &y, Some(&w), 2, &cfg).unwrap();
        let v = tree.predict_row(&[0.0]);
        assert!((v[1] - 0.75).abs() < 1e-12, "{v:?}");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = vec![1.0; 5];
        let tree = Tree::fit(&x, &y, None, 2, &TreeConfig::classification()).unwrap();
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Log2.resolve(8), 3);
        assert_eq!(MaxFeatures::Fraction(0.5).resolve(10), 5);
        assert_eq!(MaxFeatures::Fraction(0.0).resolve(10), 1);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let d = easy_multiclass();
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_weight_length_mismatch() {
        let x = Matrix::zeros(3, 1);
        let r = Tree::fit(&x, &[0.0, 1.0, 0.0], Some(&[1.0]), 2, &TreeConfig::classification());
        assert!(r.is_err());
    }

    /// With enough bins every distinct value gets its own bin and the cut
    /// points are exactly the exact splitter's candidate midpoints, so the
    /// two strategies must grow identical trees.
    fn assert_histogram_matches_best(
        x: &Matrix,
        y: &[f64],
        n_outputs: usize,
        base: &TreeConfig,
    ) {
        let mut exact_cfg = base.clone();
        exact_cfg.split_strategy = SplitStrategy::Best;
        let mut hist_cfg = base.clone();
        hist_cfg.split_strategy = SplitStrategy::Histogram;
        hist_cfg.max_bins = u16::MAX as usize + 1;
        let exact = Tree::fit(x, y, None, n_outputs, &exact_cfg).unwrap();
        let hist = Tree::fit(x, y, None, n_outputs, &hist_cfg).unwrap();
        assert_eq!(exact.n_nodes(), hist.n_nodes(), "node counts diverge");
        for i in 0..x.rows() {
            let a = exact.predict_row(x.row(i));
            let b = hist.predict_row(x.row(i));
            for (va, vb) in a.iter().zip(b.iter()) {
                assert!((va - vb).abs() < 1e-9, "row {i}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn histogram_matches_best_on_classification() {
        let d = easy_binary();
        assert_histogram_matches_best(&d.x, &d.y, 2, &TreeConfig::classification());
        let m = easy_multiclass();
        assert_histogram_matches_best(&m.x, &m.y, 3, &TreeConfig::classification());
        let mut entropy = TreeConfig::classification();
        entropy.criterion = Criterion::Entropy;
        assert_histogram_matches_best(&d.x, &d.y, 2, &entropy);
    }

    #[test]
    fn histogram_matches_best_on_regression() {
        let d = make_piecewise(300, 3, 3, 0.05, 9);
        assert_histogram_matches_best(&d.x, &d.y, 1, &TreeConfig::regression());
    }

    #[test]
    fn histogram_matches_best_with_min_samples_leaf() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.min_samples_leaf = 7;
        cfg.max_depth = 6;
        assert_histogram_matches_best(&d.x, &d.y, 2, &cfg);
    }

    #[test]
    fn histogram_with_few_bins_still_learns() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.split_strategy = SplitStrategy::Histogram;
        cfg.max_bins = 16;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn binned_fit_respects_weights() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 1.0, 3.0, 3.0];
        let bm = BinnedMatrix::from_matrix(&x, 255);
        let tree = Tree::fit_binned(&bm, &y, Some(&w), 2, &TreeConfig::classification()).unwrap();
        let v = tree.predict_row(&[0.0]);
        assert!((v[1] - 0.75).abs() < 1e-12, "{v:?}");
    }

    #[test]
    fn zero_weight_rows_are_ignored() {
        // Rows 4..8 would flip the majority class were they not zeroed out.
        let x = Matrix::from_vec(8, 1, vec![0.0; 8]).unwrap();
        let y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let w = vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        for strategy in [SplitStrategy::Best, SplitStrategy::Histogram] {
            let mut cfg = TreeConfig::classification();
            cfg.split_strategy = strategy;
            let tree = Tree::fit(&x, &y, Some(&w), 2, &cfg).unwrap();
            let v = tree.predict_row(&[0.0]);
            assert!((v[0] - 0.75).abs() < 1e-12, "{strategy:?}: {v:?}");
        }
        let all_zero = Tree::fit(&x, &y, Some(&[0.0; 8]), 2, &TreeConfig::classification());
        assert!(all_zero.is_err());
    }

    /// Exact (bitwise) equality of two fitted trees: same shape, and every
    /// training row lands in a leaf with identical value bits.
    fn assert_trees_identical(a: &Tree, b: &Tree, x: &Matrix, label: &str) {
        assert_eq!(a.n_nodes(), b.n_nodes(), "{label}: node counts");
        assert_eq!(a.depth(), b.depth(), "{label}: depths");
        for i in 0..x.rows() {
            assert_eq!(
                a.predict_row(x.row(i)),
                b.predict_row(x.row(i)),
                "{label}: row {i} leaf values"
            );
        }
    }

    /// Deterministic per-row weights exercising the weighted kernels.
    fn varied_weights(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect()
    }

    /// An `(x, y, weights, n_outputs)` fit instance for kernel-parity tests.
    type FitCase<'a> = (&'a Matrix, &'a [f64], Option<&'a [f64]>, usize);

    #[test]
    fn u8_and_u16_codes_grow_identical_trees() {
        let d = easy_multiclass();
        let r = make_piecewise(250, 4, 3, 0.05, 11);
        let w = varied_weights(d.x.rows());
        let wr = varied_weights(r.x.rows());
        let cases: [(FitCase, TreeConfig); 3] = [
            ((&d.x, &d.y, None, 3), TreeConfig::classification()),
            ((&d.x, &d.y, Some(&w), 3), TreeConfig::classification()),
            ((&r.x, &r.y, Some(&wr), 1), TreeConfig::regression()),
        ];
        for ((x, y, weights, n_outputs), cfg) in cases {
            let narrow = BinnedMatrix::from_matrix(x, cfg.max_bins);
            let wide = BinnedMatrix::from_matrix_u16(x, cfg.max_bins);
            assert!(narrow.is_u8() && !wide.is_u8());
            let a = Tree::fit_binned(&narrow, y, weights, n_outputs, &cfg).unwrap();
            let b = Tree::fit_binned(&wide, y, weights, n_outputs, &cfg).unwrap();
            assert_trees_identical(&a, &b, x, "u8 vs u16");
        }
    }

    #[test]
    fn flat_and_per_node_kernels_are_bitwise_identical() {
        let d = easy_multiclass();
        let r = make_piecewise(250, 4, 3, 0.05, 13);
        let w = varied_weights(d.x.rows());
        let wr = varied_weights(r.x.rows());
        for max_features in [MaxFeatures::All, MaxFeatures::Sqrt] {
            let mut cls = TreeConfig::classification();
            cls.max_features = max_features;
            let mut reg = TreeConfig::regression();
            reg.max_features = max_features;
            reg.seed = 42;
            let cases: [(FitCase, &TreeConfig); 3] = [
                ((&d.x, &d.y, Some(&w), 3), &cls),
                ((&d.x, &d.y, None, 3), &cls),
                ((&r.x, &r.y, Some(&wr), 1), &reg),
            ];
            for ((x, y, weights, n_outputs), cfg) in cases {
                let bm = BinnedMatrix::from_matrix(x, cfg.max_bins);
                let flat = Tree::fit_binned(&bm, y, weights, n_outputs, cfg).unwrap();
                let mut legacy_cfg = cfg.clone();
                legacy_cfg.hist_kernel = HistKernel::PerNode;
                let legacy = Tree::fit_binned(&bm, y, weights, n_outputs, &legacy_cfg).unwrap();
                assert_trees_identical(&flat, &legacy, x, "flat vs per-node");
            }
        }
    }

    #[test]
    fn feature_parallel_fill_is_bitwise_identical() {
        // Large enough that the root (and several descendants) clear
        // FEATURE_PARALLEL_MIN_CELLS, so the chunked fill + merge really
        // runs instead of falling back to the serial path.
        let d = make_xor(1400, 8, 4, 0.05, 21);
        let cfg = TreeConfig::classification();
        let bm = BinnedMatrix::from_matrix(&d.x, cfg.max_bins);
        let serial = Tree::fit_binned(&bm, &d.y, None, 2, &cfg).unwrap();
        for jobs in [2, 3, 8] {
            let before = crate::binned::stats::snapshot().feature_parallel_merges;
            let mut par_cfg = cfg.clone();
            par_cfg.hist_n_jobs = jobs;
            let par = Tree::fit_binned(&bm, &d.y, None, 2, &par_cfg).unwrap();
            assert_trees_identical(&par, &serial, &d.x, "feature-parallel vs serial");
            let after = crate::binned::stats::snapshot().feature_parallel_merges;
            assert!(after > before, "jobs={jobs}: parallel fill never ran");
        }
    }

    #[test]
    fn arena_pool_is_reused_within_a_tree() {
        let d = make_xor(600, 4, 4, 0.05, 3);
        let bm = BinnedMatrix::from_matrix(&d.x, 255);
        let before = crate::binned::stats::snapshot().arena_reuses;
        let _ = Tree::fit_binned(&bm, &d.y, None, 2, &TreeConfig::classification()).unwrap();
        let after = crate::binned::stats::snapshot().arena_reuses;
        assert!(after > before, "deep fit must recycle slabs");
    }

    #[test]
    fn predict_row_f32_matches_f64_on_representable_rows() {
        let d = easy_binary();
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&d.x, &d.y).unwrap();
        let tree = m.tree().unwrap();
        // Rows narrowed then compared: thresholds are midpoints of data
        // values, so a narrow-then-widen round trip can flip rows that sit
        // within f32 rounding of a threshold; count, don't forbid.
        let mut flips = 0usize;
        for i in 0..d.x.rows() {
            let row64 = d.x.row(i);
            let row32: Vec<f32> = row64.iter().map(|&v| v as f32).collect();
            if tree.predict_row(row64) != tree.predict_row_f32(&row32) {
                flips += 1;
            }
        }
        assert!(
            flips * 100 <= d.x.rows(),
            "{flips} of {} rows flipped leaves under f32 narrowing",
            d.x.rows()
        );
    }
}
