//! CART decision trees (classification and regression).
//!
//! A single implementation handles both tasks: leaves store a value vector —
//! a class-probability histogram for classification, a single mean for
//! regression. Splits are exact (sort-based scan) by default; the
//! [`SplitStrategy::Random`] mode draws thresholds uniformly at random
//! (extra-trees style), which the forest module uses for `ExtraTrees`.

use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use rand::rngs::StdRng;
use rand::RngExt;
use volcanoml_data::rand_util::{rng_from_seed, sample_without_replacement};
use volcanoml_linalg::Matrix;

/// Impurity criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Sum of squared errors (regression).
    Mse,
}

/// How many features to consider per split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// ⌈√d⌉ random features (random-forest default for classification).
    Sqrt,
    /// ⌈log₂ d⌉ random features.
    Log2,
    /// A fixed fraction of features (clamped to at least one).
    Fraction(f64),
}

impl MaxFeatures {
    fn resolve(&self, d: usize) -> usize {
        let m = match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (d as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Fraction(f) => (d as f64 * f).ceil() as usize,
        };
        m.clamp(1, d)
    }
}

/// Threshold-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Exact best split via sorted scan.
    Best,
    /// One uniformly random threshold per candidate feature (extra-trees).
    Random,
}

/// Tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Impurity criterion; must match the task.
    pub criterion: Criterion,
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Threshold strategy.
    pub split_strategy: SplitStrategy,
    /// RNG seed (feature subsets / random thresholds).
    pub seed: u64,
}

impl TreeConfig {
    /// Sensible classification defaults.
    pub fn classification() -> Self {
        TreeConfig {
            criterion: Criterion::Gini,
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            split_strategy: SplitStrategy::Best,
            seed: 0,
        }
    }

    /// Sensible regression defaults.
    pub fn regression() -> Self {
        TreeConfig {
            criterion: Criterion::Mse,
            ..TreeConfig::classification()
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// `usize::MAX` marks a leaf.
    feature: usize,
    threshold: f64,
    left: usize,
    right: usize,
    /// Class histogram (classification) or `[mean]` (regression).
    value: Vec<f64>,
}

/// A fitted CART tree. Usually constructed through
/// [`DecisionTreeClassifier`] / [`DecisionTreeRegressor`], or internally by
/// ensembles.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    n_outputs: usize,
    n_features: usize,
}

impl Tree {
    /// Fits a tree on `(x, y)` with optional per-sample weights.
    ///
    /// For classification, `n_outputs` is the class count and `y` holds
    /// class indices; for regression pass `n_outputs = 1`.
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        weights: Option<&[f64]>,
        n_outputs: usize,
        config: &TreeConfig,
    ) -> Result<Tree> {
        check_fit_inputs(x, y)?;
        if let Some(w) = weights {
            if w.len() != y.len() {
                return Err(ModelError::Invalid(format!(
                    "{} weights for {} samples",
                    w.len(),
                    y.len()
                )));
            }
        }
        let mut builder = Builder {
            x,
            y,
            weights,
            n_outputs,
            config,
            nodes: Vec::new(),
            rng: rng_from_seed(config.seed),
        };
        let indices: Vec<usize> = (0..x.rows()).collect();
        builder.build(&indices, 0);
        Ok(Tree {
            nodes: builder.nodes,
            n_outputs,
            n_features: x.cols(),
        })
    }

    /// Returns the leaf value vector for one sample.
    pub fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            if n.feature == usize::MAX {
                return &n.value;
            }
            node = if row[n.feature] <= n.threshold {
                n.left
            } else {
                n.right
            };
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf values per node (classes or 1).
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Feature count the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            let n = &nodes[i];
            if n.feature == usize::MAX {
                0
            } else {
                1 + walk(nodes, n.left).max(walk(nodes, n.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    weights: Option<&'a [f64]>,
    n_outputs: usize,
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    rng: StdRng,
}

impl Builder<'_> {
    fn weight(&self, i: usize) -> f64 {
        self.weights.map_or(1.0, |w| w[i])
    }

    /// Leaf value: normalized class histogram or weighted mean.
    fn leaf_value(&self, indices: &[usize]) -> Vec<f64> {
        if self.config.criterion == Criterion::Mse {
            let mut sum = 0.0;
            let mut wsum = 0.0;
            for &i in indices {
                let w = self.weight(i);
                sum += w * self.y[i];
                wsum += w;
            }
            vec![if wsum > 0.0 { sum / wsum } else { 0.0 }]
        } else {
            let mut hist = vec![0.0; self.n_outputs];
            let mut wsum = 0.0;
            for &i in indices {
                let w = self.weight(i);
                hist[self.y[i] as usize] += w;
                wsum += w;
            }
            if wsum > 0.0 {
                for h in &mut hist {
                    *h /= wsum;
                }
            }
            hist
        }
    }

    fn impurity_from_stats(&self, hist: &[f64], wsum: f64, sum: f64, sum_sq: f64) -> f64 {
        match self.config.criterion {
            Criterion::Gini => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut g = 1.0;
                for &h in hist {
                    let p = h / wsum;
                    g -= p * p;
                }
                g
            }
            Criterion::Entropy => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut e = 0.0;
                for &h in hist {
                    if h > 0.0 {
                        let p = h / wsum;
                        e -= p * p.log2();
                    }
                }
                e
            }
            Criterion::Mse => {
                if wsum <= 0.0 {
                    0.0
                } else {
                    sum_sq / wsum - (sum / wsum) * (sum / wsum)
                }
            }
        }
    }

    fn is_pure(&self, indices: &[usize]) -> bool {
        let first = self.y[indices[0]];
        indices.iter().all(|&i| (self.y[i] - first).abs() < 1e-12)
    }

    /// Builds the subtree for `indices`, returning the node id.
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let make_leaf = |b: &mut Builder, idx: &[usize]| -> usize {
            let value = b.leaf_value(idx);
            b.nodes.push(Node {
                feature: usize::MAX,
                threshold: 0.0,
                left: 0,
                right: 0,
                value,
            });
            b.nodes.len() - 1
        };

        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || indices.len() < 2 * self.config.min_samples_leaf
            || self.is_pure(indices)
        {
            return make_leaf(self, indices);
        }

        let d = self.x.cols();
        let n_candidates = self.config.max_features.resolve(d);
        let features: Vec<usize> = if n_candidates == d {
            (0..d).collect()
        } else {
            sample_without_replacement(&mut self.rng, d, n_candidates)
        };

        let best = match self.config.split_strategy {
            SplitStrategy::Best => self.best_split(indices, &features),
            SplitStrategy::Random => self.random_split(indices, &features),
        };

        let Some((feature, threshold)) = best else {
            return make_leaf(self, indices);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.x.get(i, feature) <= threshold);
        if left_idx.len() < self.config.min_samples_leaf
            || right_idx.len() < self.config.min_samples_leaf
        {
            return make_leaf(self, indices);
        }

        // Reserve this node's slot before recursing so child ids are stable.
        let value = self.leaf_value(indices);
        let me = self.nodes.len();
        self.nodes.push(Node {
            feature,
            threshold,
            left: 0,
            right: 0,
            value,
        });
        let left = self.build(&left_idx, depth + 1);
        let right = self.build(&right_idx, depth + 1);
        self.nodes[me].left = left;
        self.nodes[me].right = right;
        me
    }

    /// Exact best split across candidate features (sorted scan).
    fn best_split(&mut self, indices: &[usize], features: &[usize]) -> Option<(usize, f64)> {
        let min_leaf = self.config.min_samples_leaf;
        let is_mse = self.config.criterion == Criterion::Mse;
        let k = if is_mse { 0 } else { self.n_outputs };

        // Parent statistics.
        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        for &i in indices {
            let w = self.weight(i);
            total_w += w;
            if is_mse {
                total_sum += w * self.y[i];
                total_sq += w * self.y[i] * self.y[i];
            } else {
                total_hist[self.y[i] as usize] += w;
            }
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted: Vec<usize> = Vec::with_capacity(indices.len());
        for &f in features {
            sorted.clear();
            sorted.extend_from_slice(indices);
            sorted.sort_by(|&a, &b| {
                self.x
                    .get(a, f)
                    .partial_cmp(&self.x.get(b, f))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_hist = vec![0.0; k];
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            for pos in 0..sorted.len() - 1 {
                let i = sorted[pos];
                let w = self.weight(i);
                lw += w;
                if is_mse {
                    lsum += w * self.y[i];
                    lsq += w * self.y[i] * self.y[i];
                } else {
                    left_hist[self.y[i] as usize] += w;
                }
                let n_left = pos + 1;
                let n_right = sorted.len() - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let a = self.x.get(i, f);
                let b = self.x.get(sorted[pos + 1], f);
                if b - a < 1e-12 {
                    continue; // no threshold separates identical values
                }
                let rw = total_w - lw;
                let (left_imp, right_imp) = if is_mse {
                    (
                        self.impurity_from_stats(&[], lw, lsum, lsq),
                        self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                    )
                } else {
                    let right_hist: Vec<f64> = total_hist
                        .iter()
                        .zip(left_hist.iter())
                        .map(|(t, l)| t - l)
                        .collect();
                    (
                        self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                        self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                    )
                };
                let weighted = (lw * left_imp + rw * right_imp) / total_w;
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, (a + b) / 2.0, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    /// Extra-trees split: one random threshold per feature, pick the best.
    fn random_split(&mut self, indices: &[usize], features: &[usize]) -> Option<(usize, f64)> {
        let is_mse = self.config.criterion == Criterion::Mse;
        let k = if is_mse { 0 } else { self.n_outputs };
        let min_leaf = self.config.min_samples_leaf;

        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        for &i in indices {
            let w = self.weight(i);
            total_w += w;
            if is_mse {
                total_sum += w * self.y[i];
                total_sq += w * self.y[i] * self.y[i];
            } else {
                total_hist[self.y[i] as usize] += w;
            }
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in features {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in indices {
                let v = self.x.get(i, f);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < 1e-12 {
                continue;
            }
            let threshold = lo + self.rng.random::<f64>() * (hi - lo);
            let mut left_hist = vec![0.0; k];
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            let mut n_left = 0usize;
            for &i in indices {
                if self.x.get(i, f) <= threshold {
                    let w = self.weight(i);
                    n_left += 1;
                    lw += w;
                    if is_mse {
                        lsum += w * self.y[i];
                        lsq += w * self.y[i] * self.y[i];
                    } else {
                        left_hist[self.y[i] as usize] += w;
                    }
                }
            }
            let n_right = indices.len() - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let rw = total_w - lw;
            let (left_imp, right_imp) = if is_mse {
                (
                    self.impurity_from_stats(&[], lw, lsum, lsq),
                    self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                )
            } else {
                let right_hist: Vec<f64> = total_hist
                    .iter()
                    .zip(left_hist.iter())
                    .map(|(t, l)| t - l)
                    .collect();
                (
                    self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                    self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                )
            };
            let weighted = (lw * left_imp + rw * right_imp) / total_w;
            let gain = parent_impurity - weighted;
            if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                best = Some((f, threshold, gain));
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

/// Single-tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    tree: Option<Tree>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Creates an untrained classifier.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeClassifier {
            config,
            tree: None,
            n_classes: 0,
        }
    }

    /// Access to the fitted tree.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

impl Estimator for DecisionTreeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.n_classes = infer_n_classes(y);
        self.tree = Some(Tree::fit(x, y, None, self.n_classes, &self.config)?);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| volcanoml_linalg::stats::argmax(p.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let tree = self.tree.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != tree.n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                tree.n_features(),
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for i in 0..x.rows() {
            let v = tree.predict_row(x.row(i));
            out.row_mut(i).copy_from_slice(v);
        }
        Ok(out)
    }
}

/// Single-tree regressor.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    tree: Option<Tree>,
}

impl DecisionTreeRegressor {
    /// Creates an untrained regressor.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeRegressor { config, tree: None }
    }

    /// Access to the fitted tree.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

impl Estimator for DecisionTreeRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        let mut config = self.config.clone();
        config.criterion = Criterion::Mse;
        self.tree = Some(Tree::fit(x, y, None, 1, &config)?);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let tree = self.tree.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != tree.n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                tree.n_features(),
                x.cols()
            )));
        }
        Ok((0..x.rows())
            .map(|i| tree.predict_row(x.row(i))[0])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::{accuracy, r2};
    use volcanoml_data::synthetic::{make_piecewise, make_xor};

    #[test]
    fn tree_fits_xor_perfectly() {
        let d = make_xor(300, 2, 4, 0.0, 5);
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&d.x, &d.y).unwrap();
        let acc = accuracy(&d.y, &m.predict(&d.x).unwrap());
        assert!(acc > 0.98, "train accuracy {acc}");
    }

    #[test]
    fn tree_generalizes_on_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn max_depth_limits_tree() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.max_depth = 2;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&d.x, &d.y).unwrap();
        assert!(m.tree().unwrap().depth() <= 2);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.min_samples_leaf = 30;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&d.x, &d.y).unwrap();
        // A 240-sample dataset with 30-sample leaves has at most 8 leaves ->
        // at most 15 nodes.
        assert!(m.tree().unwrap().n_nodes() <= 15);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.criterion = Criterion::Entropy;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "{acc}");
    }

    #[test]
    fn random_split_strategy_learns() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.split_strategy = SplitStrategy::Random;
        cfg.max_depth = 16;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.75, "{acc}");
    }

    #[test]
    fn regressor_fits_piecewise_signal() {
        let d = make_piecewise(400, 3, 3, 0.05, 1);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = DecisionTreeRegressor::new(TreeConfig::regression());
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.85, "r2 {score}");
    }

    #[test]
    fn weighted_fit_shifts_leaf_values() {
        // Two classes at the same x; weights decide the histogram.
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 1.0, 3.0, 3.0];
        let cfg = TreeConfig::classification();
        let tree = Tree::fit(&x, &y, Some(&w), 2, &cfg).unwrap();
        let v = tree.predict_row(&[0.0]);
        assert!((v[1] - 0.75).abs() < 1e-12, "{v:?}");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = vec![1.0; 5];
        let tree = Tree::fit(&x, &y, None, 2, &TreeConfig::classification()).unwrap();
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Log2.resolve(8), 3);
        assert_eq!(MaxFeatures::Fraction(0.5).resolve(10), 5);
        assert_eq!(MaxFeatures::Fraction(0.0).resolve(10), 1);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let d = easy_multiclass();
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_weight_length_mismatch() {
        let x = Matrix::zeros(3, 1);
        let r = Tree::fit(&x, &[0.0, 1.0, 0.0], Some(&[1.0]), 2, &TreeConfig::classification());
        assert!(r.is_err());
    }
}
