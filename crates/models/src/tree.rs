//! CART decision trees (classification and regression).
//!
//! A single implementation handles both tasks: leaves store a value vector —
//! a class-probability histogram for classification, a single mean for
//! regression. Splits are exact (sort-based scan) by default; the
//! [`SplitStrategy::Random`] mode draws thresholds uniformly at random
//! (extra-trees style), which the forest module uses for `ExtraTrees`; the
//! [`SplitStrategy::Histogram`] mode scans per-node bin histograms over a
//! [`BinnedMatrix`] (LightGBM-style) instead of re-sorting, with
//! parent-minus-sibling histogram subtraction and index-range node
//! partitioning. Ensembles bin once and call [`Tree::fit_binned`] per tree.

use crate::binned::BinnedMatrix;
use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use rand::rngs::StdRng;
use rand::RngExt;
use volcanoml_data::rand_util::{rng_from_seed, sample_without_replacement};
use volcanoml_linalg::Matrix;

/// Impurity criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Sum of squared errors (regression).
    Mse,
}

/// How many features to consider per split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// ⌈√d⌉ random features (random-forest default for classification).
    Sqrt,
    /// ⌈log₂ d⌉ random features.
    Log2,
    /// A fixed fraction of features (clamped to at least one).
    Fraction(f64),
}

impl MaxFeatures {
    fn resolve(&self, d: usize) -> usize {
        let m = match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (d as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Fraction(f) => (d as f64 * f).ceil() as usize,
        };
        m.clamp(1, d)
    }
}

/// Threshold-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Exact best split via sorted scan.
    Best,
    /// One uniformly random threshold per candidate feature (extra-trees).
    Random,
    /// Best split over quantile-binned feature values (histogram scan).
    /// Equivalent to `Best` whenever every feature has at most
    /// [`TreeConfig::max_bins`] distinct values; much faster on large data.
    Histogram,
}

/// Tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Impurity criterion; must match the task.
    pub criterion: Criterion,
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Threshold strategy.
    pub split_strategy: SplitStrategy,
    /// Bins per feature for [`SplitStrategy::Histogram`] (ignored otherwise).
    pub max_bins: usize,
    /// RNG seed (feature subsets / random thresholds).
    pub seed: u64,
}

impl TreeConfig {
    /// Sensible classification defaults.
    pub fn classification() -> Self {
        TreeConfig {
            criterion: Criterion::Gini,
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            split_strategy: SplitStrategy::Best,
            max_bins: crate::binned::DEFAULT_MAX_BINS,
            seed: 0,
        }
    }

    /// Sensible regression defaults.
    pub fn regression() -> Self {
        TreeConfig {
            criterion: Criterion::Mse,
            ..TreeConfig::classification()
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// `usize::MAX` marks a leaf.
    feature: usize,
    threshold: f64,
    left: usize,
    right: usize,
    /// Class histogram (classification) or `[mean]` (regression).
    value: Vec<f64>,
}

/// A fitted CART tree. Usually constructed through
/// [`DecisionTreeClassifier`] / [`DecisionTreeRegressor`], or internally by
/// ensembles.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    n_outputs: usize,
    n_features: usize,
}

impl Tree {
    /// Fits a tree on `(x, y)` with optional per-sample weights.
    ///
    /// For classification, `n_outputs` is the class count and `y` holds
    /// class indices; for regression pass `n_outputs = 1`.
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        weights: Option<&[f64]>,
        n_outputs: usize,
        config: &TreeConfig,
    ) -> Result<Tree> {
        check_fit_inputs(x, y)?;
        if let Some(w) = weights {
            if w.len() != y.len() {
                return Err(ModelError::Invalid(format!(
                    "{} weights for {} samples",
                    w.len(),
                    y.len()
                )));
            }
        }
        if config.split_strategy == SplitStrategy::Histogram {
            let bm = BinnedMatrix::from_matrix(x, config.max_bins);
            return Tree::fit_binned(&bm, y, weights, n_outputs, config);
        }
        let mut builder = Builder {
            x,
            y,
            weights,
            n_outputs,
            config,
            nodes: Vec::new(),
            rng: rng_from_seed(config.seed),
        };
        // Zero-weight rows carry no signal and would distort count-based
        // stopping rules (min_samples_*), so they never enter the root.
        let indices: Vec<usize> = match weights {
            Some(w) => (0..x.rows()).filter(|&i| w[i] > 0.0).collect(),
            None => (0..x.rows()).collect(),
        };
        if indices.is_empty() {
            return Err(ModelError::Invalid("all sample weights are zero".into()));
        }
        builder.build(&indices, 0);
        Ok(Tree {
            nodes: builder.nodes,
            n_outputs,
            n_features: x.cols(),
        })
    }

    /// Fits a tree on an already-binned dataset (histogram splits).
    ///
    /// This is the fast path ensembles use: bin once with
    /// [`BinnedMatrix::from_matrix`], then fit every tree against the shared
    /// binned layout. Thresholds are mapped back to raw feature space, so
    /// the fitted tree predicts on raw rows. The `split_strategy` field of
    /// `config` is ignored (this entry point is always histogram-mode);
    /// `max_features`, seeding, and stopping rules behave exactly as in
    /// [`Tree::fit`].
    pub fn fit_binned(
        bm: &BinnedMatrix,
        y: &[f64],
        weights: Option<&[f64]>,
        n_outputs: usize,
        config: &TreeConfig,
    ) -> Result<Tree> {
        let n = bm.n_rows();
        if n == 0 || bm.n_features() == 0 {
            return Err(ModelError::Invalid("empty binned training set".into()));
        }
        if y.len() != n {
            return Err(ModelError::Invalid(format!(
                "{} rows but {} targets",
                n,
                y.len()
            )));
        }
        if let Some(w) = weights {
            if w.len() != n {
                return Err(ModelError::Invalid(format!(
                    "{} weights for {} samples",
                    w.len(),
                    n
                )));
            }
        }
        let idx: Vec<u32> = match weights {
            Some(w) => (0..n).filter(|&i| w[i] > 0.0).map(|i| i as u32).collect(),
            None => (0..n).map(|i| i as u32).collect(),
        };
        if idx.is_empty() {
            return Err(ModelError::Invalid("all sample weights are zero".into()));
        }
        let n_idx = idx.len();
        let channels = if config.criterion == Criterion::Mse {
            REG_CHANNELS
        } else {
            n_outputs + 1
        };
        let mut builder = HistBuilder {
            bm,
            y,
            weights,
            n_outputs,
            config,
            nodes: Vec::new(),
            rng: rng_from_seed(config.seed),
            idx,
            scratch: Vec::with_capacity(n_idx),
            channels,
            pool: Vec::new(),
        };
        builder.build(0, n_idx, 0, None);
        Ok(Tree {
            nodes: builder.nodes,
            n_outputs,
            n_features: bm.n_features(),
        })
    }

    /// Returns the leaf value vector for one sample.
    pub fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            if n.feature == usize::MAX {
                return &n.value;
            }
            node = if row[n.feature] <= n.threshold {
                n.left
            } else {
                n.right
            };
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf values per node (classes or 1).
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Feature count the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            let n = &nodes[i];
            if n.feature == usize::MAX {
                0
            } else {
                1 + walk(nodes, n.left).max(walk(nodes, n.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    weights: Option<&'a [f64]>,
    n_outputs: usize,
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    rng: StdRng,
}

impl Builder<'_> {
    fn weight(&self, i: usize) -> f64 {
        self.weights.map_or(1.0, |w| w[i])
    }

    /// Leaf value: normalized class histogram or weighted mean.
    fn leaf_value(&self, indices: &[usize]) -> Vec<f64> {
        if self.config.criterion == Criterion::Mse {
            let mut sum = 0.0;
            let mut wsum = 0.0;
            for &i in indices {
                let w = self.weight(i);
                sum += w * self.y[i];
                wsum += w;
            }
            vec![if wsum > 0.0 { sum / wsum } else { 0.0 }]
        } else {
            let mut hist = vec![0.0; self.n_outputs];
            let mut wsum = 0.0;
            for &i in indices {
                let w = self.weight(i);
                hist[self.y[i] as usize] += w;
                wsum += w;
            }
            if wsum > 0.0 {
                for h in &mut hist {
                    *h /= wsum;
                }
            }
            hist
        }
    }

    fn impurity_from_stats(&self, hist: &[f64], wsum: f64, sum: f64, sum_sq: f64) -> f64 {
        match self.config.criterion {
            Criterion::Gini => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut g = 1.0;
                for &h in hist {
                    let p = h / wsum;
                    g -= p * p;
                }
                g
            }
            Criterion::Entropy => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut e = 0.0;
                for &h in hist {
                    if h > 0.0 {
                        let p = h / wsum;
                        e -= p * p.log2();
                    }
                }
                e
            }
            Criterion::Mse => {
                if wsum <= 0.0 {
                    0.0
                } else {
                    sum_sq / wsum - (sum / wsum) * (sum / wsum)
                }
            }
        }
    }

    fn is_pure(&self, indices: &[usize]) -> bool {
        let first = self.y[indices[0]];
        indices.iter().all(|&i| (self.y[i] - first).abs() < 1e-12)
    }

    /// Builds the subtree for `indices`, returning the node id.
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let make_leaf = |b: &mut Builder, idx: &[usize]| -> usize {
            let value = b.leaf_value(idx);
            b.nodes.push(Node {
                feature: usize::MAX,
                threshold: 0.0,
                left: 0,
                right: 0,
                value,
            });
            b.nodes.len() - 1
        };

        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || indices.len() < 2 * self.config.min_samples_leaf
            || self.is_pure(indices)
        {
            return make_leaf(self, indices);
        }

        let d = self.x.cols();
        let n_candidates = self.config.max_features.resolve(d);
        let features: Vec<usize> = if n_candidates == d {
            (0..d).collect()
        } else {
            sample_without_replacement(&mut self.rng, d, n_candidates)
        };

        let best = match self.config.split_strategy {
            // Histogram configs are routed to `fit_binned` before this
            // builder runs; the exact scan is the equivalent fallback.
            SplitStrategy::Best | SplitStrategy::Histogram => self.best_split(indices, &features),
            SplitStrategy::Random => self.random_split(indices, &features),
        };

        let Some((feature, threshold)) = best else {
            return make_leaf(self, indices);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.x.get(i, feature) <= threshold);
        if left_idx.len() < self.config.min_samples_leaf
            || right_idx.len() < self.config.min_samples_leaf
        {
            return make_leaf(self, indices);
        }

        // Reserve this node's slot before recursing so child ids are stable.
        let value = self.leaf_value(indices);
        let me = self.nodes.len();
        self.nodes.push(Node {
            feature,
            threshold,
            left: 0,
            right: 0,
            value,
        });
        let left = self.build(&left_idx, depth + 1);
        let right = self.build(&right_idx, depth + 1);
        self.nodes[me].left = left;
        self.nodes[me].right = right;
        me
    }

    /// Exact best split across candidate features (sorted scan).
    fn best_split(&mut self, indices: &[usize], features: &[usize]) -> Option<(usize, f64)> {
        let min_leaf = self.config.min_samples_leaf;
        let is_mse = self.config.criterion == Criterion::Mse;
        let k = if is_mse { 0 } else { self.n_outputs };

        // Parent statistics.
        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        for &i in indices {
            let w = self.weight(i);
            total_w += w;
            if is_mse {
                total_sum += w * self.y[i];
                total_sq += w * self.y[i] * self.y[i];
            } else {
                total_hist[self.y[i] as usize] += w;
            }
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted: Vec<usize> = Vec::with_capacity(indices.len());
        for &f in features {
            sorted.clear();
            sorted.extend_from_slice(indices);
            sorted.sort_by(|&a, &b| self.x.get(a, f).total_cmp(&self.x.get(b, f)));
            let mut left_hist = vec![0.0; k];
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            for pos in 0..sorted.len() - 1 {
                let i = sorted[pos];
                let w = self.weight(i);
                lw += w;
                if is_mse {
                    lsum += w * self.y[i];
                    lsq += w * self.y[i] * self.y[i];
                } else {
                    left_hist[self.y[i] as usize] += w;
                }
                let n_left = pos + 1;
                let n_right = sorted.len() - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let a = self.x.get(i, f);
                let b = self.x.get(sorted[pos + 1], f);
                if b - a < 1e-12 {
                    continue; // no threshold separates identical values
                }
                let rw = total_w - lw;
                let (left_imp, right_imp) = if is_mse {
                    (
                        self.impurity_from_stats(&[], lw, lsum, lsq),
                        self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                    )
                } else {
                    let right_hist: Vec<f64> = total_hist
                        .iter()
                        .zip(left_hist.iter())
                        .map(|(t, l)| t - l)
                        .collect();
                    (
                        self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                        self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                    )
                };
                let weighted = (lw * left_imp + rw * right_imp) / total_w;
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, (a + b) / 2.0, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    /// Extra-trees split: one random threshold per feature, pick the best.
    fn random_split(&mut self, indices: &[usize], features: &[usize]) -> Option<(usize, f64)> {
        let is_mse = self.config.criterion == Criterion::Mse;
        let k = if is_mse { 0 } else { self.n_outputs };
        let min_leaf = self.config.min_samples_leaf;

        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        for &i in indices {
            let w = self.weight(i);
            total_w += w;
            if is_mse {
                total_sum += w * self.y[i];
                total_sq += w * self.y[i] * self.y[i];
            } else {
                total_hist[self.y[i] as usize] += w;
            }
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in features {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in indices {
                let v = self.x.get(i, f);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo < 1e-12 {
                continue;
            }
            let threshold = lo + self.rng.random::<f64>() * (hi - lo);
            let mut left_hist = vec![0.0; k];
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            let mut n_left = 0usize;
            for &i in indices {
                if self.x.get(i, f) <= threshold {
                    let w = self.weight(i);
                    n_left += 1;
                    lw += w;
                    if is_mse {
                        lsum += w * self.y[i];
                        lsq += w * self.y[i] * self.y[i];
                    } else {
                        left_hist[self.y[i] as usize] += w;
                    }
                }
            }
            let n_right = indices.len() - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let rw = total_w - lw;
            let (left_imp, right_imp) = if is_mse {
                (
                    self.impurity_from_stats(&[], lw, lsum, lsq),
                    self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                )
            } else {
                let right_hist: Vec<f64> = total_hist
                    .iter()
                    .zip(left_hist.iter())
                    .map(|(t, l)| t - l)
                    .collect();
                (
                    self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                    self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                )
            };
            let weighted = (lw * left_imp + rw * right_imp) / total_w;
            let gain = parent_impurity - weighted;
            if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                best = Some((f, threshold, gain));
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

/// Channel count of regression histograms: `[wsum, w·y, w·y², count]`.
const REG_CHANNELS: usize = 4;

/// Per-feature bin histograms for one node, parallel to its candidate
/// feature list; entry `fi` has `n_bins(features[fi]) * channels` floats.
type NodeHists = Vec<Vec<f64>>;

/// Histogram-mode tree builder.
///
/// Rows live in a single shared index buffer (`idx`); each node owns the
/// contiguous range `idx[start..end]` and splitting stably partitions that
/// range in place (via `scratch`), so no per-node index vectors are
/// allocated. Split search scans per-bin statistics: classification bins
/// carry per-class weight sums plus a row count, regression bins carry
/// `[wsum, w·y, w·y², count]`. When both children can still split and the
/// candidate set is all features, only the smaller child's histograms are
/// built from data — the larger child's are the parent's minus the
/// smaller's (LightGBM's subtraction trick).
struct HistBuilder<'a> {
    bm: &'a BinnedMatrix,
    y: &'a [f64],
    weights: Option<&'a [f64]>,
    n_outputs: usize,
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    rng: StdRng,
    idx: Vec<u32>,
    scratch: Vec<u32>,
    channels: usize,
    /// Retired histogram buffers, reused by later nodes. The tree visits
    /// thousands of small nodes; without pooling, per-node allocation of
    /// `n_candidates` bin vectors dominates deep-tree fit time.
    pool: Vec<Vec<f64>>,
}

impl HistBuilder<'_> {
    fn weight(&self, i: usize) -> f64 {
        self.weights.map_or(1.0, |w| w[i])
    }

    fn is_mse(&self) -> bool {
        self.config.criterion == Criterion::Mse
    }

    fn leaf_value(&self, start: usize, end: usize) -> Vec<f64> {
        if self.is_mse() {
            let mut sum = 0.0;
            let mut wsum = 0.0;
            for &i in &self.idx[start..end] {
                let w = self.weight(i as usize);
                sum += w * self.y[i as usize];
                wsum += w;
            }
            vec![if wsum > 0.0 { sum / wsum } else { 0.0 }]
        } else {
            let mut hist = vec![0.0; self.n_outputs];
            let mut wsum = 0.0;
            for &i in &self.idx[start..end] {
                let w = self.weight(i as usize);
                hist[self.y[i as usize] as usize] += w;
                wsum += w;
            }
            if wsum > 0.0 {
                for h in &mut hist {
                    *h /= wsum;
                }
            }
            hist
        }
    }

    fn impurity_from_stats(&self, hist: &[f64], wsum: f64, sum: f64, sum_sq: f64) -> f64 {
        match self.config.criterion {
            Criterion::Gini => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut g = 1.0;
                for &h in hist {
                    let p = h / wsum;
                    g -= p * p;
                }
                g
            }
            Criterion::Entropy => {
                if wsum <= 0.0 {
                    return 0.0;
                }
                let mut e = 0.0;
                for &h in hist {
                    if h > 0.0 {
                        let p = h / wsum;
                        e -= p * p.log2();
                    }
                }
                e
            }
            Criterion::Mse => {
                if wsum <= 0.0 {
                    0.0
                } else {
                    sum_sq / wsum - (sum / wsum) * (sum / wsum)
                }
            }
        }
    }

    fn is_pure(&self, start: usize, end: usize) -> bool {
        let first = self.y[self.idx[start] as usize];
        self.idx[start..end]
            .iter()
            .all(|&i| (self.y[i as usize] - first).abs() < 1e-12)
    }

    fn make_leaf(&mut self, start: usize, end: usize) -> usize {
        let value = self.leaf_value(start, end);
        self.nodes.push(Node {
            feature: usize::MAX,
            threshold: 0.0,
            left: 0,
            right: 0,
            value,
        });
        self.nodes.len() - 1
    }

    /// One pass over the node's rows fills every candidate feature's bins.
    fn build_hists(&mut self, start: usize, end: usize, features: &[usize]) -> NodeHists {
        crate::binned::stats::HIST_NODE_SCANS
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let is_mse = self.is_mse();
        let ch = self.channels;
        let bm = self.bm;
        let mut out = Vec::with_capacity(features.len());
        for &f in features {
            let col = bm.column(f);
            let mut h = self.pool.pop().unwrap_or_default();
            h.clear();
            h.resize(bm.n_bins(f) * ch, 0.0);
            for &i in &self.idx[start..end] {
                let i = i as usize;
                let w = self.weight(i);
                let base = col[i] as usize * ch;
                if is_mse {
                    h[base] += w;
                    h[base + 1] += w * self.y[i];
                    h[base + 2] += w * self.y[i] * self.y[i];
                    h[base + 3] += 1.0;
                } else {
                    h[base + self.y[i] as usize] += w;
                    h[base + ch - 1] += 1.0;
                }
            }
            out.push(h);
        }
        out
    }

    /// Returns a node's histogram buffers to the pool.
    fn recycle(&mut self, hists: NodeHists) {
        self.pool.extend(hists);
    }

    /// Scans bin boundaries for the best split; returns the winning
    /// candidate's position in `features` and the boundary bin.
    fn scan_split(&self, hists: &NodeHists, n_node: usize) -> Option<(usize, usize)> {
        let is_mse = self.is_mse();
        let ch = self.channels;
        let k = if is_mse { 0 } else { self.n_outputs };
        let min_leaf = self.config.min_samples_leaf.max(1);

        // Parent statistics = any feature's histogram summed over bins.
        let mut total_hist = vec![0.0; k];
        let (mut total_w, mut total_sum, mut total_sq) = (0.0, 0.0, 0.0);
        for bin in hists[0].chunks_exact(ch) {
            if is_mse {
                total_w += bin[0];
                total_sum += bin[1];
                total_sq += bin[2];
            } else {
                for (t, b) in total_hist.iter_mut().zip(bin[..k].iter()) {
                    *t += b;
                }
            }
        }
        if !is_mse {
            total_w = total_hist.iter().sum();
        }
        let parent_impurity = self.impurity_from_stats(&total_hist, total_w, total_sum, total_sq);
        if parent_impurity <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, usize, f64)> = None; // (feature pos, bin, gain)
        let mut left_hist = vec![0.0; k];
        let mut right_hist = vec![0.0; k];
        for (fi, h) in hists.iter().enumerate() {
            let nb = h.len() / ch;
            if nb < 2 {
                continue;
            }
            left_hist.iter_mut().for_each(|v| *v = 0.0);
            let (mut lw, mut lsum, mut lsq) = (0.0, 0.0, 0.0);
            let mut n_left = 0usize;
            for b in 0..nb - 1 {
                let bin = &h[b * ch..(b + 1) * ch];
                // An empty bin leaves the partition unchanged, so boundary
                // `b` duplicates boundary `b - 1`; only the first boundary
                // of each run (where the added bin is non-empty) can win
                // under the strictly-greater gain rule. Skipping the rest
                // is what makes tiny deep nodes cheap despite 255 bins.
                if bin[ch - 1] == 0.0 {
                    continue;
                }
                if is_mse {
                    lw += bin[0];
                    lsum += bin[1];
                    lsq += bin[2];
                } else {
                    for (l, v) in left_hist.iter_mut().zip(bin[..k].iter()) {
                        *l += v;
                        lw += v;
                    }
                }
                n_left += bin[ch - 1] as usize;
                let n_right = n_node - n_left;
                if n_left < min_leaf || n_right < min_leaf {
                    continue;
                }
                let rw = total_w - lw;
                let (left_imp, right_imp) = if is_mse {
                    (
                        self.impurity_from_stats(&[], lw, lsum, lsq),
                        self.impurity_from_stats(&[], rw, total_sum - lsum, total_sq - lsq),
                    )
                } else {
                    for ((r, t), l) in right_hist
                        .iter_mut()
                        .zip(total_hist.iter())
                        .zip(left_hist.iter())
                    {
                        *r = t - l;
                    }
                    (
                        self.impurity_from_stats(&left_hist, lw, 0.0, 0.0),
                        self.impurity_from_stats(&right_hist, rw, 0.0, 0.0),
                    )
                };
                let weighted = (lw * left_imp + rw * right_imp) / total_w;
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((fi, b, gain));
                }
            }
        }
        best.map(|(fi, b, _)| (fi, b))
    }

    /// Stably partitions `idx[start..end]` on `code <= bin`; returns the
    /// boundary position (start of the right child's range).
    fn partition(&mut self, start: usize, end: usize, feature: usize, bin: usize) -> usize {
        let col = self.bm.column(feature);
        self.scratch.clear();
        let mut write = start;
        for r in start..end {
            let i = self.idx[r];
            if (col[i as usize] as usize) <= bin {
                self.idx[write] = i;
                write += 1;
            } else {
                self.scratch.push(i);
            }
        }
        self.idx[write..end].copy_from_slice(&self.scratch);
        write
    }

    /// Could a node of `n` rows at `depth` still be split?
    fn may_split(&self, n: usize, depth: usize) -> bool {
        depth < self.config.max_depth
            && n >= self.config.min_samples_split
            && n >= 2 * self.config.min_samples_leaf
    }

    /// Builds the subtree for `idx[start..end]`, returning the node id.
    /// `inherited` carries histograms precomputed by the parent (the
    /// subtraction trick); it is only ever `Some` in all-features mode,
    /// where parent and child candidate sets coincide.
    fn build(&mut self, start: usize, end: usize, depth: usize, inherited: Option<NodeHists>) -> usize {
        let n_node = end - start;
        if !self.may_split(n_node, depth) || self.is_pure(start, end) {
            return self.make_leaf(start, end);
        }

        let d = self.bm.n_features();
        let n_candidates = self.config.max_features.resolve(d);
        let all_features = n_candidates == d;
        let features: Vec<usize> = if all_features {
            (0..d).collect()
        } else {
            sample_without_replacement(&mut self.rng, d, n_candidates)
        };

        let hists = match inherited {
            Some(h) => h,
            None => self.build_hists(start, end, &features),
        };

        let Some((fpos, bin)) = self.scan_split(&hists, n_node) else {
            self.recycle(hists);
            return self.make_leaf(start, end);
        };
        let feature = features[fpos];
        let threshold = self.bm.cut(feature, bin);
        let mid = self.partition(start, end, feature, bin);
        let (ln, rn) = (mid - start, end - mid);
        if ln < self.config.min_samples_leaf || rn < self.config.min_samples_leaf {
            self.recycle(hists);
            return self.make_leaf(start, end);
        }

        let value = self.leaf_value(start, end);
        let me = self.nodes.len();
        self.nodes.push(Node {
            feature,
            threshold,
            left: 0,
            right: 0,
            value,
        });

        let subtract = all_features
            && self.may_split(ln, depth + 1)
            && self.may_split(rn, depth + 1);
        let (left_h, right_h) = if subtract {
            let (s_start, s_end, small_is_left) = if ln <= rn {
                (start, mid, true)
            } else {
                (mid, end, false)
            };
            let small = self.build_hists(s_start, s_end, &features);
            let mut large = hists; // reuse the parent's allocation
            for (lh, sh) in large.iter_mut().zip(small.iter()) {
                for (a, b) in lh.iter_mut().zip(sh.iter()) {
                    *a -= b;
                }
            }
            if small_is_left {
                (Some(small), Some(large))
            } else {
                (Some(large), Some(small))
            }
        } else {
            self.recycle(hists);
            (None, None)
        };

        let left = self.build(start, mid, depth + 1, left_h);
        let right = self.build(mid, end, depth + 1, right_h);
        self.nodes[me].left = left;
        self.nodes[me].right = right;
        me
    }
}

/// Single-tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    tree: Option<Tree>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Creates an untrained classifier.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeClassifier {
            config,
            tree: None,
            n_classes: 0,
        }
    }

    /// Access to the fitted tree.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

impl Estimator for DecisionTreeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.n_classes = infer_n_classes(y);
        self.tree = Some(Tree::fit(x, y, None, self.n_classes, &self.config)?);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| volcanoml_linalg::stats::argmax(p.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let tree = self.tree.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != tree.n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                tree.n_features(),
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for i in 0..x.rows() {
            let v = tree.predict_row(x.row(i));
            out.row_mut(i).copy_from_slice(v);
        }
        Ok(out)
    }
}

/// Single-tree regressor.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    /// Tree hyper-parameters.
    pub config: TreeConfig,
    tree: Option<Tree>,
}

impl DecisionTreeRegressor {
    /// Creates an untrained regressor.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTreeRegressor { config, tree: None }
    }

    /// Access to the fitted tree.
    pub fn tree(&self) -> Option<&Tree> {
        self.tree.as_ref()
    }
}

impl Estimator for DecisionTreeRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        let mut config = self.config.clone();
        config.criterion = Criterion::Mse;
        self.tree = Some(Tree::fit(x, y, None, 1, &config)?);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let tree = self.tree.as_ref().ok_or(ModelError::NotFitted)?;
        if x.cols() != tree.n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                tree.n_features(),
                x.cols()
            )));
        }
        Ok((0..x.rows())
            .map(|i| tree.predict_row(x.row(i))[0])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::{accuracy, r2};
    use volcanoml_data::synthetic::{make_piecewise, make_xor};

    #[test]
    fn tree_fits_xor_perfectly() {
        let d = make_xor(300, 2, 4, 0.0, 5);
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&d.x, &d.y).unwrap();
        let acc = accuracy(&d.y, &m.predict(&d.x).unwrap());
        assert!(acc > 0.98, "train accuracy {acc}");
    }

    #[test]
    fn tree_generalizes_on_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn max_depth_limits_tree() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.max_depth = 2;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&d.x, &d.y).unwrap();
        assert!(m.tree().unwrap().depth() <= 2);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.min_samples_leaf = 30;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&d.x, &d.y).unwrap();
        // A 240-sample dataset with 30-sample leaves has at most 8 leaves ->
        // at most 15 nodes.
        assert!(m.tree().unwrap().n_nodes() <= 15);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.criterion = Criterion::Entropy;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "{acc}");
    }

    #[test]
    fn random_split_strategy_learns() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.split_strategy = SplitStrategy::Random;
        cfg.max_depth = 16;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.75, "{acc}");
    }

    #[test]
    fn regressor_fits_piecewise_signal() {
        let d = make_piecewise(400, 3, 3, 0.05, 1);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = DecisionTreeRegressor::new(TreeConfig::regression());
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.85, "r2 {score}");
    }

    #[test]
    fn weighted_fit_shifts_leaf_values() {
        // Two classes at the same x; weights decide the histogram.
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 1.0, 3.0, 3.0];
        let cfg = TreeConfig::classification();
        let tree = Tree::fit(&x, &y, Some(&w), 2, &cfg).unwrap();
        let v = tree.predict_row(&[0.0]);
        assert!((v[1] - 0.75).abs() < 1e-12, "{v:?}");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = vec![1.0; 5];
        let tree = Tree::fit(&x, &y, None, 2, &TreeConfig::classification()).unwrap();
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Log2.resolve(8), 3);
        assert_eq!(MaxFeatures::Fraction(0.5).resolve(10), 5);
        assert_eq!(MaxFeatures::Fraction(0.0).resolve(10), 1);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let d = easy_multiclass();
        let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_weight_length_mismatch() {
        let x = Matrix::zeros(3, 1);
        let r = Tree::fit(&x, &[0.0, 1.0, 0.0], Some(&[1.0]), 2, &TreeConfig::classification());
        assert!(r.is_err());
    }

    /// With enough bins every distinct value gets its own bin and the cut
    /// points are exactly the exact splitter's candidate midpoints, so the
    /// two strategies must grow identical trees.
    fn assert_histogram_matches_best(
        x: &Matrix,
        y: &[f64],
        n_outputs: usize,
        base: &TreeConfig,
    ) {
        let mut exact_cfg = base.clone();
        exact_cfg.split_strategy = SplitStrategy::Best;
        let mut hist_cfg = base.clone();
        hist_cfg.split_strategy = SplitStrategy::Histogram;
        hist_cfg.max_bins = u16::MAX as usize + 1;
        let exact = Tree::fit(x, y, None, n_outputs, &exact_cfg).unwrap();
        let hist = Tree::fit(x, y, None, n_outputs, &hist_cfg).unwrap();
        assert_eq!(exact.n_nodes(), hist.n_nodes(), "node counts diverge");
        for i in 0..x.rows() {
            let a = exact.predict_row(x.row(i));
            let b = hist.predict_row(x.row(i));
            for (va, vb) in a.iter().zip(b.iter()) {
                assert!((va - vb).abs() < 1e-9, "row {i}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn histogram_matches_best_on_classification() {
        let d = easy_binary();
        assert_histogram_matches_best(&d.x, &d.y, 2, &TreeConfig::classification());
        let m = easy_multiclass();
        assert_histogram_matches_best(&m.x, &m.y, 3, &TreeConfig::classification());
        let mut entropy = TreeConfig::classification();
        entropy.criterion = Criterion::Entropy;
        assert_histogram_matches_best(&d.x, &d.y, 2, &entropy);
    }

    #[test]
    fn histogram_matches_best_on_regression() {
        let d = make_piecewise(300, 3, 3, 0.05, 9);
        assert_histogram_matches_best(&d.x, &d.y, 1, &TreeConfig::regression());
    }

    #[test]
    fn histogram_matches_best_with_min_samples_leaf() {
        let d = easy_binary();
        let mut cfg = TreeConfig::classification();
        cfg.min_samples_leaf = 7;
        cfg.max_depth = 6;
        assert_histogram_matches_best(&d.x, &d.y, 2, &cfg);
    }

    #[test]
    fn histogram_with_few_bins_still_learns() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = TreeConfig::classification();
        cfg.split_strategy = SplitStrategy::Histogram;
        cfg.max_bins = 16;
        let mut m = DecisionTreeClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn binned_fit_respects_weights() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let w = vec![1.0, 1.0, 3.0, 3.0];
        let bm = BinnedMatrix::from_matrix(&x, 255);
        let tree = Tree::fit_binned(&bm, &y, Some(&w), 2, &TreeConfig::classification()).unwrap();
        let v = tree.predict_row(&[0.0]);
        assert!((v[1] - 0.75).abs() < 1e-12, "{v:?}");
    }

    #[test]
    fn zero_weight_rows_are_ignored() {
        // Rows 4..8 would flip the majority class were they not zeroed out.
        let x = Matrix::from_vec(8, 1, vec![0.0; 8]).unwrap();
        let y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let w = vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        for strategy in [SplitStrategy::Best, SplitStrategy::Histogram] {
            let mut cfg = TreeConfig::classification();
            cfg.split_strategy = strategy;
            let tree = Tree::fit(&x, &y, Some(&w), 2, &cfg).unwrap();
            let v = tree.predict_row(&[0.0]);
            assert!((v[0] - 0.75).abs() < 1e-12, "{strategy:?}: {v:?}");
        }
        let all_zero = Tree::fit(&x, &y, Some(&[0.0; 8]), 2, &TreeConfig::classification());
        assert!(all_zero.is_err());
    }
}
