//! Linear and quadratic discriminant analysis.
//!
//! LDA assumes a shared covariance matrix across classes; QDA fits one per
//! class. Both support a shrinkage parameter that blends the empirical
//! covariance with a scaled identity — essential on small or collinear
//! datasets where the covariance estimate is singular.

use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use volcanoml_linalg::{cholesky_decompose, cholesky_solve, Matrix};

fn class_partition(y: &[f64], k: usize) -> Vec<Vec<usize>> {
    let mut by_class = vec![Vec::new(); k];
    for (i, &label) in y.iter().enumerate() {
        by_class[label as usize].push(i);
    }
    by_class
}

fn class_means(x: &Matrix, by_class: &[Vec<usize>]) -> Vec<Vec<f64>> {
    let d = x.cols();
    by_class
        .iter()
        .map(|members| {
            let mut m = vec![0.0; d];
            for &i in members {
                for (mj, &v) in m.iter_mut().zip(x.row(i).iter()) {
                    *mj += v;
                }
            }
            if !members.is_empty() {
                for mj in m.iter_mut() {
                    *mj /= members.len() as f64;
                }
            }
            m
        })
        .collect()
}

/// Applies shrinkage: `(1 - s) Σ + s (tr Σ / d) I`.
fn shrink(cov: &mut Matrix, shrinkage: f64) {
    let d = cov.rows();
    let trace: f64 = (0..d).map(|i| cov.get(i, i)).sum();
    let mu = trace / d as f64;
    let s = shrinkage.clamp(0.0, 1.0);
    for i in 0..d {
        for j in 0..d {
            let v = cov.get(i, j) * (1.0 - s) + if i == j { s * mu } else { 0.0 };
            cov.set(i, j, v);
        }
    }
    // Tiny diagonal jitter so Cholesky always succeeds.
    for i in 0..d {
        let v = cov.get(i, i) + 1e-8 + 1e-8 * mu;
        cov.set(i, i, v);
    }
}

/// Linear discriminant analysis.
#[derive(Debug, Clone)]
pub struct Lda {
    /// Shrinkage toward the scaled identity, in `[0, 1]`.
    pub shrinkage: f64,
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    // Cholesky factor of the pooled covariance.
    chol: Option<Matrix>,
    // Per-class solved terms Σ⁻¹ μ_c.
    solved_means: Vec<Vec<f64>>,
}

impl Lda {
    /// Creates an untrained model.
    pub fn new(shrinkage: f64) -> Self {
        Lda {
            shrinkage,
            priors: Vec::new(),
            means: Vec::new(),
            chol: None,
            solved_means: Vec::new(),
        }
    }

    fn scores(&self, row: &[f64]) -> Result<Vec<f64>> {
        let chol = self.chol.as_ref().ok_or(ModelError::NotFitted)?;
        if row.len() != chol.rows() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                chol.rows(),
                row.len()
            )));
        }
        // Linear discriminant: x' Σ⁻¹ μ_c − ½ μ_c' Σ⁻¹ μ_c + ln π_c.
        Ok((0..self.priors.len())
            .map(|c| {
                let sm = &self.solved_means[c];
                let xm: f64 = row.iter().zip(sm.iter()).map(|(a, b)| a * b).sum();
                let mm: f64 = self.means[c].iter().zip(sm.iter()).map(|(a, b)| a * b).sum();
                xm - 0.5 * mm + self.priors[c].max(1e-12).ln()
            })
            .collect())
    }
}

impl Estimator for Lda {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        let n = x.rows();
        let d = x.cols();
        let by_class = class_partition(y, k);
        let means = class_means(x, &by_class);

        // Pooled within-class covariance.
        let mut cov = Matrix::zeros(d, d);
        for (c, members) in by_class.iter().enumerate() {
            for &i in members {
                let row = x.row(i);
                for a in 0..d {
                    let da = row[a] - means[c][a];
                    for b in a..d {
                        let db = row[b] - means[c][b];
                        let v = cov.get(a, b) + da * db;
                        cov.set(a, b, v);
                    }
                }
            }
        }
        for a in 0..d {
            for b in 0..a {
                let v = cov.get(b, a);
                cov.set(a, b, v);
            }
        }
        cov.scale(1.0 / (n as f64 - k as f64).max(1.0));
        shrink(&mut cov, self.shrinkage);

        let chol = cholesky_decompose(&cov).map_err(ModelError::from)?;
        let solved_means: Vec<Vec<f64>> = means
            .iter()
            .map(|m| cholesky_solve(&chol, m).map_err(ModelError::from))
            .collect::<Result<_>>()?;

        self.priors = by_class.iter().map(|m| m.len() as f64 / n as f64).collect();
        self.means = means;
        self.chol = Some(chol);
        self.solved_means = solved_means;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let s = self.scores(x.row(i))?;
            out.push(volcanoml_linalg::stats::argmax(&s).unwrap_or(0) as f64);
        }
        Ok(out)
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let k = self.priors.len().max(1);
        let mut out = Matrix::zeros(x.rows(), k);
        for i in 0..x.rows() {
            let s = self.scores(x.row(i))?;
            let max = s.iter().fold(f64::MIN, |m, &v| m.max(v));
            let row = out.row_mut(i);
            let mut sum = 0.0;
            for (o, &v) in row.iter_mut().zip(s.iter()) {
                *o = (v - max).exp();
                sum += *o;
            }
            if sum > 0.0 {
                for o in row.iter_mut() {
                    *o /= sum;
                }
            }
        }
        Ok(out)
    }
}

/// Quadratic discriminant analysis.
#[derive(Debug, Clone)]
pub struct Qda {
    /// Per-class covariance regularization toward the scaled identity.
    pub reg_param: f64,
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    chols: Vec<Matrix>,
    log_dets: Vec<f64>,
}

impl Qda {
    /// Creates an untrained model.
    pub fn new(reg_param: f64) -> Self {
        Qda {
            reg_param,
            priors: Vec::new(),
            means: Vec::new(),
            chols: Vec::new(),
            log_dets: Vec::new(),
        }
    }

    fn scores(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.chols.is_empty() {
            return Err(ModelError::NotFitted);
        }
        if row.len() != self.chols[0].rows() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                self.chols[0].rows(),
                row.len()
            )));
        }
        Ok((0..self.priors.len())
            .map(|c| {
                let diff: Vec<f64> = row
                    .iter()
                    .zip(self.means[c].iter())
                    .map(|(a, b)| a - b)
                    .collect();
                // Mahalanobis via Cholesky solve.
                let solved = cholesky_solve(&self.chols[c], &diff).unwrap_or_else(|_| vec![0.0; diff.len()]);
                let maha: f64 = diff.iter().zip(solved.iter()).map(|(a, b)| a * b).sum();
                -0.5 * (self.log_dets[c] + maha) + self.priors[c].max(1e-12).ln()
            })
            .collect())
    }
}

impl Estimator for Qda {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_inputs(x, y)?;
        let k = infer_n_classes(y);
        let n = x.rows();
        let d = x.cols();
        let by_class = class_partition(y, k);
        let means = class_means(x, &by_class);

        let mut chols = Vec::with_capacity(k);
        let mut log_dets = Vec::with_capacity(k);
        for (c, members) in by_class.iter().enumerate() {
            let mut cov = Matrix::zeros(d, d);
            for &i in members {
                let row = x.row(i);
                for a in 0..d {
                    let da = row[a] - means[c][a];
                    for b in a..d {
                        let db = row[b] - means[c][b];
                        let v = cov.get(a, b) + da * db;
                        cov.set(a, b, v);
                    }
                }
            }
            for a in 0..d {
                for b in 0..a {
                    let v = cov.get(b, a);
                    cov.set(a, b, v);
                }
            }
            cov.scale(1.0 / (members.len() as f64 - 1.0).max(1.0));
            shrink(&mut cov, self.reg_param);
            let chol = cholesky_decompose(&cov).map_err(ModelError::from)?;
            // log|Σ| = 2 Σ ln L_ii.
            let log_det: f64 = (0..d).map(|i| chol.get(i, i).max(1e-300).ln()).sum::<f64>() * 2.0;
            chols.push(chol);
            log_dets.push(log_det);
        }
        self.priors = by_class.iter().map(|m| m.len() as f64 / n as f64).collect();
        self.means = means;
        self.chols = chols;
        self.log_dets = log_dets;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let s = self.scores(x.row(i))?;
            out.push(volcanoml_linalg::stats::argmax(&s).unwrap_or(0) as f64);
        }
        Ok(out)
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let k = self.priors.len().max(1);
        let mut out = Matrix::zeros(x.rows(), k);
        for i in 0..x.rows() {
            let s = self.scores(x.row(i))?;
            let max = s.iter().fold(f64::MIN, |m, &v| m.max(v));
            let row = out.row_mut(i);
            let mut sum = 0.0;
            for (o, &v) in row.iter_mut().zip(s.iter()) {
                *o = (v - max).exp();
                sum += *o;
            }
            if sum > 0.0 {
                for o in row.iter_mut() {
                    *o /= sum;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_binary, easy_multiclass, split};
    use volcanoml_data::metrics::accuracy;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};

    #[test]
    fn lda_learns_linear_boundary() {
        let d = easy_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = Lda::new(0.1);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn lda_multiclass() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = Lda::new(0.05);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn lda_survives_collinear_features_with_shrinkage() {
        // Redundant features make the pooled covariance singular.
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 150,
                n_features: 10,
                n_informative: 3,
                n_redundant: 6,
                n_classes: 2,
                class_sep: 1.5,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            21,
        );
        let mut m = Lda::new(0.3);
        m.fit(&d.x, &d.y).unwrap();
        let acc = accuracy(&d.y, &m.predict(&d.x).unwrap());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn qda_learns_different_covariances() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = Qda::new(0.05);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_normalized() {
        let d = easy_binary();
        let mut m = Lda::new(0.1);
        m.fit(&d.x, &d.y).unwrap();
        let p = m.predict_proba(&d.x).unwrap();
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        let mut q = Qda::new(0.1);
        q.fit(&d.x, &d.y).unwrap();
        let pq = q.predict_proba(&d.x).unwrap();
        for i in 0..pq.rows() {
            let s: f64 = pq.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unfitted_errors() {
        assert!(Lda::new(0.1).predict(&Matrix::zeros(1, 2)).is_err());
        assert!(Qda::new(0.1).predict(&Matrix::zeros(1, 2)).is_err());
    }
}
