//! Bagged tree ensembles: random forests and extra-trees, for both tasks.
//!
//! The regressor exposes per-tree predictions ([`ForestRegressor::predict_per_tree`]),
//! which the BO crate's probabilistic random-forest surrogate uses to obtain
//! predictive variance.

use crate::binned::BinnedMatrix;
use crate::parallel::parallel_map;
use crate::tree::{Criterion, HistKernel, MaxFeatures, SplitStrategy, Tree, TreeConfig};
use crate::{check_fit_inputs, infer_n_classes, Estimator, ModelError, Result};
use volcanoml_data::rand_util::{derive_seed, rng_from_seed};
use rand::RngExt;
use volcanoml_linalg::{Matrix, MatrixF32};

/// Shared forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_estimators: usize,
    /// Per-tree maximum depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples to split.
    pub min_samples_split: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Bootstrap resampling of rows (classic RF); extra-trees typically
    /// disable it.
    pub bootstrap: bool,
    /// `Best` for random forest, `Random` for extra-trees.
    pub split_strategy: SplitStrategy,
    /// Impurity criterion (Gini/Entropy for classification, Mse for
    /// regression — set automatically by the typed wrappers).
    pub criterion: Criterion,
    /// Bins per feature when `split_strategy` is `Histogram` (the dataset
    /// is binned once and shared by all trees).
    pub max_bins: usize,
    /// Worker threads for tree fitting. Trees are independently seeded, so
    /// results are bit-identical for any value (1 = serial).
    pub n_jobs: usize,
    /// Narrow features to `f32` storage before histogram binning, halving
    /// raw-matrix read traffic. Cut points shift by at most one `f32` ulp,
    /// so fitted trees are statistically (not bitwise) equivalent; ignored
    /// outside `Histogram` mode.
    pub f32_binning: bool,
    /// RNG seed.
    pub seed: u64,
}

impl ForestConfig {
    /// Random-forest classification defaults.
    pub fn random_forest() -> Self {
        ForestConfig {
            n_estimators: 50,
            max_depth: 14,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            split_strategy: SplitStrategy::Best,
            criterion: Criterion::Gini,
            max_bins: crate::binned::DEFAULT_MAX_BINS,
            n_jobs: 1,
            f32_binning: false,
            seed: 0,
        }
    }

    /// Extra-trees defaults.
    pub fn extra_trees() -> Self {
        ForestConfig {
            bootstrap: false,
            split_strategy: SplitStrategy::Random,
            ..ForestConfig::random_forest()
        }
    }
}

fn fit_trees(
    x: &Matrix,
    y: &[f64],
    n_outputs: usize,
    config: &ForestConfig,
) -> Result<Vec<Tree>> {
    check_fit_inputs(x, y)?;
    let n = x.rows();
    // Histogram mode: quantize once (feature-parallel under the same job
    // budget as tree fitting), share the layout across all trees.
    let binned = if config.split_strategy == SplitStrategy::Histogram {
        Some(if config.f32_binning {
            let xf = MatrixF32::from_matrix(x);
            BinnedMatrix::from_matrix_f32(&xf, config.max_bins, config.n_jobs)
        } else {
            BinnedMatrix::from_matrix_jobs(x, config.max_bins, config.n_jobs)
        })
    } else {
        None
    };
    let fit_one = |t: usize| -> Result<Tree> {
        let tree_cfg = TreeConfig {
            criterion: config.criterion,
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            min_samples_leaf: config.min_samples_leaf,
            max_features: config.max_features,
            split_strategy: config.split_strategy,
            max_bins: config.max_bins,
            // The job budget is already spent across trees; nested
            // feature-parallel fills would oversubscribe the cores.
            hist_n_jobs: 1,
            hist_kernel: HistKernel::Flat,
            seed: derive_seed(config.seed, t as u64),
        };
        // Bootstrap as multinomial draw counts used as per-row weights:
        // the same resample distribution as materializing a resampled
        // matrix, without the O(n·d) copy per tree.
        let weights: Option<Vec<f64>> = if config.bootstrap {
            let mut rng = rng_from_seed(derive_seed(config.seed, 5000 + t as u64));
            let mut counts = vec![0.0; n];
            for _ in 0..n {
                counts[rng.random_range(0..n)] += 1.0;
            }
            Some(counts)
        } else {
            None
        };
        match &binned {
            Some(bm) => Tree::fit_binned(bm, y, weights.as_deref(), n_outputs, &tree_cfg),
            None => Tree::fit(x, y, weights.as_deref(), n_outputs, &tree_cfg),
        }
    };
    // Each tree's randomness derives only from its index, so any job count
    // produces bit-identical ensembles.
    parallel_map(config.n_jobs, config.n_estimators, fit_one)
        .into_iter()
        .collect()
}

/// Bagged tree classifier (random forest or extra-trees depending on the
/// configured split strategy).
#[derive(Debug, Clone)]
pub struct ForestClassifier {
    /// Ensemble hyper-parameters.
    pub config: ForestConfig,
    trees: Vec<Tree>,
    n_classes: usize,
}

impl ForestClassifier {
    /// Creates an untrained classifier.
    pub fn new(config: ForestConfig) -> Self {
        ForestClassifier {
            config,
            trees: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Estimator for ForestClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.n_classes = infer_n_classes(y);
        self.trees = fit_trees(x, y, self.n_classes, &self.config)?;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let p = self.predict_proba(x)?;
        Ok((0..p.rows())
            .map(|i| volcanoml_linalg::stats::argmax(p.row(i)).unwrap_or(0) as f64)
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        if x.cols() != self.trees[0].n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                self.trees[0].n_features(),
                x.cols()
            )));
        }
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for tree in &self.trees {
            for i in 0..x.rows() {
                let probs = tree.predict_row(x.row(i));
                let row = out.row_mut(i);
                for (o, &p) in row.iter_mut().zip(probs.iter()) {
                    *o += p;
                }
            }
        }
        let scale = 1.0 / self.trees.len() as f64;
        out.scale(scale);
        Ok(out)
    }
}

/// Bagged tree regressor (random forest or extra-trees).
#[derive(Debug, Clone)]
pub struct ForestRegressor {
    /// Ensemble hyper-parameters.
    pub config: ForestConfig,
    trees: Vec<Tree>,
}

impl ForestRegressor {
    /// Creates an untrained regressor. The criterion is forced to MSE.
    pub fn new(mut config: ForestConfig) -> Self {
        config.criterion = Criterion::Mse;
        if config.max_features == MaxFeatures::Sqrt {
            // Regression forests default to all features (sklearn behaviour).
            config.max_features = MaxFeatures::All;
        }
        ForestRegressor {
            config,
            trees: Vec::new(),
        }
    }

    /// Per-tree predictions: `out[t][i]` is tree `t`'s prediction for row `i`.
    /// Used by the probabilistic-RF surrogate for mean/variance estimates.
    pub fn predict_per_tree(&self, x: &Matrix) -> Result<Vec<Vec<f64>>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok(self
            .trees
            .iter()
            .map(|tree| {
                (0..x.rows())
                    .map(|i| tree.predict_row(x.row(i))[0])
                    .collect()
            })
            .collect())
    }

    /// Predictive mean and variance across trees for each row.
    pub fn predict_mean_var(&self, x: &Matrix) -> Result<Vec<(f64, f64)>> {
        let per_tree = self.predict_per_tree(x)?;
        let t = per_tree.len() as f64;
        Ok((0..x.rows())
            .map(|i| {
                let mean = per_tree.iter().map(|p| p[i]).sum::<f64>() / t;
                let var = per_tree
                    .iter()
                    .map(|p| (p[i] - mean) * (p[i] - mean))
                    .sum::<f64>()
                    / t;
                (mean, var)
            })
            .collect())
    }
}

impl Estimator for ForestRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.trees = fit_trees(x, y, 1, &self.config)?;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(ModelError::NotFitted);
        }
        if x.cols() != self.trees[0].n_features() {
            return Err(ModelError::Invalid(format!(
                "predict expects {} features, got {}",
                self.trees[0].n_features(),
                x.cols()
            )));
        }
        let mut out = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (i, o) in out.iter_mut().enumerate() {
                *o += tree.predict_row(x.row(i))[0];
            }
        }
        let scale = 1.0 / self.trees.len() as f64;
        for o in &mut out {
            *o *= scale;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{easy_multiclass, nonlinear_binary, split};
    use volcanoml_data::metrics::{accuracy, r2};
    use volcanoml_data::synthetic::{make_friedman1, make_xor};

    #[test]
    fn rf_beats_chance_on_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = ForestClassifier::new(ForestConfig::random_forest());
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn f32_binning_stays_within_accuracy_tolerance() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = ForestConfig::random_forest();
        cfg.split_strategy = SplitStrategy::Histogram;
        let mut full = ForestClassifier::new(cfg.clone());
        full.fit(&xt, &yt).unwrap();
        let acc_full = accuracy(&yv, &full.predict(&xv).unwrap());
        cfg.f32_binning = true;
        let mut narrow = ForestClassifier::new(cfg);
        narrow.fit(&xt, &yt).unwrap();
        let acc_narrow = accuracy(&yv, &narrow.predict(&xv).unwrap());
        // Narrowed binning may move cut points by an f32 ulp; held-out
        // accuracy must stay within the paper-rig tolerance.
        assert!(
            (acc_full - acc_narrow).abs() <= 0.01,
            "f64 {acc_full} vs f32 {acc_narrow}"
        );
    }

    #[test]
    fn rf_handles_multiclass() {
        let d = easy_multiclass();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut m = ForestClassifier::new(ForestConfig::random_forest());
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn extra_trees_learn_xor() {
        let d = make_xor(400, 2, 5, 0.02, 4);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = ForestConfig::extra_trees();
        cfg.n_estimators = 80;
        cfg.max_depth = 16;
        let mut m = ForestClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn forest_regressor_fits_friedman() {
        let d = make_friedman1(400, 2, 0.3, 5);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = ForestConfig::random_forest();
        cfg.n_estimators = 60;
        let mut m = ForestRegressor::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.75, "r2 {score}");
    }

    #[test]
    fn per_tree_predictions_average_to_ensemble() {
        let d = make_friedman1(200, 1, 0.3, 6);
        let mut m = ForestRegressor::new(ForestConfig::random_forest());
        m.fit(&d.x, &d.y).unwrap();
        let ens = m.predict(&d.x).unwrap();
        let per_tree = m.predict_per_tree(&d.x).unwrap();
        let t = per_tree.len() as f64;
        for i in 0..5 {
            let mean: f64 = per_tree.iter().map(|p| p[i]).sum::<f64>() / t;
            assert!((mean - ens[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn variance_is_higher_off_manifold() {
        let d = make_friedman1(300, 0, 0.1, 7);
        let mut cfg = ForestConfig::random_forest();
        cfg.n_estimators = 40;
        let mut m = ForestRegressor::new(cfg);
        m.fit(&d.x, &d.y).unwrap();
        // In-distribution point vs far-out point.
        let probe = Matrix::from_vec(2, 5, vec![0.5, 0.5, 0.5, 0.5, 0.5, 25.0, -30.0, 40.0, -10.0, 90.0])
            .unwrap();
        let mv = m.predict_mean_var(&probe).unwrap();
        // Both should produce finite variance; the ensemble must disagree at
        // least somewhere (non-zero average variance over train set).
        assert!(mv.iter().all(|(m, v)| m.is_finite() && v.is_finite() && *v >= 0.0));
        let train_var: f64 = m
            .predict_mean_var(&d.x)
            .unwrap()
            .iter()
            .map(|(_, v)| v)
            .sum();
        assert!(train_var > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = nonlinear_binary();
        let mut a = ForestClassifier::new(ForestConfig::random_forest());
        a.fit(&d.x, &d.y).unwrap();
        let mut b = ForestClassifier::new(ForestConfig::random_forest());
        b.fit(&d.x, &d.y).unwrap();
        assert_eq!(a.predict(&d.x).unwrap(), b.predict(&d.x).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let d = nonlinear_binary();
        let mut cfg1 = ForestConfig::random_forest();
        cfg1.n_estimators = 5;
        let mut cfg2 = cfg1.clone();
        cfg2.seed = 99;
        let mut a = ForestClassifier::new(cfg1);
        a.fit(&d.x, &d.y).unwrap();
        let mut b = ForestClassifier::new(cfg2);
        b.fit(&d.x, &d.y).unwrap();
        let pa = a.predict_proba(&d.x).unwrap();
        let pb = b.predict_proba(&d.x).unwrap();
        assert_ne!(pa.data(), pb.data());
    }

    #[test]
    fn unfitted_errors() {
        let m = ForestClassifier::new(ForestConfig::random_forest());
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
        let r = ForestRegressor::new(ForestConfig::random_forest());
        assert!(r.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn histogram_forest_learns_moons() {
        let d = nonlinear_binary();
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = ForestConfig::random_forest();
        cfg.split_strategy = SplitStrategy::Histogram;
        let mut m = ForestClassifier::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let acc = accuracy(&yv, &m.predict(&xv).unwrap());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn histogram_regression_forest_fits_friedman() {
        // Exercises the weight-based bootstrap on the regression (MSE) path.
        let d = make_friedman1(400, 2, 0.3, 5);
        let ((xt, yt), (xv, yv)) = split(&d);
        let mut cfg = ForestConfig::random_forest();
        cfg.n_estimators = 60;
        cfg.split_strategy = SplitStrategy::Histogram;
        let mut m = ForestRegressor::new(cfg);
        m.fit(&xt, &yt).unwrap();
        let score = r2(&yv, &m.predict(&xv).unwrap());
        assert!(score > 0.75, "r2 {score}");
    }

    #[test]
    fn fit_is_bit_identical_across_n_jobs() {
        let d = nonlinear_binary();
        for strategy in [SplitStrategy::Best, SplitStrategy::Histogram] {
            let fit = |jobs: usize| {
                let mut cfg = ForestConfig::random_forest();
                cfg.n_estimators = 12;
                cfg.split_strategy = strategy;
                cfg.n_jobs = jobs;
                let mut m = ForestClassifier::new(cfg);
                m.fit(&d.x, &d.y).unwrap();
                m.predict_proba(&d.x).unwrap()
            };
            let serial = fit(1);
            for jobs in [2, 4] {
                assert_eq!(
                    serial.data(),
                    fit(jobs).data(),
                    "{strategy:?} with n_jobs={jobs} diverged"
                );
            }
        }
    }
}
