//! One tenant study: its spec, on-disk layout, lifecycle state, and the
//! driver thread that runs `VolcanoML::fit` against the shared worker pool.
//!
//! On-disk layout per study (`<serve dir>/<id>/`):
//!
//! - `spec.json`    — the submitted [`StudySpec`], written before the driver
//!   starts; its presence is what the resume scan keys on.
//! - `journal.jsonl` — the trial journal (schema-versioned, crash-safe).
//! - `trace.jsonl` / `metrics.json` — obs artifacts for `volcanoml report`.
//! - `result.json`  — written ONLY on terminal state (done / failed /
//!   cancelled). Its absence after a crash marks the study as resumable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use volcanoml_core::{VolcanoML, VolcanoMlOptions};
use volcanoml_exec::ExecPool;
use volcanoml_obs::events::{EventBus, ObsEvent};
use volcanoml_obs::json::{escape, num, parse_object};
use volcanoml_obs::metrics::MetricsRegistry;

use crate::spec::StudySpec;

/// Lifecycle of one study. `Running` covers queued-and-executing; the three
/// terminal states mirror what `result.json` records.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyStatus {
    /// Driver thread is alive (or about to start).
    Running,
    /// Fit finished; headline numbers from the report.
    Done {
        /// Best validation loss found.
        best_loss: f64,
        /// Non-cached evaluations spent.
        n_evaluations: usize,
    },
    /// Fit returned an error.
    Failed {
        /// The error message.
        error: String,
    },
    /// A `DELETE /studies/:id` stopped the study early.
    Cancelled,
}

impl StudyStatus {
    /// Short machine-readable tag (`running`/`done`/`failed`/`cancelled`).
    pub fn tag(&self) -> &'static str {
        match self {
            StudyStatus::Running => "running",
            StudyStatus::Done { .. } => "done",
            StudyStatus::Failed { .. } => "failed",
            StudyStatus::Cancelled => "cancelled",
        }
    }

    /// Serializes to the `result.json` document.
    pub fn to_json(&self) -> String {
        match self {
            StudyStatus::Running => "{\"status\":\"running\"}".to_string(),
            StudyStatus::Done {
                best_loss,
                n_evaluations,
            } => format!(
                "{{\"status\":\"done\",\"best_loss\":{},\"n_evaluations\":{}}}",
                num(*best_loss),
                n_evaluations
            ),
            StudyStatus::Failed { error } => {
                format!("{{\"status\":\"failed\",\"error\":\"{}\"}}", escape(error))
            }
            StudyStatus::Cancelled => "{\"status\":\"cancelled\"}".to_string(),
        }
    }

    /// Parses a `result.json` document (used by the resume scan to decide
    /// whether a study already reached a terminal state).
    pub fn from_json(text: &str) -> Option<StudyStatus> {
        let doc = parse_object(text)?;
        match doc.get("status")?.as_str()? {
            "running" => Some(StudyStatus::Running),
            "done" => Some(StudyStatus::Done {
                best_loss: doc.get("best_loss")?.as_f64()?,
                n_evaluations: doc.get("n_evaluations")?.as_f64()? as usize,
            }),
            "failed" => Some(StudyStatus::Failed {
                error: doc.get("error")?.as_str()?.to_string(),
            }),
            "cancelled" => Some(StudyStatus::Cancelled),
            _ => None,
        }
    }
}

/// One study registered with the server.
pub struct Study {
    /// Server-unique id (also the directory name).
    pub id: String,
    /// The submitted spec.
    pub spec: StudySpec,
    /// `<serve dir>/<id>/`.
    pub dir: PathBuf,
    /// Set by `DELETE`; the fit loop observes it between batches.
    pub stop: Arc<AtomicBool>,
    /// The study's live metrics registry, shared with the fit so the status
    /// route streams counters mid-run (a snapshot still lands in
    /// `metrics.json` at the end).
    pub metrics: Arc<MetricsRegistry>,
    /// The study's live event bus: typed trial/elimination/lifecycle
    /// events, streamed by `GET /studies/:id/events` with cursor resume.
    pub bus: Arc<EventBus>,
    state: Mutex<StudyStatus>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Study {
    /// A freshly registered study in `Running` state.
    pub fn new(id: String, spec: StudySpec, dir: PathBuf) -> Study {
        Study {
            id,
            spec,
            dir,
            stop: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(MetricsRegistry::new()),
            bus: Arc::new(EventBus::new()),
            state: Mutex::new(StudyStatus::Running),
            handle: Mutex::new(None),
        }
    }

    /// Current lifecycle state.
    pub fn status(&self) -> StudyStatus {
        self.state.lock().expect("study state lock").clone()
    }

    /// Overrides the lifecycle state (used by the server's resume scan to
    /// restore terminal states recorded in `result.json`).
    pub fn set_status(&self, status: StudyStatus) {
        *self.state.lock().expect("study state lock") = status;
    }

    /// Path of this study's journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// Blocks until the driver thread (if any) has finished.
    pub fn join(&self) {
        let handle = self.handle.lock().expect("study handle lock").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// Spawns the driver thread for `study`. `resume` asks the driver to replay
/// an existing journal instead of starting fresh; `workers` is the shared
/// pool's size (it must also be passed as `n_workers`, which bounds this
/// run's batch size); `active` counts concurrently running studies and feeds
/// the fair-share batch cap.
pub fn spawn_driver(
    study: Arc<Study>,
    pool: Arc<ExecPool>,
    workers: usize,
    active: Arc<AtomicUsize>,
    resume: bool,
) {
    let runner = Arc::clone(&study);
    let handle = std::thread::spawn(move || {
        runner.bus.publish(if resume {
            ObsEvent::StudyResumed {
                study: runner.id.clone(),
            }
        } else {
            ObsEvent::StudySubmitted {
                study: runner.id.clone(),
            }
        });
        active.fetch_add(1, Ordering::SeqCst);
        let outcome = fit_study(&runner, pool, workers, Arc::clone(&active), resume);
        active.fetch_sub(1, Ordering::SeqCst);
        // Cancelled-vs-done is decided by whether the fit itself stopped
        // early (captured inside fit_study, right as the fit returns) — not
        // by re-reading the stop flag here, where a DELETE landing after a
        // complete fit would discard its real result as "cancelled". An Err
        // with the flag set is still Cancelled: an interrupted run's "no
        // evaluations" error is not a meaningful failure.
        let status = match outcome {
            Ok(FitOutcome {
                best_loss,
                n_evaluations,
                stopped_early: false,
            }) => StudyStatus::Done {
                best_loss,
                n_evaluations,
            },
            Ok(FitOutcome {
                stopped_early: true,
                ..
            }) => StudyStatus::Cancelled,
            Err(_) if runner.stop.load(Ordering::SeqCst) => StudyStatus::Cancelled,
            Err(error) => StudyStatus::Failed { error },
        };
        // result.json is the durable terminal marker; write it before
        // flipping the in-memory state so a crash between the two still
        // leaves the study resumable (it would just re-run the tail).
        let _ = std::fs::write(runner.dir.join("result.json"), status.to_json());
        // Publish the terminal event before flipping the in-memory state:
        // the event stream closes only once the study is terminal AND the
        // subscriber's cursor caught up, so this order guarantees the
        // terminal event is still in flight when the stream checks.
        runner.bus.publish(match &status {
            StudyStatus::Done {
                best_loss,
                n_evaluations,
            } => ObsEvent::StudyDone {
                study: runner.id.clone(),
                best_loss: *best_loss,
                n_evaluations: *n_evaluations as u64,
            },
            StudyStatus::Cancelled => ObsEvent::StudyCancelled {
                study: runner.id.clone(),
            },
            StudyStatus::Failed { error } => ObsEvent::StudyFailed {
                study: runner.id.clone(),
                error: error.clone(),
            },
            StudyStatus::Running => unreachable!("driver always ends terminal"),
        });
        *runner.state.lock().expect("study state lock") = status;
    });
    *study.handle.lock().expect("study handle lock") = Some(handle);
}

/// What a successful fit produced, plus whether it was cut short.
struct FitOutcome {
    best_loss: f64,
    n_evaluations: usize,
    /// True when the stop flag interrupted the fit before it spent its
    /// budget; distinguishes a cancelled partial result from a real Done.
    stopped_early: bool,
}

/// Builds the dataset, wires the study into the shared pool with fair-share
/// batching, and runs the fit.
fn fit_study(
    study: &Study,
    pool: Arc<ExecPool>,
    workers: usize,
    active: Arc<AtomicUsize>,
    resume: bool,
) -> Result<FitOutcome, String> {
    let data = study.spec.build_dataset()?;
    let plan = study.spec.resolve_plan()?;
    let journal_path = study.journal_path();
    let options = VolcanoMlOptions {
        plan,
        max_evaluations: study.spec.max_evaluations,
        seed: study.spec.seed,
        cost_aware: study.spec.cost_aware,
        objective: study.spec.objective,
        space_growth: study.spec.space,
        // Without this the per-run batch size caps at
        // min(pool.workers(), n_workers) = 1 and the pool sits idle.
        n_workers: workers,
        journal_path: Some(journal_path.clone()),
        trace_path: Some(study.dir.join("trace.jsonl")),
        metrics_path: Some(study.dir.join("metrics.json")),
        resume: resume && journal_path.exists(),
        shared_pool: Some(pool),
        // Fair share: each of the k active studies may occupy at most
        // workers/k slots per batch, re-read every batch so capacity
        // rebalances as studies come and go. Each decision is also
        // recorded (granted vs. requested share, decision count) so a
        // scrape can see how contention squeezed this tenant.
        batch_cap: Some(Arc::new({
            let sched_metrics = Arc::clone(&study.metrics);
            move || {
                let share = (workers / active.load(Ordering::SeqCst).max(1)).max(1);
                sched_metrics.inc_counter("sched.batch_cap_decisions", 1);
                sched_metrics.set_gauge("sched.share_granted", share as f64);
                sched_metrics.set_gauge("sched.share_requested", workers as f64);
                share
            }
        })),
        stop_flag: Some(Arc::clone(&study.stop)),
        shared_metrics: Some(Arc::clone(&study.metrics)),
        event_bus: Some(Arc::clone(&study.bus)),
        ..VolcanoMlOptions::default()
    };
    let engine = VolcanoML::with_tier(data.task, study.spec.tier, options);
    let fitted = engine.fit(&data).map_err(|e| e.to_string())?;
    // Capture the stop flag NOW, while still inside the fit path: a fit that
    // spent its full budget is Done even if a DELETE raced in afterwards,
    // and a fit the flag interrupted is Cancelled even though it returned Ok
    // with partial results.
    let stopped_early = study.stop.load(Ordering::SeqCst)
        && fitted.report.n_evaluations < study.spec.max_evaluations;
    Ok(FitOutcome {
        best_loss: fitted.report.best_loss,
        n_evaluations: fitted.report.n_evaluations,
        stopped_early,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips_through_result_json() {
        for status in [
            StudyStatus::Running,
            StudyStatus::Done {
                best_loss: 0.125,
                n_evaluations: 17,
            },
            StudyStatus::Failed {
                error: "boom \"quoted\"".to_string(),
            },
            StudyStatus::Cancelled,
        ] {
            let again = StudyStatus::from_json(&status.to_json()).expect("parse back");
            assert_eq!(status, again);
        }
    }

    #[test]
    fn driver_runs_a_tiny_study_to_done() {
        let dir = std::env::temp_dir().join(format!(
            "volcanoml-serve-study-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = StudySpec::from_json(
            r#"{"dataset":"moons","engine":"random","max_evaluations":4,"seed":1}"#,
        )
        .unwrap();
        let study = Arc::new(Study::new("t0".to_string(), spec, dir.clone()));
        let pool = Arc::new(ExecPool::with_workers(2));
        let active = Arc::new(AtomicUsize::new(0));
        spawn_driver(Arc::clone(&study), pool, 2, active, false);
        study.join();
        match study.status() {
            StudyStatus::Done { n_evaluations, .. } => assert!(n_evaluations >= 1),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(dir.join("result.json").exists());
        assert!(dir.join("journal.jsonl").exists());
        // The live bus saw the full lifecycle: submit first, terminal last,
        // with the trials in between.
        let events = study.bus.read_after(None);
        assert_eq!(events.first().unwrap().event.kind(), "StudySubmitted");
        assert_eq!(events.last().unwrap().event.kind(), "StudyDone");
        assert!(
            events.iter().any(|e| e.event.kind() == "TrialFinished"),
            "no TrialFinished events on the bus"
        );
        // Fair-share instrumentation fired at least once per batch.
        assert!(study.metrics.counter("sched.batch_cap_decisions") >= 1);
        assert_eq!(study.metrics.gauge("sched.share_requested"), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
