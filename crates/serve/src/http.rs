//! A deliberately tiny HTTP/1.1 layer over `std::net::TcpStream` — just
//! enough for the service's JSON API (request line + headers + sized body,
//! one request per connection, `Connection: close`). Keeping it in-tree
//! keeps the workspace hermetic; the API surface is four methods on five
//! routes, not a web framework's worth of generality.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest request body the server accepts (study specs are < 1 KiB).
const MAX_BODY: usize = 1 << 20;

/// How long a client gets to deliver a complete request. The server spawns
/// one thread per connection, so without this a client that connects and
/// stalls (or under-delivers its Content-Length) would pin a thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// Path component only (no query handling — the API doesn't use one).
    pub path: String,
    /// Raw body bytes (UTF-8 JSON for this API).
    pub body: String,
    /// Parsed `Last-Event-ID` header: the event-stream resume cursor a
    /// reconnecting SSE client sends (unparseable values read as absent).
    pub last_event_id: Option<u64>,
}

/// Why a request could not be read: the status code to answer with (400 for
/// malformed framing, 408 for a client that stalled past [`READ_TIMEOUT`])
/// and the message for the JSON error body.
#[derive(Debug)]
pub struct RequestError {
    /// HTTP status to answer with.
    pub code: u16,
    /// Human-readable cause.
    pub message: String,
}

impl RequestError {
    fn bad(message: String) -> RequestError {
        RequestError { code: 400, message }
    }

    fn io(context: &str, e: &std::io::Error) -> RequestError {
        let code = match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => 408,
            _ => 400,
        };
        RequestError {
            code,
            message: format!("{context}: {e}"),
        }
    }
}

/// Reads one request from the stream, answering `Err` on malformed framing
/// (400) or a read that exceeds [`READ_TIMEOUT`] (408); the caller writes
/// the error response and closes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    read_request_with_timeout(stream, READ_TIMEOUT)
}

/// [`read_request`] with an explicit timeout (separated out for tests).
fn read_request_with_timeout(
    stream: &mut TcpStream,
    timeout: Duration,
) -> Result<Request, RequestError> {
    // SO_RCVTIMEO lives on the socket, so setting it here also covers the
    // clone the BufReader wraps.
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| RequestError::io("set read timeout", &e))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| RequestError::io("clone stream", &e))?,
    );
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| RequestError::io("read request line", &e))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(RequestError::bad(format!("malformed request line: {line:?}")));
    }
    let mut content_length = 0usize;
    let mut last_event_id = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| RequestError::io("read header", &e))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            let key = key.trim();
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::bad(format!("bad content-length: {value:?}")))?;
            } else if key.eq_ignore_ascii_case("last-event-id") {
                last_event_id = value.trim().parse().ok();
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::bad(format!(
            "body too large ({content_length} bytes)"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| RequestError::io("read body", &e))?;
    let body =
        String::from_utf8(body).map_err(|_| RequestError::bad("body is not UTF-8".to_string()))?;
    Ok(Request {
        method,
        path,
        body,
        last_event_id,
    })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        408 => "Request Timeout",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one response and flushes. `content_type` is `application/json`
/// for API routes, `text/plain` for rendered reports.
pub fn write_response(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(code),
        body.len()
    );
    // A client that hung up mid-response is its own problem; the server
    // moves on either way.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Writes the head of a close-delimited streaming response (no
/// Content-Length; the body ends when the server closes the connection,
/// which is how this `Connection: close` server frames SSE). Returns
/// whether the head reached the client.
pub fn write_stream_head(stream: &mut TcpStream, content_type: &str) -> bool {
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).is_ok() && stream.flush().is_ok()
}

/// JSON error body shared by every failure path.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", volcanoml_obs::json::escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_request_with_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /studies HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}",
            )
            .unwrap();
            s.flush().unwrap();
            // Hold the connection open until the server has parsed it.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/studies");
        assert_eq!(req.body, "{}");
        write_response(&mut stream, 201, "application/json", "{\"id\":\"s\"}");
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn parses_last_event_id_header() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /studies/a/events HTTP/1.1\r\nLast-Event-ID: 42\r\n\r\n")
                .unwrap();
            s.flush().unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap();
        assert_eq!(req.last_event_id, Some(42));
        write_response(&mut stream, 200, "application/json", "{}");
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn rejects_malformed_request_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"garbage\r\n\r\n").unwrap();
            s.flush().unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        assert!(read_request(&mut stream).is_err());
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn stalled_client_times_out_with_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Promise 100 body bytes, deliver none: without a read timeout
            // the server-side read_exact would block forever.
            s.write_all(b"POST /studies HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
                .unwrap();
            s.flush().unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request_with_timeout(&mut stream, Duration::from_millis(100))
            .expect_err("stalled body must not parse");
        assert_eq!(err.code, 408);
        write_response(&mut stream, err.code, "application/json", &error_body(&err.message));
        drop(stream);
        client.join().unwrap();
    }
}
