//! A deliberately tiny HTTP/1.1 layer over `std::net::TcpStream` — just
//! enough for the service's JSON API (request line + headers + sized body,
//! one request per connection, `Connection: close`). Keeping it in-tree
//! keeps the workspace hermetic; the API surface is four methods on five
//! routes, not a web framework's worth of generality.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server accepts (study specs are < 1 KiB).
const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// Path component only (no query handling — the API doesn't use one).
    pub path: String,
    /// Raw body bytes (UTF-8 JSON for this API).
    pub body: String,
}

/// Reads one request from the stream. Returns `Err` on malformed framing;
/// the caller answers with 400 and closes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(format!("malformed request line: {line:?}"));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            if key.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length: {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body too large ({content_length} bytes)"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one response and flushes. `content_type` is `application/json`
/// for API routes, `text/plain` for rendered reports.
pub fn write_response(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(code),
        body.len()
    );
    // A client that hung up mid-response is its own problem; the server
    // moves on either way.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// JSON error body shared by every failure path.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", volcanoml_obs::json::escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_request_with_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /studies HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}",
            )
            .unwrap();
            s.flush().unwrap();
            // Hold the connection open until the server has parsed it.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/studies");
        assert_eq!(req.body, "{}");
        write_response(&mut stream, 201, "application/json", "{\"id\":\"s\"}");
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn rejects_malformed_request_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"garbage\r\n\r\n").unwrap();
            s.flush().unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        assert!(read_request(&mut stream).is_err());
        drop(stream);
        client.join().unwrap();
    }
}
