//! Study specifications: the flat JSON documents clients `POST /studies`,
//! persisted verbatim-equivalent as `spec.json` in the study directory so a
//! restarted server can resume the study from its journal alone.

use volcanoml_core::plans::enumerate_coarse_plans;
use volcanoml_core::{EngineKind, Objective, PlanSpec, SpaceGrowth, SpaceTier};
use volcanoml_data::Dataset;
use volcanoml_obs::json::{escape, parse_object, JsonValue};

/// Where a study's data comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetSpec {
    /// One of the CLI's synthetic generators (`classification`, `moons`,
    /// `xor`, `friedman1`, `imbalanced`), drawn with `seed`.
    Synthetic { kind: String, seed: u64 },
    /// A CSV file on the server's filesystem (the CLI's dialect: `#types:`
    /// line, header, rows).
    Csv { path: String },
}

/// One study: dataset + space tier + plan/engine + budget. All fields have
/// defaults except the dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// Optional client-chosen study id (sanitized; server generates
    /// `study-N` otherwise).
    pub name: Option<String>,
    /// Data source.
    pub dataset: DatasetSpec,
    /// Joint-leaf engine (default `bo`).
    pub engine: EngineKind,
    /// Coarse plan name `p1`..`p5`; `None` uses the paper's default plan.
    pub plan: Option<String>,
    /// Search-space tier (default `small`).
    pub tier: SpaceTier,
    /// Evaluation budget (default 30).
    pub max_evaluations: usize,
    /// Master seed (default 0).
    pub seed: u64,
    /// Feed measured trial cost back into the engines (EI-per-second
    /// acquisition, loss-per-second promotion). Default off.
    pub cost_aware: bool,
    /// Search objective: `"loss"` (default) or `"loss_and_cost"`, the
    /// latter scalarizing in `latency_weight` × per-row inference seconds.
    pub objective: Objective,
    /// Search-space construction: `"fixed"` (default) or
    /// `"incremental[:EUI_THRESHOLD]"` — start from the minimal pipeline
    /// and expand on plateau evidence.
    pub space: SpaceGrowth,
}

fn parse_engine(s: &str) -> Result<EngineKind, String> {
    match s {
        "bo" => Ok(EngineKind::Bo),
        "random" => Ok(EngineKind::Random),
        "sh" => Ok(EngineKind::SuccessiveHalving),
        "hyperband" => Ok(EngineKind::Hyperband),
        "mfes-hb" => Ok(EngineKind::MfesHb),
        other => Err(format!("unknown engine '{other}'")),
    }
}

fn tier_name(tier: SpaceTier) -> &'static str {
    match tier {
        SpaceTier::Small => "small",
        SpaceTier::Medium => "medium",
        SpaceTier::Large => "large",
    }
}

fn parse_tier(s: &str) -> Result<SpaceTier, String> {
    match s {
        "small" => Ok(SpaceTier::Small),
        "medium" => Ok(SpaceTier::Medium),
        "large" => Ok(SpaceTier::Large),
        other => Err(format!("unknown tier '{other}'")),
    }
}

const SYNTHETIC_KINDS: [&str; 5] = ["classification", "moons", "xor", "friedman1", "imbalanced"];

impl StudySpec {
    /// Parses a spec from the flat JSON a client posts, e.g.
    /// `{"dataset":"moons","engine":"bo","max_evaluations":20,"seed":3}` or
    /// `{"csv":"/data/d.csv","tier":"medium"}`.
    pub fn from_json(text: &str) -> Result<StudySpec, String> {
        let doc = parse_object(text).ok_or_else(|| "unparseable JSON".to_string())?;
        let get_str = |key: &str| -> Result<Option<String>, String> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("field \"{key}\" must be a string")),
            }
        };
        let get_u64 = |key: &str, default: u64| -> Result<u64, String> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(default),
                Some(v) => v
                    .as_f64()
                    .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
                    .map(|x| x as u64)
                    .ok_or_else(|| format!("field \"{key}\" must be a non-negative integer")),
            }
        };
        let dataset = match (get_str("dataset")?, get_str("csv")?) {
            (Some(_), Some(_)) => {
                return Err("give either \"dataset\" (synthetic) or \"csv\", not both".into())
            }
            (Some(kind), None) => {
                if !SYNTHETIC_KINDS.contains(&kind.as_str()) {
                    return Err(format!(
                        "unknown synthetic dataset '{kind}' (one of {})",
                        SYNTHETIC_KINDS.join(", ")
                    ));
                }
                DatasetSpec::Synthetic {
                    kind,
                    seed: get_u64("data_seed", 0)?,
                }
            }
            (None, Some(path)) => DatasetSpec::Csv { path },
            (None, None) => return Err("spec needs a \"dataset\" (synthetic kind) or \"csv\" path".into()),
        };
        let engine = match get_str("engine")? {
            Some(s) => parse_engine(&s)?,
            None => EngineKind::Bo,
        };
        let plan = get_str("plan")?;
        if let Some(p) = &plan {
            // Validate eagerly so a bad plan 400s at submission, not at fit.
            resolve_plan(Some(p), engine)?;
        }
        let tier = match get_str("tier")? {
            Some(s) => parse_tier(&s)?,
            None => SpaceTier::Small,
        };
        let max_evaluations = get_u64("max_evaluations", 30)? as usize;
        if max_evaluations == 0 {
            return Err("\"max_evaluations\" must be >= 1".into());
        }
        let cost_aware = match doc.get("cost_aware") {
            None | Some(JsonValue::Null) => false,
            Some(JsonValue::Bool(b)) => *b,
            Some(_) => return Err("field \"cost_aware\" must be a boolean".into()),
        };
        let objective = match get_str("objective")?.as_deref() {
            None | Some("loss") => Objective::Loss,
            Some("loss_and_cost") => {
                let latency_weight = match doc.get("latency_weight") {
                    None | Some(JsonValue::Null) => 100.0,
                    Some(v) => v
                        .as_f64()
                        .filter(|w| w.is_finite() && *w >= 0.0)
                        .ok_or_else(|| {
                            "field \"latency_weight\" must be a finite number >= 0".to_string()
                        })?,
                };
                Objective::LossAndCost { latency_weight }
            }
            Some(other) => {
                return Err(format!(
                    "unknown objective '{other}' (use loss|loss_and_cost)"
                ))
            }
        };
        let space = match get_str("space")? {
            Some(s) => SpaceGrowth::parse(&s).map_err(|e| e.to_string())?,
            None => SpaceGrowth::Fixed,
        };
        Ok(StudySpec {
            name: get_str("name")?,
            dataset,
            engine,
            plan,
            tier,
            max_evaluations,
            seed: get_u64("seed", 0)?,
            cost_aware,
            objective,
            space,
        })
    }

    /// Serializes the spec back to the same flat JSON shape `from_json`
    /// reads — what `spec.json` holds for crash-resume.
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        if let Some(name) = &self.name {
            parts.push(format!("\"name\":\"{}\"", escape(name)));
        }
        match &self.dataset {
            DatasetSpec::Synthetic { kind, seed } => {
                parts.push(format!("\"dataset\":\"{}\"", escape(kind)));
                parts.push(format!("\"data_seed\":{seed}"));
            }
            DatasetSpec::Csv { path } => parts.push(format!("\"csv\":\"{}\"", escape(path))),
        }
        parts.push(format!("\"engine\":\"{}\"", self.engine.name()));
        if let Some(plan) = &self.plan {
            parts.push(format!("\"plan\":\"{}\"", escape(plan)));
        }
        parts.push(format!("\"tier\":\"{}\"", tier_name(self.tier)));
        parts.push(format!("\"max_evaluations\":{}", self.max_evaluations));
        parts.push(format!("\"seed\":{}", self.seed));
        if self.cost_aware {
            parts.push("\"cost_aware\":true".to_string());
        }
        if let Objective::LossAndCost { latency_weight } = self.objective {
            parts.push("\"objective\":\"loss_and_cost\"".to_string());
            parts.push(format!("\"latency_weight\":{latency_weight}"));
        }
        if !self.space.is_fixed() {
            parts.push(format!("\"space\":\"{}\"", self.space.render()));
        }
        format!("{{{}}}", parts.join(","))
    }

    /// Materializes the study's dataset.
    pub fn build_dataset(&self) -> Result<Dataset, String> {
        match &self.dataset {
            DatasetSpec::Synthetic { kind, seed } => {
                use volcanoml_data::synthetic::*;
                Ok(match kind.as_str() {
                    "classification" => make_classification(&ClassificationSpec::default(), *seed),
                    "moons" => make_moons(500, 0.15, 2, *seed),
                    "xor" => make_xor(500, 2, 8, 0.03, *seed),
                    "friedman1" => make_friedman1(500, 4, 0.5, *seed),
                    "imbalanced" => make_classification(
                        &ClassificationSpec {
                            weights: vec![0.9, 0.1],
                            ..ClassificationSpec::default()
                        },
                        *seed,
                    ),
                    other => return Err(format!("unknown synthetic dataset '{other}'")),
                })
            }
            DatasetSpec::Csv { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                volcanoml_data::csv::from_csv(path, &text).map_err(|e| e.to_string())
            }
        }
    }

    /// Resolves the plan name (or the default plan) for this spec.
    pub fn resolve_plan(&self) -> Result<PlanSpec, String> {
        resolve_plan(self.plan.as_deref(), self.engine)
    }
}

fn resolve_plan(name: Option<&str>, engine: EngineKind) -> Result<PlanSpec, String> {
    match name {
        None => Ok(PlanSpec::volcano_default(engine)),
        Some(s) => enumerate_coarse_plans(engine)
            .into_iter()
            .find(|(name, _)| name.to_lowercase().starts_with(s))
            .map(|(_, plan)| plan)
            .ok_or_else(|| format!("unknown plan '{s}' (use p1..p5)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = StudySpec::from_json(
            r#"{"name":"exp-1","dataset":"moons","data_seed":7,"engine":"hyperband",
                "plan":"p2","tier":"medium","max_evaluations":44,"seed":9}"#,
        )
        .unwrap();
        assert_eq!(spec.name.as_deref(), Some("exp-1"));
        assert_eq!(spec.engine, EngineKind::Hyperband);
        assert_eq!(spec.max_evaluations, 44);
        let again = StudySpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn defaults_apply() {
        let spec = StudySpec::from_json(r#"{"dataset":"classification"}"#).unwrap();
        assert_eq!(spec.engine, EngineKind::Bo);
        assert_eq!(spec.tier, SpaceTier::Small);
        assert_eq!(spec.max_evaluations, 30);
        assert_eq!(spec.seed, 0);
        assert!(spec.plan.is_none());
        spec.resolve_plan().unwrap();
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (doc, needle) in [
            ("not json", "unparseable"),
            ("{}", "needs a"),
            (r#"{"dataset":"mnist"}"#, "unknown synthetic dataset"),
            (r#"{"dataset":"moons","csv":"x.csv"}"#, "not both"),
            (r#"{"dataset":"moons","engine":"sgd"}"#, "unknown engine"),
            (r#"{"dataset":"moons","tier":"huge"}"#, "unknown tier"),
            (r#"{"dataset":"moons","plan":"p9"}"#, "unknown plan"),
            (r#"{"dataset":"moons","max_evaluations":0}"#, ">= 1"),
            (r#"{"dataset":"moons","seed":-1}"#, "non-negative"),
            (r#"{"dataset":"moons","cost_aware":"yes"}"#, "must be a boolean"),
            (r#"{"dataset":"moons","objective":"latency"}"#, "unknown objective"),
            (
                r#"{"dataset":"moons","objective":"loss_and_cost","latency_weight":-2}"#,
                "latency_weight",
            ),
        ] {
            let err = StudySpec::from_json(doc).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn cost_fields_round_trip_and_default_off() {
        let spec = StudySpec::from_json(
            r#"{"dataset":"moons","cost_aware":true,
                "objective":"loss_and_cost","latency_weight":12.5}"#,
        )
        .unwrap();
        assert!(spec.cost_aware);
        assert_eq!(spec.objective, Objective::LossAndCost { latency_weight: 12.5 });
        let again = StudySpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);

        let plain = StudySpec::from_json(r#"{"dataset":"moons"}"#).unwrap();
        assert!(!plain.cost_aware);
        assert_eq!(plain.objective, Objective::Loss);
        // Default objective stays out of the serialized form so pre-existing
        // spec.json files and their re-serializations stay byte-compatible.
        assert!(!plain.to_json().contains("objective"));
    }

    #[test]
    fn space_field_round_trips_and_default_stays_out() {
        let spec = StudySpec::from_json(r#"{"dataset":"moons","space":"incremental:0.05"}"#)
            .unwrap();
        assert_eq!(spec.space, SpaceGrowth::Incremental { eui_threshold: 0.05 });
        let again = StudySpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
        // Default-threshold incremental renders in the short form, and the
        // round-trip through spec.json is byte-identical.
        let short = StudySpec::from_json(r#"{"dataset":"moons","space":"incremental"}"#).unwrap();
        assert!(short.to_json().contains("\"space\":\"incremental\""));
        assert_eq!(short.to_json(), StudySpec::from_json(&short.to_json()).unwrap().to_json());

        // Fixed (the default) stays out of the serialized form so
        // pre-existing spec.json files re-serialize byte-compatibly.
        let plain = StudySpec::from_json(r#"{"dataset":"moons"}"#).unwrap();
        assert!(plain.space.is_fixed());
        assert!(!plain.to_json().contains("space"));

        let err = StudySpec::from_json(r#"{"dataset":"moons","space":"huge"}"#).unwrap_err();
        assert!(err.contains("space mode"), "{err}");
    }

    #[test]
    fn synthetic_datasets_build() {
        for kind in SYNTHETIC_KINDS {
            let spec = StudySpec::from_json(&format!(r#"{{"dataset":"{kind}"}}"#)).unwrap();
            let d = spec.build_dataset().unwrap();
            assert!(d.n_samples() > 0);
        }
    }
}
