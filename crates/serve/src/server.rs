//! The service itself: a `TcpListener` accept loop routing a small JSON API
//! onto the study registry, one shared [`ExecPool`] across all tenants, and
//! the startup resume scan that re-drives interrupted studies from their
//! journals.
//!
//! Routes (one request per connection, `Connection: close`):
//!
//! | method | path                  | effect                                   |
//! |--------|-----------------------|------------------------------------------|
//! | GET    | `/healthz`            | liveness probe                           |
//! | GET    | `/studies`            | list all studies with status             |
//! | POST   | `/studies`            | submit a [`StudySpec`], returns its id   |
//! | GET    | `/studies/:id`        | status + live journal statistics         |
//! | GET    | `/studies/:id/report` | rendered run report (works mid-run)      |
//! | DELETE | `/studies/:id`        | request cancellation                     |

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use volcanoml_exec::{ExecPool, TrialRecord};
use volcanoml_obs::json::{escape, num};

use crate::http::{error_body, read_request, write_response, Request};
use crate::spec::StudySpec;
use crate::study::{spawn_driver, Study, StudyStatus};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root directory for study state (one subdirectory per study).
    pub dir: PathBuf,
    /// Shared worker-pool size.
    pub workers: usize,
    /// TCP port on 127.0.0.1; `0` binds an ephemeral port (the actual
    /// address is always written to `<dir>/serve.addr`).
    pub port: u16,
    /// Re-drive interrupted studies found in `dir` at startup.
    pub resume: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            dir: PathBuf::from("volcano-serve"),
            workers: 2,
            port: 0,
            resume: false,
        }
    }
}

struct ServerInner {
    dir: PathBuf,
    pool: Arc<ExecPool>,
    workers: usize,
    /// Studies whose driver thread is currently running; feeds fair-share.
    active: Arc<AtomicUsize>,
    studies: Mutex<BTreeMap<String, Arc<Study>>>,
    next_id: AtomicU64,
    stop_accept: AtomicBool,
}

/// A running service instance. Dropping it does NOT stop the server; call
/// [`Server::shutdown`] (or let the process exit).
pub struct Server {
    inner: Arc<ServerInner>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds, performs the resume scan, and starts the accept loop.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| format!("cannot create {}: {e}", config.dir.display()))?;
        let workers = config.workers.max(1);
        let inner = Arc::new(ServerInner {
            dir: config.dir.clone(),
            pool: Arc::new(ExecPool::with_workers(workers)),
            workers,
            active: Arc::new(AtomicUsize::new(0)),
            studies: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            stop_accept: AtomicBool::new(false),
        });
        inner.scan_existing(config.resume)?;
        let listener = TcpListener::bind(("127.0.0.1", config.port))
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", config.port))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        // Publish the actual address so clients (and the CI smoke test) can
        // find an ephemeral-port server.
        std::fs::write(config.dir.join("serve.addr"), format!("{addr}\n"))
            .map_err(|e| format!("cannot write serve.addr: {e}"))?;
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_inner.stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = stream {
                    let conn_inner = Arc::clone(&accept_inner);
                    std::thread::spawn(move || conn_inner.handle_connection(&mut stream));
                }
            }
        });
        Ok(Server {
            inner,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every registered study has reached a terminal state.
    pub fn join_studies(&self) {
        loop {
            let studies: Vec<Arc<Study>> = {
                let map = self.inner.studies.lock().expect("studies lock");
                map.values().cloned().collect()
            };
            for s in &studies {
                s.join();
            }
            // New studies may have been POSTed while joining; go again until
            // a pass finds nothing running.
            let all_terminal = {
                let map = self.inner.studies.lock().expect("studies lock");
                map.values().all(|s| s.status() != StudyStatus::Running)
            };
            if all_terminal {
                return;
            }
            // A study can be Running with its join handle not yet stored
            // (the window inside spawn_driver), making the joins above
            // no-ops; sleep instead of spinning hot until it appears.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    /// Stops accepting connections, cancels running studies, and joins all
    /// threads. Already-terminal studies keep their results.
    pub fn shutdown(mut self) {
        self.inner.stop_accept.store(true, Ordering::SeqCst);
        // The accept loop only re-checks the flag on a new connection; poke
        // it once so it wakes up and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let studies: Vec<Arc<Study>> = {
            let map = self.inner.studies.lock().expect("studies lock");
            map.values().cloned().collect()
        };
        for s in &studies {
            s.stop.store(true, Ordering::SeqCst);
        }
        for s in &studies {
            s.join();
        }
    }
}

impl ServerInner {
    /// Startup scan: every subdirectory with a `spec.json` is a known study.
    /// Ones without a `result.json` were interrupted; with `resume` they are
    /// re-driven from their journal, otherwise they are listed as failed.
    fn scan_existing(self: &Arc<Self>, resume: bool) -> Result<(), String> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let mut max_numeric = 0u64;
        for entry in entries.flatten() {
            let dir = entry.path();
            let spec_path = dir.join("spec.json");
            if !spec_path.is_file() {
                continue;
            }
            let id = entry.file_name().to_string_lossy().to_string();
            if let Some(n) = id.strip_prefix("study-").and_then(|s| s.parse::<u64>().ok()) {
                max_numeric = max_numeric.max(n);
            }
            let spec_text = std::fs::read_to_string(&spec_path)
                .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
            let spec = StudySpec::from_json(&spec_text)
                .map_err(|e| format!("{}: {e}", spec_path.display()))?;
            let study = Arc::new(Study::new(id.clone(), spec, dir.clone()));
            let terminal = std::fs::read_to_string(dir.join("result.json"))
                .ok()
                .and_then(|t| StudyStatus::from_json(&t));
            match terminal {
                Some(status) => study.set_status(status),
                None if resume => {
                    // Interrupted: re-drive. The driver replays the journal
                    // (if one exists) before running fresh trials.
                    spawn_driver(
                        Arc::clone(&study),
                        Arc::clone(&self.pool),
                        self.workers,
                        Arc::clone(&self.active),
                        true,
                    );
                }
                None => study.set_status(StudyStatus::Failed {
                    error: "interrupted; restart the server with --resume".to_string(),
                }),
            }
            self.studies
                .lock()
                .expect("studies lock")
                .insert(id, study);
        }
        self.next_id.store(max_numeric + 1, Ordering::SeqCst);
        Ok(())
    }

    fn handle_connection(self: &Arc<Self>, stream: &mut TcpStream) {
        let req = match read_request(stream) {
            Ok(r) => r,
            Err(e) => {
                write_response(stream, e.code, "application/json", &error_body(&e.message));
                return;
            }
        };
        let (code, content_type, body) = self.route(&req);
        write_response(stream, code, content_type, &body);
    }

    fn route(self: &Arc<Self>, req: &Request) -> (u16, &'static str, String) {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => (
                200,
                "application/json",
                format!(
                    "{{\"status\":\"ok\",\"workers\":{},\"active_studies\":{}}}",
                    self.workers,
                    self.active.load(Ordering::SeqCst)
                ),
            ),
            ("GET", ["studies"]) => (200, "application/json", self.list_studies()),
            ("POST", ["studies"]) => self.submit_study(&req.body),
            ("GET", ["studies", id]) => match self.get_study(id) {
                Some(study) => (200, "application/json", study_json(&study)),
                None => not_found(id),
            },
            ("GET", ["studies", id, "report"]) => match self.get_study(id) {
                Some(study) => render_study_report(&study),
                None => not_found(id),
            },
            ("DELETE", ["studies", id]) => match self.get_study(id) {
                Some(study) => {
                    study.stop.store(true, Ordering::SeqCst);
                    (
                        202,
                        "application/json",
                        format!("{{\"id\":\"{}\",\"status\":\"cancelling\"}}", escape(id)),
                    )
                }
                None => not_found(id),
            },
            (_, ["healthz"]) | (_, ["studies"]) | (_, ["studies", ..]) => (
                405,
                "application/json",
                error_body(&format!("method {} not allowed here", req.method)),
            ),
            _ => (
                404,
                "application/json",
                error_body(&format!("no such route {}", req.path)),
            ),
        }
    }

    fn get_study(&self, id: &str) -> Option<Arc<Study>> {
        self.studies.lock().expect("studies lock").get(id).cloned()
    }

    fn list_studies(&self) -> String {
        let map = self.studies.lock().expect("studies lock");
        let items: Vec<String> = map
            .values()
            .map(|s| {
                format!(
                    "{{\"id\":\"{}\",\"status\":\"{}\"}}",
                    escape(&s.id),
                    s.status().tag()
                )
            })
            .collect();
        format!("{{\"studies\":[{}]}}", items.join(","))
    }

    fn submit_study(self: &Arc<Self>, body: &str) -> (u16, &'static str, String) {
        let spec = match StudySpec::from_json(body) {
            Ok(s) => s,
            Err(e) => return (400, "application/json", error_body(&e)),
        };
        let id = match &spec.name {
            Some(name) => {
                let id = sanitize_id(name);
                if id.is_empty() {
                    return (
                        400,
                        "application/json",
                        error_body("name must contain at least one alphanumeric character"),
                    );
                }
                id
            }
            None => format!("study-{}", self.next_id.fetch_add(1, Ordering::SeqCst)),
        };
        let dir = self.dir.join(&id);
        let spec_json = spec.to_json();
        let study = Arc::new(Study::new(id.clone(), spec, dir.clone()));
        // Reserve the id under the lock, but do the filesystem work outside
        // it — otherwise every other request (health checks included) stalls
        // on this submit's disk latency.
        {
            let mut map = self.studies.lock().expect("studies lock");
            if map.contains_key(&id) {
                return (
                    409,
                    "application/json",
                    error_body(&format!("study '{id}' already exists")),
                );
            }
            map.insert(id.clone(), Arc::clone(&study));
        }
        let io = std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))
            .and_then(|()| {
                std::fs::write(dir.join("spec.json"), spec_json)
                    .map_err(|e| format!("cannot write spec.json: {e}"))
            });
        if let Err(e) = io {
            // Release the reservation so a retry isn't answered with 409.
            self.studies.lock().expect("studies lock").remove(&id);
            return (500, "application/json", error_body(&e));
        }
        spawn_driver(
            study,
            Arc::clone(&self.pool),
            self.workers,
            Arc::clone(&self.active),
            false,
        );
        (201, "application/json", format!("{{\"id\":\"{}\"}}", escape(&id)))
    }
}

fn not_found(id: &str) -> (u16, &'static str, String) {
    (
        404,
        "application/json",
        error_body(&format!("no such study '{id}'")),
    )
}

/// Client-chosen ids become directory names; keep them boring. Returns the
/// empty string (submit answers 400) when the name has no alphanumeric
/// character at all — that rejects `"."` and `".."`, which would otherwise
/// survive sanitization intact and let `dir.join(id)` escape the serve root.
fn sanitize_id(name: &str) -> String {
    let id = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect::<String>()
        .trim_matches('-')
        .to_string();
    if id.chars().any(|c| c.is_ascii_alphanumeric()) {
        id
    } else {
        String::new()
    }
}

/// Live journal statistics: total rows, non-cached evaluations, best finite
/// full-fidelity loss. Tolerates a torn final line (the journal may be
/// mid-write).
fn journal_stats(path: &Path) -> (usize, usize, Option<f64>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return (0, 0, None),
    };
    let mut rows = 0usize;
    let mut evaluations = 0usize;
    let mut best: Option<f64> = None;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // A torn final line (journal mid-write) just fails to parse; skip it.
        let Ok(rec) = TrialRecord::from_json(line) else {
            continue;
        };
        rows += 1;
        if !rec.cached {
            evaluations += 1;
        }
        if rec.fidelity >= 1.0 - 1e-9 && rec.loss.is_finite() {
            best = Some(match best {
                Some(b) => b.min(rec.loss),
                None => rec.loss,
            });
        }
    }
    (rows, evaluations, best)
}

fn study_json(study: &Study) -> String {
    let status = study.status();
    let (rows, evaluations, best) = journal_stats(&study.journal_path());
    let mut parts = vec![
        format!("\"id\":\"{}\"", escape(&study.id)),
        format!("\"status\":\"{}\"", status.tag()),
        format!("\"engine\":\"{}\"", study.spec.engine.name()),
        format!("\"max_evaluations\":{}", study.spec.max_evaluations),
        format!("\"journal_rows\":{rows}"),
        format!("\"evaluations\":{evaluations}"),
        // Streamed live from the study's shared MetricsRegistry (unlike the
        // journal stats, this counts trials not yet flushed to disk).
        format!("\"trials\":{}", study.metrics.counter("trial.total")),
    ];
    if let Some(b) = best {
        parts.push(format!("\"best_loss\":{}", num(b)));
    }
    match &status {
        StudyStatus::Done {
            best_loss,
            n_evaluations,
        } => {
            parts.push(format!("\"final_best_loss\":{}", num(*best_loss)));
            parts.push(format!("\"final_evaluations\":{n_evaluations}"));
        }
        StudyStatus::Failed { error } => {
            parts.push(format!("\"error\":\"{}\"", escape(error)));
        }
        _ => {}
    }
    format!("{{{}}}", parts.join(","))
}

fn render_study_report(study: &Study) -> (u16, &'static str, String) {
    let trace = std::fs::read_to_string(study.dir.join("trace.jsonl")).unwrap_or_default();
    let journal = std::fs::read_to_string(study.journal_path()).ok();
    let metrics = std::fs::read_to_string(study.dir.join("metrics.json")).ok();
    let complete = study.status() != StudyStatus::Running;
    match volcanoml_obs::report::render_live_report(
        &trace,
        journal.as_deref(),
        metrics.as_deref(),
        complete,
    ) {
        Ok(text) => (200, "text/plain", text),
        Err(e) => (500, "application/json", error_body(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sanitized_to_directory_safe_names() {
        assert_eq!(sanitize_id("exp one/2"), "exp-one-2");
        assert_eq!(sanitize_id("--weird--"), "weird");
        assert_eq!(sanitize_id("ok_name.v2"), "ok_name.v2");
        assert_eq!(sanitize_id("///"), "");
    }

    #[test]
    fn path_escape_names_are_rejected() {
        // "." and ".." must never become directory names: `dir.join("..")`
        // would write study state outside the serve root.
        assert_eq!(sanitize_id("."), "");
        assert_eq!(sanitize_id(".."), "");
        // Separators collapse to '-', so the remaining dots are inert: the
        // id stays a single path component under the serve root.
        assert_eq!(sanitize_id("../../etc"), "..-..-etc");
        assert_eq!(sanitize_id("._."), "");
        assert_eq!(sanitize_id("..keep2"), "..keep2");
    }
}
