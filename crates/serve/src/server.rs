//! The service itself: a `TcpListener` accept loop routing a small JSON API
//! onto the study registry, one shared [`ExecPool`] across all tenants, and
//! the startup resume scan that re-drives interrupted studies from their
//! journals.
//!
//! Routes (one request per connection, `Connection: close`):
//!
//! | method | path                  | effect                                   |
//! |--------|-----------------------|------------------------------------------|
//! | GET    | `/healthz`            | liveness + occupancy probe               |
//! | GET    | `/metrics`            | Prometheus text exposition (all tenants) |
//! | GET    | `/studies`            | list all studies with status             |
//! | POST   | `/studies`            | submit a [`StudySpec`], returns its id   |
//! | GET    | `/studies/:id`        | status + live journal statistics         |
//! | GET    | `/studies/:id/report` | rendered run report (works mid-run)      |
//! | GET    | `/studies/:id/events` | SSE event stream (`Last-Event-ID` resume)|
//! | DELETE | `/studies/:id`        | request cancellation                     |
//!
//! The observability plane: every request lands in the server-level
//! [`MetricsRegistry`] (per-route/status counters, per-route latency
//! histograms), `GET /metrics` merges that registry with every study's
//! registry (labeled `study="<id>"`) into one Prometheus scrape, and
//! `GET /studies/:id/events` long-polls the study's [`EventBus`] as a
//! close-delimited SSE stream — a subscriber that reconnects with
//! `Last-Event-ID` replays nothing twice.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use volcanoml_exec::{ExecPool, TrialRecord};
use volcanoml_obs::json::{escape, num};
use volcanoml_obs::metrics::MetricsRegistry;
use volcanoml_obs::prometheus::{labeled, PrometheusText};

use crate::http::{error_body, read_request, write_response, write_stream_head, Request};
use crate::spec::StudySpec;
use crate::study::{spawn_driver, Study, StudyStatus};

/// Buckets for HTTP request latency: most routes answer in microseconds,
/// report rendering and SSE streams run much longer.
const HTTP_LATENCY_BUCKETS: [f64; 8] = [1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.1, 1.0, 10.0];

/// How long one SSE long-poll waits on the bus before re-checking the
/// study's lifecycle state and the client's liveness.
const EVENT_POLL: Duration = Duration::from_millis(200);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root directory for study state (one subdirectory per study).
    pub dir: PathBuf,
    /// Shared worker-pool size.
    pub workers: usize,
    /// TCP port on 127.0.0.1; `0` binds an ephemeral port (the actual
    /// address is always written to `<dir>/serve.addr`).
    pub port: u16,
    /// Re-drive interrupted studies found in `dir` at startup.
    pub resume: bool,
    /// Print one structured JSON line per request to stdout (method, path,
    /// status, bytes, microseconds).
    pub log_requests: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            dir: PathBuf::from("volcano-serve"),
            workers: 2,
            port: 0,
            resume: false,
            log_requests: false,
        }
    }
}

struct ServerInner {
    dir: PathBuf,
    pool: Arc<ExecPool>,
    workers: usize,
    /// Studies whose driver thread is currently running; feeds fair-share.
    active: Arc<AtomicUsize>,
    studies: Mutex<BTreeMap<String, Arc<Study>>>,
    next_id: AtomicU64,
    stop_accept: AtomicBool,
    /// Server-level metrics (HTTP traffic, pool occupancy, study counts);
    /// merged with per-study registries by `GET /metrics`.
    metrics: Arc<MetricsRegistry>,
    started: Instant,
    log_requests: bool,
}

/// A running service instance. Dropping it does NOT stop the server; call
/// [`Server::shutdown`] (or let the process exit).
pub struct Server {
    inner: Arc<ServerInner>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds, performs the resume scan, and starts the accept loop.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| format!("cannot create {}: {e}", config.dir.display()))?;
        let workers = config.workers.max(1);
        let inner = Arc::new(ServerInner {
            dir: config.dir.clone(),
            pool: Arc::new(ExecPool::with_workers(workers)),
            workers,
            active: Arc::new(AtomicUsize::new(0)),
            studies: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            stop_accept: AtomicBool::new(false),
            metrics: Arc::new(MetricsRegistry::new()),
            started: Instant::now(),
            log_requests: config.log_requests,
        });
        inner.scan_existing(config.resume)?;
        let listener = TcpListener::bind(("127.0.0.1", config.port))
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", config.port))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        // Publish the actual address so clients (and the CI smoke test) can
        // find an ephemeral-port server.
        std::fs::write(config.dir.join("serve.addr"), format!("{addr}\n"))
            .map_err(|e| format!("cannot write serve.addr: {e}"))?;
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_inner.stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = stream {
                    let conn_inner = Arc::clone(&accept_inner);
                    std::thread::spawn(move || conn_inner.handle_connection(&mut stream));
                }
            }
        });
        Ok(Server {
            inner,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until every registered study has reached a terminal state.
    pub fn join_studies(&self) {
        loop {
            let studies: Vec<Arc<Study>> = {
                let map = self.inner.studies.lock().expect("studies lock");
                map.values().cloned().collect()
            };
            for s in &studies {
                s.join();
            }
            // New studies may have been POSTed while joining; go again until
            // a pass finds nothing running.
            let all_terminal = {
                let map = self.inner.studies.lock().expect("studies lock");
                map.values().all(|s| s.status() != StudyStatus::Running)
            };
            if all_terminal {
                return;
            }
            // A study can be Running with its join handle not yet stored
            // (the window inside spawn_driver), making the joins above
            // no-ops; sleep instead of spinning hot until it appears.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    /// Stops accepting connections, cancels running studies, and joins all
    /// threads. Already-terminal studies keep their results.
    pub fn shutdown(mut self) {
        self.inner.stop_accept.store(true, Ordering::SeqCst);
        // The accept loop only re-checks the flag on a new connection; poke
        // it once so it wakes up and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let studies: Vec<Arc<Study>> = {
            let map = self.inner.studies.lock().expect("studies lock");
            map.values().cloned().collect()
        };
        for s in &studies {
            s.stop.store(true, Ordering::SeqCst);
        }
        for s in &studies {
            s.join();
        }
    }
}

impl ServerInner {
    /// Startup scan: every subdirectory with a `spec.json` is a known study.
    /// Ones without a `result.json` were interrupted; with `resume` they are
    /// re-driven from their journal, otherwise they are listed as failed.
    fn scan_existing(self: &Arc<Self>, resume: bool) -> Result<(), String> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        let mut max_numeric = 0u64;
        for entry in entries.flatten() {
            let dir = entry.path();
            let spec_path = dir.join("spec.json");
            if !spec_path.is_file() {
                continue;
            }
            let id = entry.file_name().to_string_lossy().to_string();
            if let Some(n) = id.strip_prefix("study-").and_then(|s| s.parse::<u64>().ok()) {
                max_numeric = max_numeric.max(n);
            }
            let spec_text = std::fs::read_to_string(&spec_path)
                .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
            let spec = StudySpec::from_json(&spec_text)
                .map_err(|e| format!("{}: {e}", spec_path.display()))?;
            let study = Arc::new(Study::new(id.clone(), spec, dir.clone()));
            let terminal = std::fs::read_to_string(dir.join("result.json"))
                .ok()
                .and_then(|t| StudyStatus::from_json(&t));
            match terminal {
                Some(status) => study.set_status(status),
                None if resume => {
                    // Interrupted: re-drive. The driver replays the journal
                    // (if one exists) before running fresh trials.
                    spawn_driver(
                        Arc::clone(&study),
                        Arc::clone(&self.pool),
                        self.workers,
                        Arc::clone(&self.active),
                        true,
                    );
                }
                None => study.set_status(StudyStatus::Failed {
                    error: "interrupted; restart the server with --resume".to_string(),
                }),
            }
            self.studies
                .lock()
                .expect("studies lock")
                .insert(id, study);
        }
        self.next_id.store(max_numeric + 1, Ordering::SeqCst);
        Ok(())
    }

    fn handle_connection(self: &Arc<Self>, stream: &mut TcpStream) {
        let t0 = Instant::now();
        let req = match read_request(stream) {
            Ok(r) => r,
            Err(e) => {
                let body = error_body(&e.message);
                write_response(stream, e.code, "application/json", &body);
                self.observe_request("-", "-", e.code, body.len(), t0.elapsed());
                return;
            }
        };
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        // The event stream cannot go through route() — it writes the body
        // incrementally on the raw stream instead of returning it sized.
        let (code, bytes) = if req.method == "GET"
            && matches!(segments.as_slice(), ["studies", _, "events"])
        {
            match self.get_study(segments[1]) {
                Some(study) => self.stream_events(stream, &study, req.last_event_id),
                None => {
                    let (code, content_type, body) = not_found(segments[1]);
                    write_response(stream, code, content_type, &body);
                    (code, body.len())
                }
            }
        } else {
            let (code, content_type, body) = self.route(&req);
            write_response(stream, code, content_type, &body);
            (code, body.len())
        };
        self.observe_request(&req.method, &req.path, code, bytes, t0.elapsed());
    }

    /// Records one finished request into the server metrics and, with
    /// `--log-requests`, prints the structured request log line.
    fn observe_request(
        &self,
        method: &str,
        path: &str,
        status: u16,
        bytes: usize,
        elapsed: Duration,
    ) {
        let route = route_template(path);
        let status_str = status.to_string();
        self.metrics.inc_counter(
            &labeled(
                "http.requests",
                &[("method", method), ("route", route), ("status", &status_str)],
            ),
            1,
        );
        self.metrics.observe_with(
            &labeled("http.request_seconds", &[("route", route)]),
            elapsed.as_secs_f64(),
            &HTTP_LATENCY_BUCKETS,
        );
        if self.log_requests {
            let t_unix = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0);
            println!(
                "{{\"t_unix\":{t_unix:.3},\"method\":\"{}\",\"path\":\"{}\",\"status\":{status},\"bytes\":{bytes},\"us\":{}}}",
                escape(method),
                escape(path),
                elapsed.as_micros()
            );
        }
    }

    /// Streams `study`'s event bus as SSE until the study is terminal and
    /// the subscriber has caught up (or the client goes away / the server
    /// shuts down). Returns (status, body bytes written) for the request
    /// log. `cursor` is the client's `Last-Event-ID`, so a reconnect
    /// resumes exactly after the last event it saw.
    fn stream_events(
        &self,
        stream: &mut TcpStream,
        study: &Arc<Study>,
        cursor: Option<u64>,
    ) -> (u16, usize) {
        // A subscriber that stops reading must not pin this thread once the
        // kernel buffer fills; a stalled write aborts the stream.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        if !write_stream_head(stream, "text/event-stream") {
            return (200, 0);
        }
        let mut cursor = cursor;
        let mut sent = 0usize;
        loop {
            let events = study.bus.wait_after(cursor, EVENT_POLL);
            for event in &events {
                let frame = format!(
                    "id: {}\nevent: {}\ndata: {}\n\n",
                    event.id,
                    event.event.kind(),
                    event.to_json()
                );
                if stream.write_all(frame.as_bytes()).is_err() {
                    return (200, sent);
                }
                sent += frame.len();
                cursor = Some(event.id);
            }
            if stream.flush().is_err() {
                return (200, sent);
            }
            // Close once the study is terminal and everything published so
            // far has been delivered (the driver publishes the terminal
            // event before flipping the state, so it is never skipped).
            if study.status() != StudyStatus::Running
                && study.bus.last_id() <= cursor.unwrap_or(0)
            {
                let bye = "event: end\ndata: {}\n\n";
                if stream.write_all(bye.as_bytes()).is_ok() {
                    sent += bye.len();
                }
                let _ = stream.flush();
                return (200, sent);
            }
            if self.stop_accept.load(Ordering::SeqCst) {
                return (200, sent);
            }
            if events.is_empty() {
                // Idle heartbeat: an SSE comment keeps intermediaries from
                // timing the stream out and detects a vanished client.
                if stream.write_all(b": keep-alive\n\n").is_err()
                    || stream.flush().is_err()
                {
                    return (200, sent);
                }
            }
        }
    }

    /// Renders the merged Prometheus scrape: server-level series (refreshed
    /// at scrape time) plus every study's registry labeled `study="<id>"`.
    fn render_metrics(&self) -> String {
        let studies: Vec<(String, Arc<Study>)> = {
            let map = self.studies.lock().expect("studies lock");
            map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        let m = &self.metrics;
        m.set_gauge("serve.uptime_seconds", self.started.elapsed().as_secs_f64());
        m.set_gauge("serve.pool_workers", self.workers as f64);
        m.set_gauge("serve.pool_busy_workers", self.pool.busy_workers() as f64);
        m.set_gauge("serve.pool_queue_depth", self.pool.queued_jobs() as f64);
        m.set_gauge(
            "serve.active_studies",
            self.active.load(Ordering::SeqCst) as f64,
        );
        let mut by_status: BTreeMap<&'static str, usize> = BTreeMap::new();
        for tag in ["running", "done", "failed", "cancelled"] {
            by_status.insert(tag, 0);
        }
        for (_, study) in &studies {
            *by_status.entry(study.status().tag()).or_insert(0) += 1;
        }
        for (tag, count) in &by_status {
            m.set_gauge(&labeled("serve.studies", &[("status", tag)]), *count as f64);
        }
        // Per-tenant worker-seconds: the sum of the study's per-worker
        // busy-time gauges — how much pool time each tenant has consumed.
        let snapshots: Vec<(String, volcanoml_obs::MetricsSnapshot)> = studies
            .iter()
            .map(|(id, study)| (id.clone(), study.metrics.snapshot()))
            .collect();
        for (id, snap) in &snapshots {
            let worker_seconds: f64 = snap
                .gauges
                .iter()
                .filter(|(k, _)| k.starts_with("worker.") && k.ends_with(".busy_s"))
                .map(|(_, v)| *v)
                .sum();
            m.set_gauge(
                &labeled("serve.tenant_worker_seconds", &[("study", id)]),
                worker_seconds,
            );
        }
        let mut prom = PrometheusText::new("volcanoml");
        prom.add_snapshot(&m.snapshot(), &[]);
        for (id, snap) in &snapshots {
            prom.add_snapshot(snap, &[("study", id)]);
        }
        prom.render()
    }

    fn route(self: &Arc<Self>, req: &Request) -> (u16, &'static str, String) {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => (200, "application/json", self.healthz()),
            ("GET", ["metrics"]) => (
                200,
                // The exposition content type; version pins the text format.
                "text/plain; version=0.0.4",
                self.render_metrics(),
            ),
            ("GET", ["studies"]) => (200, "application/json", self.list_studies()),
            ("POST", ["studies"]) => self.submit_study(&req.body),
            ("GET", ["studies", id]) => match self.get_study(id) {
                Some(study) => (200, "application/json", study_json(&study)),
                None => not_found(id),
            },
            ("GET", ["studies", id, "report"]) => match self.get_study(id) {
                Some(study) => render_study_report(&study),
                None => not_found(id),
            },
            ("DELETE", ["studies", id]) => match self.get_study(id) {
                Some(study) => {
                    study.stop.store(true, Ordering::SeqCst);
                    (
                        202,
                        "application/json",
                        format!("{{\"id\":\"{}\",\"status\":\"cancelling\"}}", escape(id)),
                    )
                }
                None => not_found(id),
            },
            (_, ["healthz"]) | (_, ["metrics"]) | (_, ["studies"]) | (_, ["studies", ..]) => (
                405,
                "application/json",
                error_body(&format!("method {} not allowed here", req.method)),
            ),
            _ => (
                404,
                "application/json",
                error_body(&format!("no such route {}", req.path)),
            ),
        }
    }

    /// The liveness probe, grown into an occupancy report: uptime, pool
    /// occupancy/queue depth, and study counts by lifecycle state.
    fn healthz(&self) -> String {
        let (running, done, failed, cancelled) = {
            let map = self.studies.lock().expect("studies lock");
            let mut counts = (0usize, 0usize, 0usize, 0usize);
            for study in map.values() {
                match study.status() {
                    StudyStatus::Running => counts.0 += 1,
                    StudyStatus::Done { .. } => counts.1 += 1,
                    StudyStatus::Failed { .. } => counts.2 += 1,
                    StudyStatus::Cancelled => counts.3 += 1,
                }
            }
            counts
        };
        format!(
            "{{\"status\":\"ok\",\"uptime_s\":{},\"workers\":{},\"busy_workers\":{},\
             \"queue_depth\":{},\"active_studies\":{},\"studies\":{{\"running\":{running},\
             \"done\":{done},\"failed\":{failed},\"cancelled\":{cancelled}}}}}",
            num(self.started.elapsed().as_secs_f64()),
            self.workers,
            self.pool.busy_workers(),
            self.pool.queued_jobs(),
            self.active.load(Ordering::SeqCst),
        )
    }

    fn get_study(&self, id: &str) -> Option<Arc<Study>> {
        self.studies.lock().expect("studies lock").get(id).cloned()
    }

    fn list_studies(&self) -> String {
        let map = self.studies.lock().expect("studies lock");
        let items: Vec<String> = map
            .values()
            .map(|s| {
                format!(
                    "{{\"id\":\"{}\",\"status\":\"{}\"}}",
                    escape(&s.id),
                    s.status().tag()
                )
            })
            .collect();
        format!("{{\"studies\":[{}]}}", items.join(","))
    }

    fn submit_study(self: &Arc<Self>, body: &str) -> (u16, &'static str, String) {
        let spec = match StudySpec::from_json(body) {
            Ok(s) => s,
            Err(e) => return (400, "application/json", error_body(&e)),
        };
        let id = match &spec.name {
            Some(name) => {
                let id = sanitize_id(name);
                if id.is_empty() {
                    return (
                        400,
                        "application/json",
                        error_body("name must contain at least one alphanumeric character"),
                    );
                }
                id
            }
            None => format!("study-{}", self.next_id.fetch_add(1, Ordering::SeqCst)),
        };
        let dir = self.dir.join(&id);
        let spec_json = spec.to_json();
        let study = Arc::new(Study::new(id.clone(), spec, dir.clone()));
        // Reserve the id under the lock, but do the filesystem work outside
        // it — otherwise every other request (health checks included) stalls
        // on this submit's disk latency.
        {
            let mut map = self.studies.lock().expect("studies lock");
            if map.contains_key(&id) {
                return (
                    409,
                    "application/json",
                    error_body(&format!("study '{id}' already exists")),
                );
            }
            map.insert(id.clone(), Arc::clone(&study));
        }
        let io = std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))
            .and_then(|()| {
                std::fs::write(dir.join("spec.json"), spec_json)
                    .map_err(|e| format!("cannot write spec.json: {e}"))
            });
        if let Err(e) = io {
            // Release the reservation so a retry isn't answered with 409.
            self.studies.lock().expect("studies lock").remove(&id);
            return (500, "application/json", error_body(&e));
        }
        spawn_driver(
            study,
            Arc::clone(&self.pool),
            self.workers,
            Arc::clone(&self.active),
            false,
        );
        (201, "application/json", format!("{{\"id\":\"{}\"}}", escape(&id)))
    }
}

/// Collapses a concrete request path onto its route template so HTTP
/// metrics stay bounded-cardinality (study ids never become label values).
fn route_template(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["studies"] => "/studies",
        ["studies", _] => "/studies/:id",
        ["studies", _, "report"] => "/studies/:id/report",
        ["studies", _, "events"] => "/studies/:id/events",
        _ => "other",
    }
}

fn not_found(id: &str) -> (u16, &'static str, String) {
    (
        404,
        "application/json",
        error_body(&format!("no such study '{id}'")),
    )
}

/// Client-chosen ids become directory names; keep them boring. Returns the
/// empty string (submit answers 400) when the name has no alphanumeric
/// character at all — that rejects `"."` and `".."`, which would otherwise
/// survive sanitization intact and let `dir.join(id)` escape the serve root.
fn sanitize_id(name: &str) -> String {
    let id = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect::<String>()
        .trim_matches('-')
        .to_string();
    if id.chars().any(|c| c.is_ascii_alphanumeric()) {
        id
    } else {
        String::new()
    }
}

/// Live journal statistics: total rows, non-cached evaluations, best finite
/// full-fidelity loss. Tolerates a torn final line (the journal may be
/// mid-write).
fn journal_stats(path: &Path) -> (usize, usize, Option<f64>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return (0, 0, None),
    };
    let mut rows = 0usize;
    let mut evaluations = 0usize;
    let mut best: Option<f64> = None;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // A torn final line (journal mid-write) just fails to parse; skip it.
        let Ok(rec) = TrialRecord::from_json(line) else {
            continue;
        };
        rows += 1;
        if !rec.cached {
            evaluations += 1;
        }
        if rec.fidelity >= 1.0 - 1e-9 && rec.loss.is_finite() {
            best = Some(match best {
                Some(b) => b.min(rec.loss),
                None => rec.loss,
            });
        }
    }
    (rows, evaluations, best)
}

fn study_json(study: &Study) -> String {
    let status = study.status();
    let (rows, evaluations, best) = journal_stats(&study.journal_path());
    let mut parts = vec![
        format!("\"id\":\"{}\"", escape(&study.id)),
        format!("\"status\":\"{}\"", status.tag()),
        format!("\"engine\":\"{}\"", study.spec.engine.name()),
        format!("\"max_evaluations\":{}", study.spec.max_evaluations),
        format!("\"journal_rows\":{rows}"),
        format!("\"evaluations\":{evaluations}"),
        // Streamed live from the study's shared MetricsRegistry (unlike the
        // journal stats, this counts trials not yet flushed to disk).
        format!("\"trials\":{}", study.metrics.counter("trial.total")),
    ];
    if let Some(b) = best {
        parts.push(format!("\"best_loss\":{}", num(b)));
    }
    match &status {
        StudyStatus::Done {
            best_loss,
            n_evaluations,
        } => {
            parts.push(format!("\"final_best_loss\":{}", num(*best_loss)));
            parts.push(format!("\"final_evaluations\":{n_evaluations}"));
        }
        StudyStatus::Failed { error } => {
            parts.push(format!("\"error\":\"{}\"", escape(error)));
        }
        _ => {}
    }
    format!("{{{}}}", parts.join(","))
}

fn render_study_report(study: &Study) -> (u16, &'static str, String) {
    let trace = std::fs::read_to_string(study.dir.join("trace.jsonl")).unwrap_or_default();
    let journal = std::fs::read_to_string(study.journal_path()).ok();
    let metrics = std::fs::read_to_string(study.dir.join("metrics.json")).ok();
    let complete = study.status() != StudyStatus::Running;
    match volcanoml_obs::report::render_live_report(
        &trace,
        journal.as_deref(),
        metrics.as_deref(),
        complete,
    ) {
        Ok(text) => (200, "text/plain", text),
        Err(e) => (500, "application/json", error_body(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sanitized_to_directory_safe_names() {
        assert_eq!(sanitize_id("exp one/2"), "exp-one-2");
        assert_eq!(sanitize_id("--weird--"), "weird");
        assert_eq!(sanitize_id("ok_name.v2"), "ok_name.v2");
        assert_eq!(sanitize_id("///"), "");
    }

    #[test]
    fn route_templates_bound_metric_cardinality() {
        assert_eq!(route_template("/healthz"), "/healthz");
        assert_eq!(route_template("/metrics"), "/metrics");
        assert_eq!(route_template("/studies"), "/studies");
        assert_eq!(route_template("/studies/exp-42"), "/studies/:id");
        assert_eq!(route_template("/studies/exp-42/report"), "/studies/:id/report");
        assert_eq!(route_template("/studies/exp-42/events"), "/studies/:id/events");
        assert_eq!(route_template("/nope/deeper/still"), "other");
    }

    #[test]
    fn path_escape_names_are_rejected() {
        // "." and ".." must never become directory names: `dir.join("..")`
        // would write study state outside the serve root.
        assert_eq!(sanitize_id("."), "");
        assert_eq!(sanitize_id(".."), "");
        // Separators collapse to '-', so the remaining dots are inert: the
        // id stays a single path component under the serve root.
        assert_eq!(sanitize_id("../../etc"), "..-..-etc");
        assert_eq!(sanitize_id("._."), "");
        assert_eq!(sanitize_id("..keep2"), "..keep2");
    }
}
