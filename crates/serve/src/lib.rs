//! volcanoml-serve — a persistent, resumable, multi-tenant AutoML service.
//!
//! The crate turns the single-shot `VolcanoML::fit` engine into a daemon:
//! clients `POST` study specifications over a tiny std-only HTTP/JSON API,
//! the server schedules every study onto ONE shared [`volcanoml_exec::ExecPool`]
//! under fair-share batch caps (each of the k active studies gets at most
//! `workers / k` slots per batch), and all trial evidence streams to a
//! per-study directory: `spec.json`, the crash-safe trial journal,
//! `trace.jsonl`, `metrics.json`, and a terminal `result.json`.
//!
//! The keystone property is **crash-resume**: `kill -9` the server, restart
//! it with `resume`, and every interrupted study continues where it left
//! off. This works because engine schedules are deterministic functions of
//! the seed and the observed losses (replay-by-redrive): the driver rebuilds
//! the study's block tree from `spec.json`, attaches the journal as a replay
//! table, and re-drives the fit — journaled trials answer bitwise from the
//! replay table without re-executing or re-journaling, then fresh trials
//! continue with ids past the journal's maximum. No duplicate trial ids, and
//! the final [`volcanoml_core::StudyState`] matches an uninterrupted run.
//!
//! ```text
//! clients ──HTTP──▶ Server (accept loop, routes)
//!                     │ POST /studies      ──▶ Study dir + driver thread
//!                     │ GET  /studies/:id  ──▶ status + live journal stats
//!                     │ GET  .../report    ──▶ render_live_report (mid-run ok)
//!                     │ GET  .../events    ──▶ SSE stream of the study's EventBus
//!                     │ GET  /metrics      ──▶ Prometheus scrape (all tenants)
//!                     │ DELETE /studies/:id──▶ stop flag → cancelled
//!                     ▼
//!               shared ExecPool (fair-share batch caps)
//! ```
//!
//! The **live observability plane** (PR 8) rides on the same registry and
//! tracer hooks the archival artifacts use: each study owns a bounded
//! [`volcanoml_obs::EventBus`] fed from the evaluator's trial hook (no new
//! engine plumbing), `GET /studies/:id/events` streams it as SSE with
//! `Last-Event-ID` resume, and `GET /metrics` merges the server-level
//! registry (HTTP traffic, pool occupancy, fair-share decisions) with every
//! study's registry into one Prometheus text exposition, one `study` label
//! per tenant. The evaluator times its own recording work into an
//! `obs.self_overhead_s` histogram, so a scrape can prove the whole plane
//! costs well under 1% of trial wall time.

pub mod http;
pub mod server;
pub mod spec;
pub mod study;

pub use server::{ServeConfig, Server};
pub use spec::{DatasetSpec, StudySpec};
pub use study::{Study, StudyStatus};
