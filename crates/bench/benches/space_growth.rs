//! Incremental space-construction study (`results/BENCH_space.json`).
//!
//! Measures the tentpole claim of staged space growth: on a
//! heavy-categorical dataset, starting the search from the minimal
//! pipeline space and expanding on plateau evidence must reach the
//! fixed-space run's quality at no more than 1.05x the trial budget —
//! the stage-0 space is strictly smaller (fewer FE variables to model),
//! so early trials are spent on the choices that matter first.
//!
//! Per seed, both modes get the same evaluation budget; `trials_to`
//! counts evaluations until each run's incumbent reaches the worse of
//! the two final bests (a target both provably hit). Aggregated over
//! fixed seeds the gate is `incremental_ratio <= 1.05`, plus a smoke
//! check that at least one expansion actually fired and was journaled.
//!
//! Run: `cargo bench --bench space_growth` (`VOLCANO_QUICK=1` trims seeds).

use volcanoml_bench::{print_table, quick, scaled, write_csv};
use volcanoml_core::growth::incremental_seed;
use volcanoml_core::{SpaceDef, SpaceGrowth, SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::make_categorical;
use volcanoml_data::Task;

/// Evaluations until the trajectory's incumbent reaches `target`.
fn trials_to(trajectory: &[(usize, f64, f64)], target: f64) -> usize {
    trajectory
        .iter()
        .find(|(_, _, best)| *best <= target + 1e-12)
        .map(|(i, _, _)| *i)
        .unwrap_or(usize::MAX)
}

fn run(
    data: &volcanoml_data::Dataset,
    seed: u64,
    evals: usize,
    growth: SpaceGrowth,
    journal: Option<std::path::PathBuf>,
) -> (f64, Vec<(usize, f64, f64)>, usize) {
    let options = VolcanoMlOptions {
        max_evaluations: evals,
        seed,
        space_growth: growth,
        journal_path: journal.clone(),
        ..Default::default()
    };
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Medium, options);
    let fitted = engine.fit(data).expect("bench fit succeeds");
    let expansions = journal
        .map(|p| {
            let text = std::fs::read_to_string(&p).unwrap_or_default();
            let _ = std::fs::remove_file(&p);
            text.lines()
                .filter(|l| l.contains("\"event\":\"expansion\""))
                .count()
        })
        .unwrap_or(0);
    (fitted.report.best_loss, fitted.report.trajectory, expansions)
}

fn main() {
    let evals = 40;
    let n_seeds = scaled(8, 4) as u64;
    // Permissive enough that the plateau window fires inside the budget on
    // a Medium-tier space, tight enough that a still-improving stage keeps
    // its trials.
    let growth = SpaceGrowth::Incremental { eui_threshold: 0.05 };
    eprintln!("space_growth: {evals} evals, {n_seeds} seeds, threshold 0.05");

    let full = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
    let stage0 = incremental_seed(&full).expect("minimal seed builds");
    assert!(
        stage0.len() < full.len(),
        "stage-0 must expose strictly fewer variables ({} vs {})",
        stage0.len(),
        full.len()
    );

    let mut fixed_total = 0usize;
    let mut incremental_total = 0usize;
    let mut expansions_total = 0usize;
    let mut rows = Vec::new();
    for seed in 0..n_seeds {
        // Label = hash-parity of hidden categorical columns: exactly the
        // regime where encoder/transform choices move the loss.
        let data = make_categorical(400, 6, 8, 2, 0.05, seed);
        let journal = std::env::temp_dir().join(format!(
            "volcanoml-bench-space-{}-{seed}.jsonl",
            std::process::id()
        ));
        let (fixed_best, fixed_traj, _) = run(&data, seed, evals, SpaceGrowth::Fixed, None);
        let (inc_best, inc_traj, expansions) =
            run(&data, seed, evals, growth, Some(journal));
        // The worse of the two final bests: a quality level both runs
        // demonstrably reached within the budget.
        let target = fixed_best.max(inc_best);
        let ft = trials_to(&fixed_traj, target);
        let it = trials_to(&inc_traj, target);
        assert!(
            ft != usize::MAX && it != usize::MAX,
            "seed {seed}: both runs must reach the common target"
        );
        fixed_total += ft;
        incremental_total += it;
        expansions_total += expansions;
        rows.push(vec![
            seed.to_string(),
            format!("{fixed_best:.4}"),
            format!("{inc_best:.4}"),
            ft.to_string(),
            it.to_string(),
            expansions.to_string(),
        ]);
    }
    let ratio = incremental_total as f64 / fixed_total as f64;
    let headers: Vec<String> = [
        "seed",
        "fixed_best",
        "incremental_best",
        "fixed_trials_to_target",
        "incremental_trials_to_target",
        "expansions",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    print_table("trials to reach the common target loss", &headers, &rows);
    write_csv("BENCH_space.csv", &headers, &rows);
    println!(
        "aggregate: incremental {incremental_total} trials vs fixed {fixed_total} \
         ({ratio:.2}x) over {n_seeds} seeds, {expansions_total} journaled expansions"
    );

    let json = format!(
        "{{\n  \"bench\": \"space_growth_trials_to_target\",\n  \
         \"evals\": {evals},\n  \"n_seeds\": {n_seeds},\n  \
         \"stage0_vars\": {},\n  \"full_vars\": {},\n  \
         \"fixed_trials_total\": {fixed_total},\n  \
         \"incremental_trials_total\": {incremental_total},\n  \
         \"expansions_total\": {expansions_total},\n  \
         \"incremental_ratio\": {ratio:.4}\n}}\n",
        stage0.len(),
        full.len()
    );
    let dir = volcanoml_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_space.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    // Acceptance gates: incremental reaches fixed-space quality within
    // 1.05x the trials, and the growth machinery actually engaged (at
    // least one expansion journaled across the seeds).
    assert!(
        ratio <= 1.05,
        "acceptance: incremental must reach the target within 1.05x the \
         fixed-space trials (got {ratio:.2}x: {incremental_total} vs {fixed_total})"
    );
    assert!(
        expansions_total >= 1,
        "acceptance: expected at least one journaled expansion across {n_seeds} seeds"
    );
    if quick() {
        println!("quick mode: gates checked on {n_seeds} seeds");
    }
}
