//! Parallel-scaling study for the trial-execution engine (`volcanoml-exec`).
//!
//! Part 1 (the headline claim): a *fixed* pre-sampled trial set is evaluated
//! through `Evaluator::evaluate_batch` on pools of 1, 2 and 4 workers, with a
//! constant per-trial latency injected through the evaluator's fault hook
//! (modeling the data-loading / dispatch wait every distributed executor
//! hides). Latency overlaps across workers regardless of core count, so the
//! speedup is machine-independent; the trial set — and therefore the best
//! loss — is identical by construction at equal seeds, which the bench
//! asserts.
//!
//! Part 2: the same fixed trial set with no injected latency — pure
//! CPU-bound scaling, which tops out at the host's available parallelism
//! (printed alongside).
//!
//! Part 3: end-to-end `VolcanoML::fit` with `n_workers` 1 vs 4 on the same
//! dataset and seed. The 4-worker run uses constant-liar batch suggestion,
//! so losses may differ slightly; the table reports both.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use volcanoml_bench::{print_table, quick, scaled, write_csv};
use volcanoml_core::evaluator::{EvalOutcome, Evaluator, Fault};
use volcanoml_core::{SpaceDef, SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::{Metric, Task};
use volcanoml_exec::ExecPool;

fn dataset(seed: u64) -> volcanoml_data::Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: if quick() { 300 } else { 600 },
            n_features: 12,
            n_informative: 7,
            n_redundant: 2,
            n_classes: 2,
            class_sep: 1.0,
            flip_y: 0.05,
            weights: Vec::new(),
        },
        seed,
    )
}

fn sample_trials(space: &SpaceDef, n: usize, seed: u64) -> Vec<(HashMap<String, f64>, f64)> {
    let compiled = space
        .compile_subspace(&space.var_names(), &HashMap::new())
        .unwrap();
    let mut rng = volcanoml_data::rand_util::rng_from_seed(seed);
    (0..n)
        .map(|_| (compiled.to_map(&compiled.sample(&mut rng)), 1.0))
        .collect()
}

fn best_loss(outcomes: &[EvalOutcome]) -> f64 {
    outcomes
        .iter()
        .map(|o| o.loss)
        .fold(f64::INFINITY, f64::min)
}

/// Evaluates the fixed trial set on a fresh evaluator with `workers`
/// threads, optionally injecting a per-trial stall. Returns (wall, best).
fn run_once(
    space: &SpaceDef,
    d: &volcanoml_data::Dataset,
    trials: &[(HashMap<String, f64>, f64)],
    workers: usize,
    stall: Option<Duration>,
) -> (f64, f64) {
    let ev = Evaluator::new(space.clone(), d, Metric::BalancedAccuracy, 9).unwrap();
    if let Some(lat) = stall {
        ev.set_fault_hook(Arc::new(move |_a, _f| Some(Fault::Stall(lat))));
    }
    let pool = ExecPool::with_workers(workers);
    let start = Instant::now();
    let outcomes = ev.evaluate_batch(&pool, trials);
    (start.elapsed().as_secs_f64(), best_loss(&outcomes))
}

fn scaling_table(
    title: &str,
    csv: &str,
    space: &SpaceDef,
    d: &volcanoml_data::Dataset,
    trials: &[(HashMap<String, f64>, f64)],
    stall: Option<Duration>,
) {
    let headers: Vec<String> = ["workers", "wall_s", "speedup", "best_loss"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut base_wall = None;
    let mut base_best = None;
    for workers in [1usize, 2, 4] {
        let (wall, best) = run_once(space, d, trials, workers, stall);
        let base = *base_wall.get_or_insert(wall);
        let reference = *base_best.get_or_insert(best);
        assert_eq!(
            best, reference,
            "best loss must be identical across worker counts on a fixed trial set"
        );
        rows.push(vec![
            workers.to_string(),
            format!("{wall:.3}"),
            format!("{:.2}x", base / wall),
            format!("{best:.4}"),
        ]);
        eprintln!("  workers={workers}: {wall:.3}s, best loss {best:.4}");
    }
    print_table(title, &headers, &rows);
    write_csv(csv, &headers, &rows);
}

fn main() {
    let d = dataset(17);
    let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
    let n_trials = scaled(24, 12);
    let trials = sample_trials(&space, n_trials, 23);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "Parallel scaling: {} fixed trials, {cores} core(s) available, quick={}",
        trials.len(),
        quick()
    );

    // Part 1: latency-bound scaling (machine-independent overlap).
    let stall = Duration::from_millis(if quick() { 40 } else { 80 });
    scaling_table(
        &format!(
            "Executor scaling, {}ms injected per-trial latency (identical best loss)",
            stall.as_millis()
        ),
        "parallel_scaling.csv",
        &space,
        &d,
        &trials,
        Some(stall),
    );

    // Part 2: CPU-bound scaling (bounded by available cores).
    scaling_table(
        &format!("Executor scaling, CPU-bound trials ({cores} core(s) on this host)"),
        "parallel_scaling_cpu.csv",
        &space,
        &d,
        &trials,
        None,
    );

    // Part 3: end-to-end fit, serial vs 4-worker batch search.
    let budget = scaled(24, 10);
    let mut fit_rows = Vec::new();
    for workers in [1usize, 4] {
        let options = VolcanoMlOptions {
            max_evaluations: budget,
            seed: 31,
            n_workers: workers,
            ..Default::default()
        };
        let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
        let start = Instant::now();
        let fitted = engine.fit(&d).expect("fit failed");
        let wall = start.elapsed().as_secs_f64();
        fit_rows.push(vec![
            workers.to_string(),
            format!("{wall:.3}"),
            format!("{:.4}", fitted.report.best_loss),
            fitted.report.n_evaluations.to_string(),
        ]);
        eprintln!(
            "  fit workers={workers}: {wall:.3}s, best loss {:.4}",
            fitted.report.best_loss
        );
    }
    let fit_headers: Vec<String> = ["workers", "wall_s", "best_loss", "evaluations"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    print_table(
        "End-to-end fit, serial vs batch search (constant-liar suggestions)",
        &fit_headers,
        &fit_rows,
    );
    write_csv("parallel_scaling_fit.csv", &fit_headers, &fit_rows);
}
