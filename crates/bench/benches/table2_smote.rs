//! Table 2 reproduction: search-space enrichment with the `smote_balancer`
//! operator on five imbalanced datasets. Columns: AUSK⁻ (cannot accept the
//! fine-grained enrichment), VolcanoML⁻ without the enrichment, VolcanoML⁻
//! with SMOTE added to the balancing stage. The paper reports balanced
//! accuracy (higher is better); enrichment should help, e.g. +3.57 points on
//! pc2 over auto-sklearn.

use volcanoml_bench::{print_table, quick, scaled, split_and_run, write_csv, SystemSpec};
use volcanoml_core::{EngineKind, SpaceDef};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::repository::imbalanced_suite;
use volcanoml_data::{Metric, Task};
use volcanoml_fe::pipeline::FeSpaceOptions;

fn main() {
    let budget = scaled(25, 10);
    let datasets: Vec<_> = if quick() {
        imbalanced_suite().into_iter().take(2).collect()
    } else {
        imbalanced_suite()
    };
    let metric = Metric::BalancedAccuracy;
    let base_space = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    let enriched_space = SpaceDef::enriched(
        Task::Classification,
        FeSpaceOptions {
            include_smote: true,
            embedding: None,
        },
    );
    eprintln!(
        "Table 2: {} imbalanced datasets, budget {budget}, quick={}; \
         enriched space has {} vars vs {} base",
        datasets.len(),
        quick(),
        enriched_space.len(),
        base_space.len()
    );

    let headers = vec![
        "dataset".to_string(),
        "imbalance".to_string(),
        "AUSK-".to_string(),
        "VolcanoML-".to_string(),
        "VolcanoML-+smote".to_string(),
    ];
    let mut rows = Vec::new();
    for (di, dataset) in datasets.iter().enumerate() {
        let seed = derive_seed(31, di as u64);
        let ausk = split_and_run(
            &SystemSpec::Ausk { meta: false },
            &base_space,
            dataset,
            metric,
            budget,
            seed,
            None,
        );
        let volcano = split_and_run(
            &SystemSpec::VolcanoMl {
                meta: false,
                engine: EngineKind::Bo,
            },
            &base_space,
            dataset,
            metric,
            budget,
            derive_seed(seed, 1),
            None,
        );
        let volcano_smote = split_and_run(
            &SystemSpec::VolcanoMl {
                meta: false,
                engine: EngineKind::Bo,
            },
            &enriched_space,
            dataset,
            metric,
            budget,
            derive_seed(seed, 2),
            None,
        );
        // Report balanced accuracy (= 1 - loss), as the paper does.
        let acc = |r: &volcanoml_core::Result<volcanoml_bench::RunOutcome>| -> String {
            match r {
                Ok(out) => format!("{:.4}", 1.0 - out.test_loss),
                Err(e) => {
                    eprintln!("  failure on {}: {e}", dataset.name);
                    "fail".to_string()
                }
            }
        };
        let row = vec![
            dataset.name.clone(),
            format!("{:.1}", dataset.imbalance_ratio()),
            acc(&ausk),
            acc(&volcano),
            acc(&volcano_smote),
        ];
        eprintln!("  {row:?}");
        rows.push(row);
    }

    print_table(
        "Table 2: balanced accuracy with smote_balancer enrichment",
        &headers,
        &rows,
    );
    write_csv("table2_smote.csv", &headers, &rows);
}
