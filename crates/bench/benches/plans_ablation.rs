//! Execution-plan study (§4 "Alternative Execution Plans" + appendix):
//! compares the five coarse-grained plans on a slice of the classification
//! suite and reports average ranks — the brute-force "automatic plan
//! generation" the paper sketches. Expected shape: P3 (the Figure 2 plan)
//! comes out best, which is why VolcanoML ships it as the default.

use volcanoml_bench::{
    average_ranks, maybe_truncate, print_table, quick, scaled, split_and_run, write_csv,
    SystemSpec,
};
use volcanoml_core::plans::enumerate_coarse_plans;
use volcanoml_core::{EngineKind, SpaceDef};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::repository::medium_classification_suite;
use volcanoml_data::{Metric, Task};

fn main() {
    let budget = scaled(25, 10);
    let datasets = maybe_truncate(
        medium_classification_suite()
            .into_iter()
            .step_by(5)
            .collect(),
        3,
    );
    let metric = Metric::BalancedAccuracy;
    let space = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    let plans = enumerate_coarse_plans(EngineKind::Bo);
    eprintln!(
        "Plan ablation: {} datasets x {} plans, budget {budget}, quick={}",
        datasets.len(),
        plans.len(),
        quick()
    );

    let mut losses: Vec<Vec<f64>> = Vec::new();
    let mut detail_rows = Vec::new();
    for (di, dataset) in datasets.iter().enumerate() {
        let mut per_dataset = Vec::new();
        for (pi, (name, plan)) in plans.iter().enumerate() {
            let spec = SystemSpec::Plan {
                name: name.to_string(),
                plan: plan.clone(),
            };
            let seed = derive_seed(derive_seed(47, di as u64), pi as u64);
            let loss = match split_and_run(&spec, &space, dataset, metric, budget, seed, None) {
                Ok(out) => out.test_loss,
                Err(e) => {
                    eprintln!("  {name} on {}: {e}", dataset.name);
                    f64::INFINITY
                }
            };
            per_dataset.push(loss);
            detail_rows.push(vec![
                dataset.name.clone(),
                name.to_string(),
                format!("{loss:.4}"),
            ]);
        }
        eprintln!("  {} done ({}/{})", dataset.name, di + 1, datasets.len());
        losses.push(per_dataset);
    }

    let ranks = average_ranks(&losses);
    let headers: Vec<String> = std::iter::once("metric".to_string())
        .chain(plans.iter().map(|(n, _)| n.to_string()))
        .collect();
    let mut row = vec!["avg rank".to_string()];
    row.extend(ranks.iter().map(|r| format!("{r:.2}")));
    print_table(
        "Plan study: average ranks of the five coarse-grained plans",
        &headers,
        &[row.clone()],
    );
    // Plan shapes for the record.
    for (name, plan) in &plans {
        println!("  {name}: {}", plan.render());
    }
    write_csv("plans_ablation_ranks.csv", &headers, &[row]);
    write_csv(
        "plans_ablation_detail.csv",
        &[
            "dataset".to_string(),
            "plan".to_string(),
            "test_loss".to_string(),
        ],
        &detail_rows,
    );
}
