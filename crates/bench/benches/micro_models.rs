//! Criterion micro-benchmarks for the model zoo — per-evaluation training
//! costs that dominate the AutoML budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use volcanoml_data::synthetic::{make_classification, make_regression, ClassificationSpec, RegressionSpec};
use volcanoml_models::forest::{ForestClassifier, ForestConfig};
use volcanoml_models::linear::{LogisticRegression, RidgeRegression};
use volcanoml_models::tree::{DecisionTreeClassifier, TreeConfig};
use volcanoml_models::Estimator;

fn bench_models(c: &mut Criterion) {
    let d = make_classification(
        &ClassificationSpec {
            n_samples: 500,
            n_features: 12,
            n_informative: 6,
            n_redundant: 2,
            n_classes: 3,
            class_sep: 1.0,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        0,
    );
    c.bench_function("models/tree_fit_500x12", |b| {
        b.iter(|| {
            let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/forest50_fit_500x12", |b| {
        b.iter(|| {
            let mut m = ForestClassifier::new(ForestConfig::random_forest());
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/logistic_fit_500x12", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::new(1e-4, 0.1, 30, 0);
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });

    let r = make_regression(
        &RegressionSpec {
            n_samples: 500,
            n_features: 12,
            n_informative: 6,
            noise: 0.3,
            nonlinear: false,
        },
        1,
    );
    c.bench_function("models/ridge_fit_500x12", |b| {
        b.iter(|| {
            let mut m = RidgeRegression::new(1.0);
            m.fit(&r.x, &r.y).unwrap();
            black_box(m)
        })
    });

    // Prediction throughput.
    let mut forest = ForestClassifier::new(ForestConfig::random_forest());
    forest.fit(&d.x, &d.y).unwrap();
    c.bench_function("models/forest50_predict_500", |b| {
        b.iter(|| black_box(forest.predict(&d.x).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_models
}
criterion_main!(benches);
