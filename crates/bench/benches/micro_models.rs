//! Criterion micro-benchmarks for the model zoo — per-evaluation training
//! costs that dominate the AutoML budget — plus a timed exact-vs-histogram
//! forest comparison at AutoML-realistic scale (~10k rows) that emits
//! `results/BENCH_models.json`.

use criterion::{criterion_group, Criterion};
use rand::RngExt;
use std::hint::black_box;
use std::time::Instant;
use volcanoml_data::rand_util::{derive_seed, rng_from_seed};
use volcanoml_data::synthetic::{
    make_classification, make_regression, ClassificationSpec, RegressionSpec,
};
use volcanoml_data::{metrics::accuracy, train_test_split};
use volcanoml_models::binned::{BinnedMatrix, DEFAULT_MAX_BINS};
use volcanoml_models::forest::{ForestClassifier, ForestConfig};
use volcanoml_models::linear::{LogisticRegression, RidgeRegression};
use volcanoml_models::tree::{
    DecisionTreeClassifier, HistKernel, MaxFeatures, SplitStrategy, Tree, TreeConfig,
};
use volcanoml_models::Estimator;

fn bench_models(c: &mut Criterion) {
    let d = make_classification(
        &ClassificationSpec {
            n_samples: 500,
            n_features: 12,
            n_informative: 6,
            n_redundant: 2,
            n_classes: 3,
            class_sep: 1.0,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        0,
    );
    c.bench_function("models/tree_fit_500x12", |b| {
        b.iter(|| {
            let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/forest50_fit_500x12", |b| {
        b.iter(|| {
            let mut m = ForestClassifier::new(ForestConfig::random_forest());
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/forest50_hist_fit_500x12", |b| {
        b.iter(|| {
            let mut cfg = ForestConfig::random_forest();
            cfg.split_strategy = SplitStrategy::Histogram;
            let mut m = ForestClassifier::new(cfg);
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/logistic_fit_500x12", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::new(1e-4, 0.1, 30, 0);
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });

    let r = make_regression(
        &RegressionSpec {
            n_samples: 500,
            n_features: 12,
            n_informative: 6,
            noise: 0.3,
            nonlinear: false,
        },
        1,
    );
    c.bench_function("models/ridge_fit_500x12", |b| {
        b.iter(|| {
            let mut m = RidgeRegression::new(1.0);
            m.fit(&r.x, &r.y).unwrap();
            black_box(m)
        })
    });

    // Prediction throughput.
    let mut forest = ForestClassifier::new(ForestConfig::random_forest());
    forest.fit(&d.x, &d.y).unwrap();
    c.bench_function("models/forest50_predict_500", |b| {
        b.iter(|| black_box(forest.predict(&d.x).unwrap()))
    });
}

/// Times one forest fit, taking the fastest of `reps` identical fits —
/// single-shot wall clocks on a busy box swing ±20 %, which is wider than
/// the ratios `scripts/ci.sh` gates on. Returns `(fit_ms, test_accuracy)`.
fn timed_forest_fit(
    train: &volcanoml_data::Dataset,
    test: &volcanoml_data::Dataset,
    strategy: SplitStrategy,
    n_jobs: usize,
    f32_binning: bool,
    reps: usize,
) -> (f64, f64) {
    let mut cfg = ForestConfig::random_forest();
    cfg.n_estimators = 40;
    cfg.split_strategy = strategy;
    cfg.n_jobs = n_jobs;
    cfg.f32_binning = f32_binning;
    let mut fit_ms = f64::INFINITY;
    let mut acc = 0.0;
    for _ in 0..reps.max(1) {
        let mut m = ForestClassifier::new(cfg.clone());
        let start = Instant::now();
        m.fit(&train.x, &train.y).unwrap();
        fit_ms = fit_ms.min(start.elapsed().as_secs_f64() * 1e3);
        acc = accuracy(&test.y, &m.predict(&test.x).unwrap());
    }
    (fit_ms, acc)
}

/// Fits `n_trees` bootstrapped histogram trees against a prebuilt binned
/// layout with one kernel. Both kernels are handed identical statistical
/// work (same seeds, same bootstrap weights, same cut points), so the
/// timing ratio isolates per-node kernel cost: u8 vs u16 code reads, fused
/// vs per-access row statistics, pooled flat arenas vs per-node buffers.
fn timed_kernel_fit(
    bm: &BinnedMatrix,
    y: &[f64],
    n_classes: usize,
    kernel: HistKernel,
    n_trees: u64,
    reps: usize,
) -> f64 {
    let n = bm.n_rows();
    // The bootstrap weights are statistical setup shared by both kernels,
    // not kernel work — build them outside the timed region.
    let counts: Vec<Vec<f64>> = (0..n_trees)
        .map(|t| {
            let mut rng = rng_from_seed(derive_seed(0, 5000 + t));
            let mut c = vec![0.0; n];
            for _ in 0..n {
                c[rng.random_range(0..n)] += 1.0;
            }
            c
        })
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for t in 0..n_trees {
            let mut cfg = TreeConfig::classification();
            cfg.split_strategy = SplitStrategy::Histogram;
            cfg.max_features = MaxFeatures::Sqrt;
            cfg.max_depth = 14;
            cfg.hist_kernel = kernel;
            cfg.seed = derive_seed(0, t);
            black_box(Tree::fit_binned(bm, y, Some(&counts[t as usize]), n_classes, &cfg).unwrap());
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Histogram forest training at ~10k rows: exact-vs-histogram headline,
/// per-`n_jobs` rows, the PR 2 kernel (forced-u16 codes + per-node buffers)
/// against the flat u8 kernel, and the f32-binning accuracy delta. Written
/// to `results/BENCH_models.json`; `scripts/ci.sh` gates on the accuracy
/// and parallel fields.
fn histogram_speedup_report() {
    let d = make_classification(
        &ClassificationSpec {
            n_samples: 10_000,
            n_features: 20,
            n_informative: 10,
            n_redundant: 4,
            n_classes: 3,
            class_sep: 1.0,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        7,
    );
    let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
    // The exact fit is the slow headline-only number (no ratio gate), one
    // rep; the histogram fits feed the ci.sh ratio gates, best-of-2.
    let (exact_ms, exact_acc) = timed_forest_fit(&train, &test, SplitStrategy::Best, 1, false, 1);
    let (hist_ms, hist_acc) = timed_forest_fit(&train, &test, SplitStrategy::Histogram, 1, false, 2);
    let (hist2_ms, hist2_acc) =
        timed_forest_fit(&train, &test, SplitStrategy::Histogram, 2, false, 2);
    let (hist4_ms, hist4_acc) =
        timed_forest_fit(&train, &test, SplitStrategy::Histogram, 4, false, 2);
    assert_eq!(hist_acc, hist2_acc, "n_jobs must not change the fit");
    assert_eq!(hist_acc, hist4_acc, "n_jobs must not change the fit");
    let (f32_ms, f32_acc) = timed_forest_fit(&train, &test, SplitStrategy::Histogram, 1, true, 2);

    // Kernel-isolated comparison: same trees, pre-binned layouts,
    // best-of-5 passes per kernel.
    let n_trees = 40u64;
    let bm_u8 = BinnedMatrix::from_matrix(&train.x, DEFAULT_MAX_BINS);
    let bm_u16 = BinnedMatrix::from_matrix_u16(&train.x, DEFAULT_MAX_BINS);
    // One warm-up pass so allocator and slab-pool state is steady for both.
    let _ = timed_kernel_fit(&bm_u8, &train.y, 3, HistKernel::Flat, 2, 1);
    let _ = timed_kernel_fit(&bm_u16, &train.y, 3, HistKernel::PerNode, 2, 1);
    let legacy_kernel_ms = timed_kernel_fit(&bm_u16, &train.y, 3, HistKernel::PerNode, n_trees, 5);
    let flat_kernel_ms = timed_kernel_fit(&bm_u8, &train.y, 3, HistKernel::Flat, n_trees, 5);

    let speedup = exact_ms / hist_ms;
    let parallel_speedup = hist_ms / hist4_ms;
    let kernel_speedup = legacy_kernel_ms / flat_kernel_ms;
    let n_cpus = volcanoml_models::parallel::hardware_parallelism();
    let json = format!(
        "{{\n  \"bench\": \"forest40_fit_{}x{}\",\n  \"n_rows\": {},\n  \"n_features\": {},\n  \
         \"n_trees\": 40,\n  \"n_cpus\": {n_cpus},\n  \"exact_fit_ms\": {exact_ms:.1},\n  \
         \"hist_fit_ms\": {hist_ms:.1},\n  \"speedup\": {speedup:.2},\n  \
         \"hist_fit_ms_n_jobs1\": {hist_ms:.1},\n  \"hist_fit_ms_n_jobs2\": {hist2_ms:.1},\n  \
         \"hist_fit_ms_n_jobs4\": {hist4_ms:.1},\n  \
         \"parallel_speedup\": {parallel_speedup:.2},\n  \
         \"legacy_kernel_ms\": {legacy_kernel_ms:.1},\n  \
         \"flat_kernel_ms\": {flat_kernel_ms:.1},\n  \
         \"kernel_speedup\": {kernel_speedup:.2},\n  \
         \"f32_hist_fit_ms\": {f32_ms:.1},\n  \"exact_acc\": {exact_acc:.4},\n  \
         \"hist_acc\": {hist_acc:.4},\n  \"accuracy_delta\": {:.4},\n  \
         \"f32_acc\": {f32_acc:.4},\n  \"f32_accuracy_delta\": {:.4}\n}}\n",
        train.n_samples(),
        train.n_features(),
        train.n_samples(),
        train.n_features(),
        hist_acc - exact_acc,
        f32_acc - hist_acc,
    );
    println!("\nhistogram vs exact forest fit ({} rows):", train.n_samples());
    print!("{json}");
    let dir = volcanoml_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_models.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_models
}

fn main() {
    // Quick mode (scripts/ci.sh smoke): skip the criterion micro-benches
    // and run only the JSON report, which the gate below parses.
    if volcanoml_bench::quick() {
        println!("VOLCANO_QUICK set: skipping criterion micro-benches");
    } else {
        benches();
    }
    histogram_speedup_report();
}
