//! Criterion micro-benchmarks for the model zoo — per-evaluation training
//! costs that dominate the AutoML budget — plus a timed exact-vs-histogram
//! forest comparison at AutoML-realistic scale (~10k rows) that emits
//! `results/BENCH_models.json`.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::time::Instant;
use volcanoml_data::synthetic::{
    make_classification, make_regression, ClassificationSpec, RegressionSpec,
};
use volcanoml_data::{metrics::accuracy, train_test_split};
use volcanoml_models::forest::{ForestClassifier, ForestConfig};
use volcanoml_models::linear::{LogisticRegression, RidgeRegression};
use volcanoml_models::tree::{DecisionTreeClassifier, SplitStrategy, TreeConfig};
use volcanoml_models::Estimator;

fn bench_models(c: &mut Criterion) {
    let d = make_classification(
        &ClassificationSpec {
            n_samples: 500,
            n_features: 12,
            n_informative: 6,
            n_redundant: 2,
            n_classes: 3,
            class_sep: 1.0,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        0,
    );
    c.bench_function("models/tree_fit_500x12", |b| {
        b.iter(|| {
            let mut m = DecisionTreeClassifier::new(TreeConfig::classification());
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/forest50_fit_500x12", |b| {
        b.iter(|| {
            let mut m = ForestClassifier::new(ForestConfig::random_forest());
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/forest50_hist_fit_500x12", |b| {
        b.iter(|| {
            let mut cfg = ForestConfig::random_forest();
            cfg.split_strategy = SplitStrategy::Histogram;
            let mut m = ForestClassifier::new(cfg);
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });
    c.bench_function("models/logistic_fit_500x12", |b| {
        b.iter(|| {
            let mut m = LogisticRegression::new(1e-4, 0.1, 30, 0);
            m.fit(&d.x, &d.y).unwrap();
            black_box(m)
        })
    });

    let r = make_regression(
        &RegressionSpec {
            n_samples: 500,
            n_features: 12,
            n_informative: 6,
            noise: 0.3,
            nonlinear: false,
        },
        1,
    );
    c.bench_function("models/ridge_fit_500x12", |b| {
        b.iter(|| {
            let mut m = RidgeRegression::new(1.0);
            m.fit(&r.x, &r.y).unwrap();
            black_box(m)
        })
    });

    // Prediction throughput.
    let mut forest = ForestClassifier::new(ForestConfig::random_forest());
    forest.fit(&d.x, &d.y).unwrap();
    c.bench_function("models/forest50_predict_500", |b| {
        b.iter(|| black_box(forest.predict(&d.x).unwrap()))
    });
}

/// Times one forest fit; returns `(fit_ms, test_accuracy)`.
fn timed_forest_fit(
    train: &volcanoml_data::Dataset,
    test: &volcanoml_data::Dataset,
    strategy: SplitStrategy,
    n_jobs: usize,
) -> (f64, f64) {
    let mut cfg = ForestConfig::random_forest();
    cfg.n_estimators = 40;
    cfg.split_strategy = strategy;
    cfg.n_jobs = n_jobs;
    let mut m = ForestClassifier::new(cfg);
    let start = Instant::now();
    m.fit(&train.x, &train.y).unwrap();
    let fit_ms = start.elapsed().as_secs_f64() * 1e3;
    let acc = accuracy(&test.y, &m.predict(&test.x).unwrap());
    (fit_ms, acc)
}

/// Exact-vs-histogram forest training at ~10k rows: the headline number for
/// the histogram split path. Written to `results/BENCH_models.json`.
fn histogram_speedup_report() {
    let d = make_classification(
        &ClassificationSpec {
            n_samples: 10_000,
            n_features: 20,
            n_informative: 10,
            n_redundant: 4,
            n_classes: 3,
            class_sep: 1.0,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        7,
    );
    let (train, test) = train_test_split(&d, 0.2, 0).unwrap();
    let (exact_ms, exact_acc) = timed_forest_fit(&train, &test, SplitStrategy::Best, 1);
    let (hist_ms, hist_acc) = timed_forest_fit(&train, &test, SplitStrategy::Histogram, 1);
    let (hist4_ms, hist4_acc) = timed_forest_fit(&train, &test, SplitStrategy::Histogram, 4);
    assert_eq!(hist_acc, hist4_acc, "n_jobs must not change the fit");
    let speedup = exact_ms / hist_ms;
    let parallel_speedup = hist_ms / hist4_ms;
    let n_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"forest40_fit_{}x{}\",\n  \"n_rows\": {},\n  \"n_features\": {},\n  \
         \"n_trees\": 40,\n  \"n_cpus\": {n_cpus},\n  \"exact_fit_ms\": {exact_ms:.1},\n  \
         \"hist_fit_ms\": {hist_ms:.1},\n  \
         \"speedup\": {speedup:.2},\n  \"hist_fit_ms_n_jobs4\": {hist4_ms:.1},\n  \
         \"parallel_speedup\": {parallel_speedup:.2},\n  \"exact_acc\": {exact_acc:.4},\n  \
         \"hist_acc\": {hist_acc:.4},\n  \"accuracy_delta\": {:.4}\n}}\n",
        train.n_samples(),
        train.n_features(),
        train.n_samples(),
        train.n_features(),
        hist_acc - exact_acc,
    );
    println!("\nhistogram vs exact forest fit ({} rows):", train.n_samples());
    print!("{json}");
    let dir = volcanoml_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_models.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_models
}

fn main() {
    benches();
    histogram_speedup_report();
}
