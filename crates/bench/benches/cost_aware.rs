//! Cost-aware search study (`results/BENCH_cost.json`).
//!
//! Measures the tentpole claim of the cost feedback loop: on a search
//! space where two branches offer the *same* best loss but a 10x gap in
//! per-trial cost, EI-per-second acquisition must reach a target loss at
//! no more total evaluation cost than cost-blind EI — steering toward the
//! cheap branch is pure win because no loss is sacrificed.
//!
//! Costs are *synthetic* (deterministic per configuration, in abstract
//! seconds), so the measurement is exact and seed-reproducible rather than
//! wall-clock noisy: `cost_to_target` sums the synthetic cost of every
//! trial until the incumbent reaches the target. Aggregated over fixed
//! seeds, the gate is `aware_total <= blind_total` (a ratio of at most
//! 1.0x) — asserted here and re-checked by CI against the emitted JSON.
//!
//! Run: `cargo bench --bench cost_aware` (`VOLCANO_QUICK=1` trims seeds).

use volcanoml_bench::{print_table, quick, scaled, write_csv};
use volcanoml_bo::{Condition, ConfigSpace, Configuration, Domain, Smac, Suggest};

/// Two branches with equal best loss (0.1) but a 10x cost gap: branch 0
/// is cheap-good, branch 1 expensive-equal — the canonical cost-aware
/// testbed (mirrors the `bo` crate's acceptance test).
fn branch_space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    let b = s.add("branch", Domain::Cat { n: 2 }, 0.0).unwrap();
    s.add_conditional(
        "x0",
        Domain::Float { lo: 0.0, hi: 1.0, log: false },
        0.5,
        Some(Condition { parent: b, values: vec![0] }),
    )
    .unwrap();
    s.add_conditional(
        "x1",
        Domain::Float { lo: 0.0, hi: 1.0, log: false },
        0.5,
        Some(Condition { parent: b, values: vec![1] }),
    )
    .unwrap();
    s
}

/// Deterministic `(loss, cost)` for a configuration.
fn objective(space: &ConfigSpace, c: &Configuration) -> (f64, f64) {
    let m = space.to_map(c);
    let branch = *m.get("branch").unwrap_or(&0.0) as usize;
    match branch {
        0 => {
            let x = *m.get("x0").unwrap_or(&0.5);
            (0.1 + (x - 0.2).powi(2), 1.0)
        }
        _ => {
            let x = *m.get("x1").unwrap_or(&0.5);
            (0.1 + (x - 0.8).powi(2), 10.0)
        }
    }
}

/// Drives `opt` until the incumbent reaches `target` (or `max_n` trials),
/// returning `(total synthetic cost, trials run)`.
fn cost_to_target(opt: &mut Smac, target: f64, max_n: usize) -> (f64, usize) {
    let mut total = 0.0;
    for n in 1..=max_n {
        let (cfg, fidelity) = opt.suggest();
        let (loss, cost) = objective(opt.space(), &cfg);
        total += cost;
        opt.observe(cfg, fidelity, loss, cost);
        if opt.history().best_loss().is_some_and(|b| b <= target) {
            return (total, n);
        }
    }
    (total, max_n)
}

fn main() {
    // Target tight enough that runs outlast the cost model's warm-up: an
    // easy target would be hit inside the random initial design, where
    // cost-aware and cost-blind coincide by construction.
    let target = 0.1005;
    let max_n = 250;
    let n_seeds = scaled(10, 6) as u64;
    eprintln!("cost_aware: target {target}, max {max_n} trials, {n_seeds} seeds");

    let mut blind_total = 0.0f64;
    let mut aware_total = 0.0f64;
    let mut blind_trials = 0usize;
    let mut aware_trials = 0usize;
    let mut rows = Vec::new();
    for seed in 0..n_seeds {
        let mut blind = Smac::new(branch_space(), seed);
        let (bc, bn) = cost_to_target(&mut blind, target, max_n);
        let mut aware = Smac::new(branch_space(), seed);
        aware.set_cost_aware(true);
        let (ac, an) = cost_to_target(&mut aware, target, max_n);
        blind_total += bc;
        aware_total += ac;
        blind_trials += bn;
        aware_trials += an;
        rows.push(vec![
            seed.to_string(),
            format!("{bc:.1}"),
            format!("{ac:.1}"),
            format!("{:.2}", ac / bc),
        ]);
    }
    let ratio = aware_total / blind_total;
    let headers: Vec<String> = ["seed", "blind_cost", "aware_cost", "ratio"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    print_table("cost to reach target loss (synthetic seconds)", &headers, &rows);
    write_csv("BENCH_cost.csv", &headers, &rows);
    println!(
        "aggregate: cost-aware {aware_total:.1}s vs cost-blind {blind_total:.1}s \
         ({ratio:.2}x) over {n_seeds} seeds"
    );

    let json = format!(
        "{{\n  \"bench\": \"cost_aware_time_to_target\",\n  \
         \"target_loss\": {target},\n  \"max_trials\": {max_n},\n  \
         \"n_seeds\": {n_seeds},\n  \
         \"cost_blind_total\": {blind_total:.2},\n  \
         \"cost_aware_total\": {aware_total:.2},\n  \
         \"cost_blind_trials\": {blind_trials},\n  \
         \"cost_aware_trials\": {aware_trials},\n  \
         \"cost_ratio\": {ratio:.4}\n}}\n"
    );
    let dir = volcanoml_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_cost.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    // The acceptance gate: reaching the target must cost no more with the
    // cost model in the loop. Costs are synthetic, so this is exact.
    assert!(
        ratio <= 1.0,
        "acceptance: cost-aware must reach the target at <= 1.0x the \
         cost-blind total (got {ratio:.2}x: aware {aware_total:.1} vs blind {blind_total:.1})"
    );
    if quick() {
        println!("quick mode: gate checked on {n_seeds} seeds");
    }
}
