//! Criterion micro-benchmarks for feature-engineering operators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_fe::balance::Smote;
use volcanoml_fe::Resampler;
use volcanoml_fe::reduce::{Nystroem, Pca, SelectPercentile, ScoreFunc};
use volcanoml_fe::scale::{Rescaler, ScaleKind};
use volcanoml_fe::Transformer;

fn bench_fe(c: &mut Criterion) {
    let d = make_classification(
        &ClassificationSpec {
            n_samples: 500,
            n_features: 20,
            n_informative: 8,
            n_redundant: 4,
            n_classes: 2,
            class_sep: 1.0,
            flip_y: 0.02,
            weights: vec![0.8, 0.2],
        },
        0,
    );
    c.bench_function("fe/pca_fit_transform_500x20", |b| {
        b.iter(|| {
            let mut p = Pca::new(0.95);
            black_box(p.fit_transform(&d.x, &d.y).unwrap())
        })
    });
    c.bench_function("fe/nystroem50_500x20", |b| {
        b.iter(|| {
            let mut n = Nystroem::new(50, 0.5, 0);
            black_box(n.fit_transform(&d.x, &d.y).unwrap())
        })
    });
    c.bench_function("fe/quantile_scaler_500x20", |b| {
        b.iter(|| {
            let mut s = Rescaler::new(ScaleKind::Quantile { n_quantiles: 50 });
            black_box(s.fit_transform(&d.x, &d.y).unwrap())
        })
    });
    c.bench_function("fe/select_percentile_500x20", |b| {
        b.iter(|| {
            let mut s = SelectPercentile::new(40.0, ScoreFunc::FScore, true);
            black_box(s.fit_transform(&d.x, &d.y).unwrap())
        })
    });
    c.bench_function("fe/smote_500x20", |b| {
        b.iter(|| black_box(Smote::new(5).resample(&d.x, &d.y, 0).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fe
}
criterion_main!(benches);
