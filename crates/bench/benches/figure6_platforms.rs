//! Figure 6 reproduction: test error vs time on six "Kaggle competition"
//! datasets, VolcanoML vs four (simulated, anonymized) commercial AutoML
//! platforms. The paper's claim: given equal time, VolcanoML is at least
//! comparable with, and often better than, every platform.

use volcanoml_baselines::platforms::Platform;
use volcanoml_bench::{print_table, quick, run_system, scaled, write_csv, SystemSpec};
use volcanoml_core::{EngineKind, SpaceDef};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::repository::kaggle_suite;
use volcanoml_data::{train_test_split, Metric, Task};

fn main() {
    let budget = scaled(20, 8);
    let datasets: Vec<_> = if quick() {
        kaggle_suite().into_iter().take(2).collect()
    } else {
        kaggle_suite()
    };
    let metric = Metric::BalancedAccuracy;
    let space = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    let mut systems = vec![SystemSpec::VolcanoMl {
        meta: false,
        engine: EngineKind::Bo,
    }];
    systems.extend(Platform::all().iter().map(|&p| SystemSpec::Platform(p)));
    eprintln!(
        "Figure 6: {} Kaggle-style datasets, budget {budget}, quick={}",
        datasets.len(),
        quick()
    );

    let headers = vec![
        "dataset".to_string(),
        "system".to_string(),
        "cost_s".to_string(),
        "test_error".to_string(),
    ];
    let mut csv_rows = Vec::new();
    let mut final_rows = Vec::new();
    let mut volcano_wins = 0usize;
    let mut comparisons = 0usize;

    for (di, dataset) in datasets.iter().enumerate() {
        let (train, test) =
            train_test_split(dataset, 0.2, derive_seed(23, di as u64)).expect("split");
        eprintln!("== {} ==", dataset.name);
        let mut finals: Vec<(String, f64)> = Vec::new();
        for (si, spec) in systems.iter().enumerate() {
            let seed = derive_seed(derive_seed(23, di as u64), si as u64);
            let out = match run_system(spec, &space, &train, &test, metric, budget, seed, None) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("  {} failed: {e}", spec.name());
                    continue;
                }
            };
            let curve = out
                .run
                .test_error_curve(&space, &train, &test, metric, seed);
            for (cost, err) in &curve {
                csv_rows.push(vec![
                    dataset.name.clone(),
                    spec.name(),
                    format!("{cost:.3}"),
                    format!("{err:.4}"),
                ]);
            }
            let final_err = curve.last().map(|(_, e)| *e).unwrap_or(out.test_loss);
            eprintln!("  {:<12} test error {:.4}", spec.name(), final_err);
            finals.push((spec.name(), final_err));
            final_rows.push(vec![
                dataset.name.clone(),
                spec.name(),
                format!("{:.1}", out.run.total_cost),
                format!("{final_err:.4}"),
            ]);
        }
        if let Some(volcano) = finals.iter().find(|(n, _)| n == "VolcanoML-") {
            for (name, err) in &finals {
                if name != "VolcanoML-" {
                    comparisons += 1;
                    if volcano.1 <= *err + 1e-12 {
                        volcano_wins += 1;
                    }
                }
            }
        }
    }

    print_table(
        "Figure 6: final test errors vs platforms (full curves in CSV)",
        &headers,
        &final_rows,
    );
    println!(
        "VolcanoML- matches or beats a platform in {volcano_wins}/{comparisons} comparisons"
    );
    write_csv("figure6_curves.csv", &headers, &csv_rows);
    write_csv("figure6_final.csv", &headers, &final_rows);
}
