//! Zero-copy dataset-view throughput study (`results/BENCH_data.json`).
//!
//! A fixed trial set is evaluated twice over 3-fold CV at 8k rows:
//!
//! 1. **view** — the real [`Evaluator`], whose trial path moves data as
//!    `DatasetView`s and materializes rows at most once per FE-cache miss.
//! 2. **copy** — an in-bench replica of the pre-view evaluator, faithful
//!    line-for-line: a deep `Dataset::clone` per trial, owned
//!    `Dataset::subset` copies for every fold, and its *own* FE cache with
//!    the same `(fe_key, data_key)` keying — so both paths skip FE refits
//!    identically and the measurement isolates copy-vs-view cost.
//!
//! The workload is deliberately data-movement-bound — a wide dataset whose
//! FE config selects the top-10% features by F-score, feeding a one-pass
//! naive-Bayes model, with the FE config shared across trials so the FE
//! cache is warm after trial one. The copy path hauls all 128 raw columns
//! through clone + per-fold subsets on every trial while the model only
//! touches the ~13 selected ones; with an expensive model both paths
//! converge on model-fit time and the data path becomes unmeasurable.
//! Losses must match bitwise trial-by-trial, so the best-loss trajectories
//! are identical by construction — asserted.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use volcanoml_bench::{print_table, quick, scaled, write_csv};
use volcanoml_core::evaluator::parse_assignment;
use volcanoml_core::{Evaluator, SpaceDef, ValidationStrategy};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::view::stats;
use volcanoml_data::{Dataset, Metric, StratifiedKFold, Task};
use volcanoml_fe::pipeline::FeSpaceOptions;
use volcanoml_fe::space::fe_param_defs;
use volcanoml_fe::FePipeline;
use volcanoml_linalg::Matrix;
use volcanoml_models::{AlgorithmKind, Estimator};

const FOLDS: usize = 3;

fn dataset() -> Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: scaled(8_000, 1_000),
            n_features: 128,
            n_informative: 10,
            n_redundant: 4,
            n_classes: 2,
            class_sep: 1.2,
            flip_y: 0.02,
            weights: Vec::new(),
        },
        23,
    )
}

/// A single-algorithm naive-Bayes space over the full FE stage list: fit is
/// one pass over the (selected) training columns, so per-trial cost is
/// dominated by how the evaluator moves data.
fn space() -> SpaceDef {
    SpaceDef::build(
        Task::Classification,
        vec![AlgorithmKind::GaussianNb],
        fe_param_defs(Task::Classification, &FeSpaceOptions::default()),
        FeSpaceOptions::default(),
    )
    .unwrap()
}

/// Trial grid varying only `var_smoothing`, sharing one FE config
/// (top-10% F-score feature selection): the FE cache is warm after the
/// first trial in both paths, so the measured per-trial difference is
/// exactly the data path.
fn trials(space: &SpaceDef, n: usize) -> Vec<HashMap<String, f64>> {
    (0..n)
        .map(|i| {
            let mut a = space.defaults();
            a.insert("fe:transform".to_string(), 4.0);
            a.insert("fe:percentile".to_string(), 10.0);
            let t = i as f64 / n.max(2) as f64;
            a.insert(
                "alg:gaussian_nb:var_smoothing".to_string(),
                10f64.powf(-12.0 + 6.0 * t),
            );
            a
        })
        .collect()
}

/// What the old evaluator's FE cache stored: `(x_train, y_train, x_valid)`.
type FeEntry = Arc<(Matrix, Vec<f64>, Matrix)>;

/// The pre-view evaluator's CV trial path, replicated with owned datasets:
/// deep clone + per-fold subsets every trial, FE cache consulted per fold.
struct CopyEvaluator {
    space: SpaceDef,
    data: Dataset,
    metric: Metric,
    seed: u64,
    fe_cache: RefCell<HashMap<(u64, u64), FeEntry>>,
    bytes_copied: Cell<u64>,
}

impl CopyEvaluator {
    fn new(space: SpaceDef, data: &Dataset, metric: Metric, seed: u64) -> Self {
        CopyEvaluator {
            space,
            data: data.clone(),
            metric,
            seed,
            fe_cache: RefCell::new(HashMap::new()),
            bytes_copied: Cell::new(0),
        }
    }

    fn count_rows(&self, rows: usize) {
        let bytes = (rows * self.data.n_features() * 8) as u64;
        self.bytes_copied.set(self.bytes_copied.get() + bytes);
    }

    /// Order-insensitive FE-params key; only has to be collision-free for
    /// the configs this bench feeds it.
    fn fe_key(fe_params: &HashMap<String, f64>) -> u64 {
        let mut acc = 0u64;
        for (name, value) in fe_params {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            for b in value.to_bits().to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            acc = acc.wrapping_add(h);
        }
        acc
    }

    fn evaluate(&self, assignment: &HashMap<String, f64>, fidelity: f64) -> f64 {
        let (alg, model_params, fe_params) = parse_assignment(&self.space, assignment).unwrap();
        assert!(fidelity >= 1.0 - 1e-9, "bench runs full fidelity only");
        let data = self.data.clone();
        self.count_rows(data.n_samples());
        let splits: Vec<(Vec<usize>, Vec<usize>)> = StratifiedKFold::new(&data, FOLDS, self.seed)
            .unwrap()
            .splits()
            .collect();
        let mut total = 0.0;
        for (fold, (train_idx, valid_idx)) in splits.iter().enumerate() {
            let train = data.subset(train_idx);
            let valid = data.subset(valid_idx);
            self.count_rows(train.n_samples() + valid.n_samples());
            let data_key = fidelity
                .to_bits()
                .wrapping_add((fold as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let key = (Self::fe_key(&fe_params), data_key);
            let cached = self.fe_cache.borrow().get(&key).cloned();
            let fe_out = match cached {
                Some(arc) => arc,
                None => {
                    let mut pipeline = FePipeline::from_values(
                        self.space.task,
                        &train.feature_types,
                        &fe_params,
                        &self.space.fe_options,
                        self.seed,
                    )
                    .unwrap();
                    let (x_train, y_train) =
                        pipeline.fit_transform_train(&train.x, &train.y).unwrap();
                    let x_valid = pipeline.transform(&valid.x).unwrap();
                    let arc = Arc::new((x_train, y_train, x_valid));
                    self.fe_cache.borrow_mut().insert(key, Arc::clone(&arc));
                    arc
                }
            };
            let (x_train, y_train, x_valid) = &*fe_out;
            let mut model = alg.build(&model_params, self.seed);
            model.fit(x_train, y_train).unwrap();
            let preds = model.predict(x_valid).unwrap();
            total += self.metric.loss(&valid.y, &preds);
        }
        total / splits.len() as f64
    }
}

fn main() {
    let d = dataset();
    let space = space();
    let n_trials = scaled(60, 10);
    let trial_set = trials(&space, n_trials);
    let strategy = ValidationStrategy::CrossValidation { folds: FOLDS };
    eprintln!(
        "data_views: {} rows x {} features, {FOLDS}-fold CV, {n_trials} trials",
        d.n_samples(),
        d.n_features()
    );

    // View path: the real evaluator; gather volume read off the process
    // counters as a delta around the timed loop.
    let ev = Evaluator::with_strategy(space.clone(), &d, Metric::BalancedAccuracy, strategy, 9)
        .unwrap();
    let (bytes0, _) = stats::snapshot();
    let start = Instant::now();
    let view_losses: Vec<f64> = trial_set.iter().map(|a| ev.evaluate(a, 1.0).loss).collect();
    let view_wall = start.elapsed().as_secs_f64();
    let (bytes1, _) = stats::snapshot();
    let view_bytes = bytes1 - bytes0;

    // Copy baseline: the faithful pre-view replica.
    let copy_ev = CopyEvaluator::new(space, &d, Metric::BalancedAccuracy, 9);
    let start = Instant::now();
    let copy_losses: Vec<f64> = trial_set.iter().map(|a| copy_ev.evaluate(a, 1.0)).collect();
    let copy_wall = start.elapsed().as_secs_f64();
    let copy_bytes = copy_ev.bytes_copied.get();

    for (i, (v, c)) in view_losses.iter().zip(&copy_losses).enumerate() {
        assert_eq!(
            v.to_bits(),
            c.to_bits(),
            "trial {i}: view loss {v} != copy loss {c}"
        );
    }
    let best = view_losses.iter().fold(f64::INFINITY, |a, &b| a.min(b));

    let view_tps = n_trials as f64 / view_wall;
    let copy_tps = n_trials as f64 / copy_wall;
    let speedup = view_tps / copy_tps;
    let headers: Vec<String> = ["path", "wall_s", "trials_per_s", "bytes_moved", "best_loss"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows = vec![
        vec![
            "view".to_string(),
            format!("{view_wall:.3}"),
            format!("{view_tps:.1}"),
            view_bytes.to_string(),
            format!("{best:.4}"),
        ],
        vec![
            "copy".to_string(),
            format!("{copy_wall:.3}"),
            format!("{copy_tps:.1}"),
            copy_bytes.to_string(),
            format!("{best:.4}"),
        ],
    ];
    print_table("zero-copy views vs owned copies (3-fold CV)", &headers, &rows);
    write_csv("BENCH_data.csv", &headers, &rows);
    println!("speedup: {speedup:.2}x trials/sec, identical losses on all {n_trials} trials");

    let json = format!(
        "{{\n  \"bench\": \"data_views_cv\",\n  \"n_rows\": {},\n  \"n_features\": {},\n  \
         \"folds\": {FOLDS},\n  \"n_trials\": {n_trials},\n  \
         \"view_wall_s\": {view_wall:.4},\n  \"copy_wall_s\": {copy_wall:.4},\n  \
         \"view_trials_per_sec\": {view_tps:.2},\n  \"copy_trials_per_sec\": {copy_tps:.2},\n  \
         \"speedup\": {speedup:.2},\n  \"view_bytes_gathered\": {view_bytes},\n  \
         \"copy_bytes_copied\": {copy_bytes},\n  \"identical_loss_trajectories\": true,\n  \
         \"best_loss\": {best:.6}\n}}\n",
        d.n_samples(),
        d.n_features(),
    );
    let dir = volcanoml_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_data.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    if !quick() {
        assert!(
            speedup >= 1.5,
            "acceptance: view path must be >= 1.5x copy baseline (got {speedup:.2}x)"
        );
    }
}
