//! Embedding-selection reproduction (§5.3, Figure 3): on the vision-like
//! dataset (the dogs-vs-cats stand-in), VolcanoML searching an enriched
//! space with a pre-trained-embedding stage should decisively beat
//! auto-sklearn on raw pixels. The paper reports 96.5% vs 69.7% accuracy.

use volcanoml_bench::{print_table, quick, scaled, split_and_run, write_csv, SystemSpec};
use volcanoml_core::{EngineKind, SpaceDef};
use volcanoml_data::repository::{vision_dataset, vision_dataset_seed};
use volcanoml_data::{Metric, Task};
use volcanoml_fe::pipeline::{EmbeddingOptions, FeSpaceOptions};

fn main() {
    let budget = scaled(50, 20);
    let dataset = vision_dataset();
    let metric = Metric::BalancedAccuracy;
    eprintln!(
        "Embedding selection on {} (n={}, {} pixels), budget {budget}, quick={}",
        dataset.name,
        dataset.n_samples(),
        dataset.n_features(),
        quick()
    );

    // auto-sklearn: raw pixels, no embedding stage available.
    let base_space = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    // VolcanoML: enriched space with the embedding stage (Figure 3 plan —
    // the embedding choice lives in the FE side of the alternation).
    let enriched_space = SpaceDef::enriched(
        Task::Classification,
        FeSpaceOptions {
            include_smote: false,
            embedding: Some(EmbeddingOptions {
                dataset_seed: vision_dataset_seed(),
                n_latent: 8,
                generic_outputs: 16,
            }),
        },
    );

    let ausk = split_and_run(
        &SystemSpec::Ausk { meta: false },
        &base_space,
        &dataset,
        metric,
        budget,
        3,
        None,
    );
    let volcano = split_and_run(
        &SystemSpec::VolcanoMl {
            meta: false,
            engine: EngineKind::Bo,
        },
        &enriched_space,
        &dataset,
        metric,
        budget,
        4,
        None,
    );

    let headers = vec![
        "system".to_string(),
        "space".to_string(),
        "test_accuracy".to_string(),
    ];
    let mut rows = Vec::new();
    if let Ok(out) = &ausk {
        rows.push(vec![
            "AUSK-".to_string(),
            "raw pixels".to_string(),
            format!("{:.4}", 1.0 - out.test_loss),
        ]);
    }
    if let Ok(out) = &volcano {
        rows.push(vec![
            "VolcanoML-".to_string(),
            "+embedding stage".to_string(),
            format!("{:.4}", 1.0 - out.test_loss),
        ]);
        // Report which embedding the winner picked.
        if let Some(choice) = out.run.best_assignment.get("fe:embedding") {
            let name = match choice.round() as usize {
                1 => "matched (domain pre-trained)",
                2 => "generic",
                _ => "none",
            };
            println!("VolcanoML- selected embedding: {name}");
        }
    }

    print_table(
        "Embedding selection (paper: 96.5% vs 69.7%)",
        &headers,
        &rows,
    );
    write_csv("embedding_selection.csv", &headers, &rows);
}
