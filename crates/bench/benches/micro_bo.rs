//! Criterion micro-benchmarks for the optimization substrate: configuration
//! sampling/encoding over the large conditional space, surrogate fit/predict,
//! and EI maximization — the per-iteration overheads of a joint block.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use volcanoml_bo::surrogate::RandomForestSurrogate;
use volcanoml_bo::{acquisition, Smac, Suggest};
use volcanoml_core::{SpaceDef, SpaceTier};
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_data::Task;

fn large_space() -> volcanoml_bo::ConfigSpace {
    let def = SpaceDef::tiered(Task::Classification, SpaceTier::Large);
    def.compile_subspace(&def.var_names(), &HashMap::new())
        .expect("large space compiles")
}

fn bench_sampling(c: &mut Criterion) {
    let space = large_space();
    let mut rng = rng_from_seed(0);
    c.bench_function("space/sample_large", |b| {
        b.iter(|| black_box(space.sample(&mut rng)))
    });
    let cfg = space.default_configuration();
    c.bench_function("space/encode_large", |b| {
        b.iter(|| black_box(space.encode(&cfg)))
    });
    c.bench_function("space/neighbor_large", |b| {
        b.iter(|| black_box(space.neighbor(&cfg, &mut rng)))
    });
}

fn bench_surrogate(c: &mut Criterion) {
    let space = large_space();
    let mut rng = rng_from_seed(1);
    let xs: Vec<Vec<f64>> = (0..100).map(|_| space.encode(&space.sample(&mut rng))).collect();
    let ys: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin().abs()).collect();
    c.bench_function("surrogate/fit_100x60", |b| {
        b.iter(|| {
            let mut s = RandomForestSurrogate::new();
            s.fit(&xs, &ys, &mut rng);
            black_box(s)
        })
    });
    let mut fitted = RandomForestSurrogate::new();
    fitted.fit(&xs, &ys, &mut rng);
    c.bench_function("surrogate/predict", |b| {
        b.iter(|| black_box(fitted.predict(&xs[0])))
    });
    c.bench_function("surrogate/maximize_ei_300", |b| {
        b.iter(|| {
            black_box(acquisition::maximize_ei(
                &space, &fitted, None, 0.3, 300, 0, &mut rng,
            ))
        })
    });
}

fn bench_smac_suggest(c: &mut Criterion) {
    let space = large_space();
    let mut smac = Smac::new(space, 0);
    // Warm it with enough observations that suggestions use the surrogate.
    for i in 0..30 {
        let (cfg, f) = smac.suggest();
        smac.observe(cfg, f, (i as f64 * 0.23).sin().abs(), 0.01);
    }
    c.bench_function("smac/suggest_after_30_obs", |b| {
        b.iter(|| {
            let (cfg, f) = smac.suggest();
            smac.observe(black_box(cfg), f, 0.4, 0.01);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sampling, bench_surrogate, bench_smac_suggest
}
criterion_main!(benches);
