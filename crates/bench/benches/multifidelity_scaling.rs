//! Pooled multi-fidelity scheduling study.
//!
//! The asynchronous bracket rework lets SH/Hyperband/MFES-HB fill worker
//! batches from their rung ladders instead of degrading to full-fidelity
//! random draws. This bench pins the two claims behind that change:
//!
//! 1. **Quality parity**: an end-to-end MFES-HB fit with 4 workers reaches
//!    a best loss comparable to the serial fit on the same data, seed, and
//!    evaluation budget (asynchronous promotion reorders observations, so
//!    "comparable" means within a noise band, not bit-identical).
//! 2. **Fidelity mix**: the pooled run actually exercises ≥ 2 distinct
//!    sub-1.0 fidelities — the schedule is doing multi-fidelity work, not
//!    random search at fidelity 1.0.
//!
//! Output: one table (`multifidelity_scaling.csv`) with per-run wall time,
//! best loss, and the fidelity mix.

use std::time::Instant;

use volcanoml_bench::{print_table, quick, scaled, write_csv};
use volcanoml_core::{EngineKind, PlanSpec, SpaceTier, VolcanoML, VolcanoMlOptions};
use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
use volcanoml_data::Task;

fn dataset(seed: u64) -> volcanoml_data::Dataset {
    make_classification(
        &ClassificationSpec {
            n_samples: if quick() { 240 } else { 480 },
            n_features: 10,
            n_informative: 6,
            n_redundant: 2,
            n_classes: 2,
            class_sep: 1.0,
            flip_y: 0.05,
            weights: Vec::new(),
        },
        seed,
    )
}

/// One MFES-HB fit; returns (wall_s, best_loss, fidelity mix).
fn run_once(d: &volcanoml_data::Dataset, workers: usize, evals: usize) -> (f64, f64, Vec<(f64, usize)>) {
    let options = VolcanoMlOptions {
        plan: PlanSpec::single_joint(EngineKind::MfesHb),
        max_evaluations: evals,
        seed: 29,
        n_workers: workers,
        ..Default::default()
    };
    let engine = VolcanoML::with_tier(Task::Classification, SpaceTier::Small, options);
    let start = Instant::now();
    let fitted = engine.fit(d).expect("fit failed");
    (
        start.elapsed().as_secs_f64(),
        fitted.report.best_loss,
        fitted.report.fidelity_counts.clone(),
    )
}

fn mix_string(mix: &[(f64, usize)]) -> String {
    mix.iter()
        .map(|(f, n)| format!("{f:.3}x{n}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let d = dataset(13);
    let evals = scaled(36, 20);
    eprintln!(
        "Multi-fidelity scaling: MFES-HB, {evals} evaluations, quick={}",
        quick()
    );

    let headers: Vec<String> = ["workers", "wall_s", "best_loss", "fidelity_mix"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut serial_best = None;
    for workers in [1usize, 4] {
        let (wall, best, mix) = run_once(&d, workers, evals);
        eprintln!(
            "  workers={workers}: {wall:.3}s, best loss {best:.4}, mix [{}]",
            mix_string(&mix)
        );
        // Claim 2: the pooled run exercises ≥ 2 distinct sub-1.0 fidelities
        // (the pre-fix batch path collapsed everything to fidelity 1.0).
        if workers > 1 {
            let sub_full = mix.iter().filter(|(f, _)| *f < 1.0 - 1e-9).count();
            assert!(
                sub_full >= 2,
                "pooled MFES-HB exercised only {sub_full} sub-1.0 fidelities: [{}]",
                mix_string(&mix)
            );
        }
        // Claim 1: pooled best loss within noise of serial.
        let reference = *serial_best.get_or_insert(best);
        assert!(
            (best - reference).abs() < 0.15,
            "pooled best {best} drifted from serial best {reference}"
        );
        rows.push(vec![
            workers.to_string(),
            format!("{wall:.3}"),
            format!("{best:.4}"),
            mix_string(&mix),
        ]);
    }
    print_table(
        "Pooled MFES-HB vs serial (same seed/budget, async brackets)",
        &headers,
        &rows,
    );
    write_csv("multifidelity_scaling.csv", &headers, &rows);
}
