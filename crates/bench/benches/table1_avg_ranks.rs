//! Table 1 reproduction: average ranks of TPOT / AUSK⁻ / AUSK / VolcanoML⁻ /
//! VolcanoML on the 30-classification and 20-regression suites under three
//! search-space sizes (small / medium / large).
//!
//! Meta-learning variants use a leave-one-out meta-base built from the
//! corresponding non-meta run's best pipelines, mirroring how auto-sklearn's
//! shipped meta-base is trained on other datasets.
//!
//! Run: `cargo bench --bench table1_avg_ranks` (set `VOLCANO_QUICK=1` for a
//! smoke run).

use std::collections::HashMap;
use volcanoml_bench::{
    average_ranks, build_meta_base, fmt3, maybe_truncate, print_table, quick, scaled,
    split_and_run, write_csv, SystemSpec,
};
use volcanoml_core::{SpaceDef, SpaceTier};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::repository::{medium_classification_suite, regression_suite};
use volcanoml_data::{Dataset, Metric, Task};

fn tier_name(tier: SpaceTier) -> &'static str {
    match tier {
        SpaceTier::Small => "Small",
        SpaceTier::Medium => "Medium",
        SpaceTier::Large => "Large",
    }
}

/// Runs the 5-system lineup over one suite and one tier, returning average
/// ranks in lineup order.
fn run_grid(datasets: &[Dataset], task: Task, tier: SpaceTier, budget: usize) -> Vec<f64> {
    let metric = Metric::default_for(task);
    let space = SpaceDef::tiered(task, tier);
    let lineup = SystemSpec::table1_lineup();

    // Pass 1: the three non-meta systems; collect VolcanoML⁻ winners for the
    // meta-base.
    let mut losses: Vec<Vec<f64>> = vec![vec![f64::INFINITY; lineup.len()]; datasets.len()];
    let mut winners: HashMap<String, Vec<volcanoml_core::Assignment>> = HashMap::new();

    for (di, dataset) in datasets.iter().enumerate() {
        for (si, spec) in lineup.iter().enumerate() {
            let is_meta = matches!(
                spec,
                SystemSpec::Ausk { meta: true } | SystemSpec::VolcanoMl { meta: true, .. }
            );
            if is_meta {
                continue; // pass 2
            }
            let seed = derive_seed(derive_seed(42, di as u64), si as u64);
            match split_and_run(spec, &space, dataset, metric, budget, seed, None) {
                Ok(out) => {
                    losses[di][si] = out.test_loss;
                    if matches!(spec, SystemSpec::VolcanoMl { meta: false, .. }) {
                        let top: Vec<volcanoml_core::Assignment> = out
                            .run
                            .incumbent_steps
                            .iter()
                            .rev()
                            .take(3)
                            .map(|(_, _, _, a)| a.clone())
                            .collect();
                        winners.insert(dataset.name.clone(), top);
                    }
                }
                Err(e) => eprintln!("  {} on {}: {e}", spec.name(), dataset.name),
            }
        }
        eprintln!(
            "  [{}] {}/{} datasets (pass 1)",
            tier_name(tier),
            di + 1,
            datasets.len()
        );
    }

    // Pass 2: meta variants with a leave-one-out meta-base.
    let meta_base = build_meta_base(datasets, &winners);
    for (di, dataset) in datasets.iter().enumerate() {
        for (si, spec) in lineup.iter().enumerate() {
            let is_meta = matches!(
                spec,
                SystemSpec::Ausk { meta: true } | SystemSpec::VolcanoMl { meta: true, .. }
            );
            if !is_meta {
                continue;
            }
            let seed = derive_seed(derive_seed(42, di as u64), si as u64);
            match split_and_run(spec, &space, dataset, metric, budget, seed, Some(&meta_base)) {
                Ok(out) => losses[di][si] = out.test_loss,
                Err(e) => eprintln!("  {} on {}: {e}", spec.name(), dataset.name),
            }
        }
    }

    average_ranks(&losses)
}

/// Per-tier budgets mirror the paper's increasing time budgets with space
/// size (900 s / 1 800 s / 1 800 s, scaled to evaluation counts here — the
/// large space needs more evaluations per system to leave the warm-up
/// regime).
fn tier_budget(tier: SpaceTier) -> usize {
    match tier {
        SpaceTier::Small => scaled(20, 8),
        SpaceTier::Medium => scaled(30, 10),
        SpaceTier::Large => scaled(45, 12),
    }
}

fn main() {
    // Single-core CI scale: 15 CLS / 10 REG datasets sampled evenly from the
    // 30/20 suites (raise these two numbers for a paper-scale run).
    let cls_full: Vec<_> = medium_classification_suite()
        .into_iter()
        .step_by(2)
        .collect();
    let reg_full: Vec<_> = regression_suite().into_iter().step_by(2).collect();
    let cls = maybe_truncate(cls_full, 6);
    let reg = maybe_truncate(reg_full, 4);
    eprintln!(
        "Table 1: {} CLS + {} REG datasets, budgets {:?} evals, quick={}",
        cls.len(),
        reg.len(),
        [tier_budget(SpaceTier::Small), tier_budget(SpaceTier::Medium), tier_budget(SpaceTier::Large)],
        quick()
    );

    let lineup_names: Vec<String> = SystemSpec::table1_lineup()
        .iter()
        .map(|s| s.name())
        .collect();
    let mut headers = vec!["Search Space - Task".to_string()];
    headers.extend(lineup_names.clone());

    let mut rows: Vec<Vec<String>> = Vec::new();
    for tier in [SpaceTier::Small, SpaceTier::Medium, SpaceTier::Large] {
        let space = SpaceDef::tiered(Task::Classification, tier);
        eprintln!(
            "== {} CLS (|space| = {} hyper-parameters) ==",
            tier_name(tier),
            space.len()
        );
        let ranks = run_grid(&cls, Task::Classification, tier, tier_budget(tier));
        let mut row = vec![format!("{} - CLS", tier_name(tier))];
        row.extend(ranks.iter().map(|r| format!("{r:.2}")));
        rows.push(row);
    }
    for tier in [SpaceTier::Small, SpaceTier::Medium, SpaceTier::Large] {
        let space = SpaceDef::tiered(Task::Regression, tier);
        eprintln!(
            "== {} REG (|space| = {} hyper-parameters) ==",
            tier_name(tier),
            space.len()
        );
        let ranks = run_grid(&reg, Task::Regression, tier, tier_budget(tier));
        let mut row = vec![format!("{} - REG", tier_name(tier))];
        row.extend(ranks.iter().map(|r| format!("{r:.2}")));
        rows.push(row);
    }

    print_table(
        "Table 1: average ranks (lower is better)",
        &headers,
        &rows,
    );
    write_csv("table1_avg_ranks.csv", &headers, &rows);

    // Space-size sidebar (the paper reports 20/29/100 hyper-parameters).
    let mut size_rows = Vec::new();
    for task in [Task::Classification, Task::Regression] {
        for tier in [SpaceTier::Small, SpaceTier::Medium, SpaceTier::Large] {
            let space = SpaceDef::tiered(task, tier);
            size_rows.push(vec![
                format!("{task:?}"),
                tier_name(tier).to_string(),
                space.len().to_string(),
                space.algorithms.len().to_string(),
            ]);
        }
    }
    print_table(
        "Search-space sizes",
        &[
            "task".to_string(),
            "tier".to_string(),
            "hyper-parameters".to_string(),
            "algorithms".to_string(),
        ],
        &size_rows,
    );
    let _ = fmt3(0.0);
}
