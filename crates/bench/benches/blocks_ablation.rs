//! Building-block design ablations (the design choices DESIGN.md calls out):
//!
//! 1. **EUI scheduling** in the alternating block (Algorithm 3) vs naive
//!    round-robin (Algorithm 2 forever);
//! 2. **Rising-bandit arm elimination** in the conditioning block
//!    (Algorithm 1) vs a plain round-robin MAB;
//! 3. **Joint-leaf engine**: BO vs random vs MFES-HB.
//!
//! All variants run the Figure 2 tree shape on a slice of the classification
//! suite; reported numbers are mean test losses.

use volcanoml_bench::{maybe_truncate, print_table, quick, scaled, write_csv, SystemSpec};
use volcanoml_core::evaluator::refit_assignment;
use volcanoml_core::plans::build_figure2_tree;
use volcanoml_core::{EngineKind, Evaluator, SpaceDef};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::repository::medium_classification_suite;
use volcanoml_data::{train_test_split, Dataset, Metric, Task};

/// Runs a hand-built Figure 2 tree with the given ablation knobs.
fn run_tree(
    space: &SpaceDef,
    dataset: &Dataset,
    engine: EngineKind,
    eui: bool,
    elimination: bool,
    budget: usize,
    seed: u64,
) -> Option<f64> {
    let (train, test) = train_test_split(dataset, 0.2, derive_seed(seed, 0xdead)).ok()?;
    let metric = Metric::BalancedAccuracy;
    let evaluator = Evaluator::new(space.clone(), &train, metric, seed).ok()?;
    let mut root = build_figure2_tree(space, engine, eui, elimination, seed).ok()?;
    while evaluator.evaluations() < budget {
        root.do_next(&evaluator).ok()?;
    }
    let best = root.current_best()?;
    let (pipeline, model) = refit_assignment(space, &best.assignment, &train, seed).ok()?;
    let xt = pipeline.transform(&test.x).ok()?;
    let preds = volcanoml_models::Estimator::predict(&model, &xt).ok()?;
    Some(metric.loss(&test.y, &preds))
}

fn main() {
    let budget = scaled(25, 10);
    let datasets = maybe_truncate(
        medium_classification_suite()
            .into_iter()
            .step_by(6)
            .collect(),
        2,
    );
    let space = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    eprintln!(
        "Blocks ablation: {} datasets, budget {budget}, quick={}",
        datasets.len(),
        quick()
    );

    // (name, engine, eui, elimination)
    let variants: Vec<(&str, EngineKind, bool, bool)> = vec![
        ("full (EUI+elim, BO)", EngineKind::Bo, true, true),
        ("no EUI (round-robin alt)", EngineKind::Bo, false, true),
        ("no elimination", EngineKind::Bo, true, false),
        ("neither", EngineKind::Bo, false, false),
        ("random leaves", EngineKind::Random, true, true),
        ("mfes-hb leaves", EngineKind::MfesHb, true, true),
    ];

    let headers: Vec<String> = std::iter::once("dataset".to_string())
        .chain(variants.iter().map(|(n, _, _, _)| n.to_string()))
        .collect();
    let mut rows = Vec::new();
    let mut sums = vec![0.0; variants.len()];
    let mut counts = vec![0usize; variants.len()];
    for (di, dataset) in datasets.iter().enumerate() {
        let mut row = vec![dataset.name.clone()];
        for (vi, (name, engine, eui, elim)) in variants.iter().enumerate() {
            let seed = derive_seed(derive_seed(53, di as u64), vi as u64);
            match run_tree(&space, dataset, *engine, *eui, *elim, budget, seed) {
                Some(loss) => {
                    sums[vi] += loss;
                    counts[vi] += 1;
                    row.push(format!("{loss:.4}"));
                }
                None => {
                    eprintln!("  {name} failed on {}", dataset.name);
                    row.push("fail".to_string());
                }
            }
        }
        eprintln!("  {} done ({}/{})", dataset.name, di + 1, datasets.len());
        rows.push(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for (s, c) in sums.iter().zip(counts.iter()) {
        mean_row.push(if *c > 0 {
            format!("{:.4}", s / *c as f64)
        } else {
            "fail".to_string()
        });
    }
    rows.push(mean_row);

    print_table(
        "Blocks ablation: test loss (1 - balanced accuracy), lower is better",
        &headers,
        &rows,
    );
    write_csv("blocks_ablation.csv", &headers, &rows);
    let _ = SystemSpec::Tpot; // keep the harness linked for doc parity
}
