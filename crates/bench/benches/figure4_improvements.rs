//! Figure 4 reproduction: per-dataset improvement of VolcanoML⁻ over AUSK⁻
//! and TPOT on the auto-sklearn-equivalent (large) search space.
//!
//! Classification reports the test balanced-accuracy improvement in
//! percentage points; regression reports the paper's relative MSE
//! improvement Δ(m₁, m₂) = (s(m₂) − s(m₁)) / max(s(m₂), s(m₁)). The paper's
//! headline: VolcanoML beats AUSK on 25/30 CLS and 17/20 REG datasets, TPOT
//! on 23/30 and 15/20.

use volcanoml_bench::{maybe_truncate, print_table, quick, scaled, split_and_run, write_csv, SystemSpec};
use volcanoml_core::{EngineKind, SpaceDef};
use volcanoml_data::metrics::relative_mse_improvement;
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::repository::{medium_classification_suite, regression_suite};
use volcanoml_data::{Dataset, Metric, Task};

struct Row {
    dataset: String,
    vs_ausk: f64,
    vs_tpot: f64,
}

fn run_suite(datasets: &[Dataset], task: Task, budget: usize) -> Vec<Row> {
    let metric = Metric::default_for(task);
    let space = SpaceDef::auto_sklearn_equivalent(task);
    let systems = [
        SystemSpec::VolcanoMl {
            meta: false,
            engine: EngineKind::Bo,
        },
        SystemSpec::Ausk { meta: false },
        SystemSpec::Tpot,
    ];
    let mut rows = Vec::new();
    for (di, dataset) in datasets.iter().enumerate() {
        let mut losses = [f64::INFINITY; 3];
        for (si, spec) in systems.iter().enumerate() {
            let seed = derive_seed(derive_seed(7, di as u64), si as u64);
            match split_and_run(spec, &space, dataset, metric, budget, seed, None) {
                Ok(out) => losses[si] = out.test_loss,
                Err(e) => eprintln!("  {} on {}: {e}", spec.name(), dataset.name),
            }
        }
        let (vs_ausk, vs_tpot) = match task {
            Task::Classification => {
                // Losses are 1 - balanced accuracy; improvement in points.
                (
                    (losses[1] - losses[0]) * 100.0,
                    (losses[2] - losses[0]) * 100.0,
                )
            }
            Task::Regression => (
                relative_mse_improvement(losses[0], losses[1]),
                relative_mse_improvement(losses[0], losses[2]),
            ),
        };
        eprintln!(
            "  {} ({}/{}): vs AUSK- {:+.3}, vs TPOT {:+.3}",
            dataset.name,
            di + 1,
            datasets.len(),
            vs_ausk,
            vs_tpot
        );
        rows.push(Row {
            dataset: dataset.name.clone(),
            vs_ausk,
            vs_tpot,
        });
    }
    rows
}

fn summarize(task: &str, rows: &[Row], unit: &str) {
    let headers = vec![
        "dataset".to_string(),
        format!("vs AUSK- ({unit})"),
        format!("vs TPOT ({unit})"),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{:+.3}", r.vs_ausk),
                format!("{:+.3}", r.vs_tpot),
            ]
        })
        .collect();
    print_table(&format!("Figure 4 ({task}): VolcanoML- improvement per dataset"), &headers, &table);
    let wins_ausk = rows.iter().filter(|r| r.vs_ausk > 0.0).count();
    let wins_tpot = rows.iter().filter(|r| r.vs_tpot > 0.0).count();
    println!(
        "{task}: VolcanoML- beats AUSK- on {wins_ausk}/{} and TPOT on {wins_tpot}/{} datasets",
        rows.len(),
        rows.len()
    );
    write_csv(&format!("figure4_{}.csv", task.to_lowercase()), &headers, &table);
}

fn main() {
    let budget = scaled(40, 10);
    // 12 CLS / 8 REG sampled from the suites (single-core scale; raise for
    // a paper-scale run).
    let cls = maybe_truncate(
        medium_classification_suite().into_iter().step_by(2).take(12).collect(),
        5,
    );
    let reg = maybe_truncate(
        regression_suite().into_iter().step_by(2).take(8).collect(),
        4,
    );
    eprintln!(
        "Figure 4: {} CLS + {} REG datasets, budget {budget}, quick={}",
        cls.len(),
        reg.len(),
        quick()
    );
    let cls_rows = run_suite(&cls, Task::Classification, budget);
    summarize("CLS", &cls_rows, "accuracy pts");
    let reg_rows = run_suite(&reg, Task::Regression, budget);
    summarize("REG", &reg_rows, "relative MSE Δ");
}
