//! Figure 5 reproduction: test error vs evaluation budget on four large
//! classification datasets (the paper's Higgs / covtype-scale tier), for
//! VolcanoML⁻ (with MFES-HB leaves, as the paper uses on large data),
//! AUSK⁻, and TPOT.
//!
//! Each system runs once at the maximum budget; the test-error curve is
//! reconstructed by refitting every incumbent, exactly what plotting
//! "performance at budget b" requires.

use volcanoml_bench::{print_table, quick, scaled, write_csv, SystemSpec};
use volcanoml_bench::run_system;
use volcanoml_core::{EngineKind, SpaceDef};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::repository::large_classification_suite;
use volcanoml_data::{train_test_split, Metric, Task};

fn main() {
    let budget = scaled(25, 8);
    let n_datasets = scaled(4, 2);
    let datasets: Vec<_> = large_classification_suite()
        .into_iter()
        .take(n_datasets)
        .collect();
    let metric = Metric::BalancedAccuracy;
    let space = SpaceDef::auto_sklearn_equivalent(Task::Classification);
    let systems = [
        SystemSpec::VolcanoMl {
            meta: false,
            engine: EngineKind::MfesHb,
        },
        SystemSpec::Ausk { meta: false },
        SystemSpec::Tpot,
    ];
    eprintln!(
        "Figure 5: {} large datasets, budget {budget} evals, quick={}",
        datasets.len(),
        quick()
    );

    let headers = vec![
        "dataset".to_string(),
        "system".to_string(),
        "cost_s".to_string(),
        "test_error".to_string(),
    ];
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut final_rows: Vec<Vec<String>> = Vec::new();

    for (di, dataset) in datasets.iter().enumerate() {
        let (train, test) =
            train_test_split(dataset, 0.2, derive_seed(11, di as u64)).expect("split");
        eprintln!("== {} (n={}) ==", dataset.name, dataset.n_samples());
        for (si, spec) in systems.iter().enumerate() {
            let seed = derive_seed(derive_seed(11, di as u64), si as u64);
            let out = match run_system(spec, &space, &train, &test, metric, budget, seed, None) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("  {} failed: {e}", spec.name());
                    continue;
                }
            };
            let curve = out
                .run
                .test_error_curve(&space, &train, &test, metric, seed);
            for (cost, err) in &curve {
                csv_rows.push(vec![
                    dataset.name.clone(),
                    spec.name(),
                    format!("{cost:.3}"),
                    format!("{err:.4}"),
                ]);
            }
            let final_err = curve.last().map(|(_, e)| *e).unwrap_or(out.test_loss);
            eprintln!(
                "  {:<12} final test error {:.4} ({} incumbents, {:.1}s search)",
                spec.name(),
                final_err,
                curve.len(),
                out.run.total_cost
            );
            final_rows.push(vec![
                dataset.name.clone(),
                spec.name(),
                format!("{:.1}", out.run.total_cost),
                format!("{final_err:.4}"),
            ]);
        }
    }

    print_table(
        "Figure 5: final test error on large datasets (full curves in CSV)",
        &headers,
        &final_rows,
    );
    write_csv("figure5_curves.csv", &headers, &csv_rows);
    write_csv("figure5_final.csv", &headers, &final_rows);
}
