//! Experiment harness shared by the table/figure reproduction benches.
//!
//! Every bench target in `benches/` (run via `cargo bench`) uses this
//! library to: run a named AutoML system on a train/test split, compute
//! average ranks across datasets (the paper's Table 1 methodology), and emit
//! aligned text tables plus CSV files under `results/`.
//!
//! Set `VOLCANO_QUICK=1` for smoke-test runs (fewer datasets, smaller
//! budgets); the full runs regenerate the paper-scale numbers.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use volcanoml_baselines::ausk::{run_ausk, AuskOptions};
use volcanoml_baselines::platforms::{run_platform, Platform};
use volcanoml_baselines::tpot::{run_tpot, TpotOptions};
use volcanoml_baselines::SearchRun;
use volcanoml_core::metalearn::MetaBase;
use volcanoml_core::plans::p3_volcano;
use volcanoml_core::{
    EngineKind, PlanSpec, SpaceDef, VolcanoML, VolcanoMlOptions,
};
use volcanoml_data::rand_util::derive_seed;
use volcanoml_data::{train_test_split, Dataset, Metric};

/// Quick-mode flag (smoke runs).
pub fn quick() -> bool {
    std::env::var("VOLCANO_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Scales a full-run quantity down in quick mode.
pub fn scaled(full: usize, quick_value: usize) -> usize {
    if quick() {
        quick_value
    } else {
        full
    }
}

/// Truncates a dataset list in quick mode.
pub fn maybe_truncate(mut datasets: Vec<Dataset>, quick_len: usize) -> Vec<Dataset> {
    if quick() {
        datasets.truncate(quick_len);
    }
    datasets
}

/// The systems compared in Tables 1–2 and Figures 4–5.
#[derive(Debug, Clone)]
pub enum SystemSpec {
    /// VolcanoML with the Figure 2 plan; `meta` adds warm starts.
    VolcanoMl {
        /// Meta-learning on/off (`VolcanoML` vs `VolcanoML⁻`).
        meta: bool,
        /// Joint-leaf engine (BO for tables, MFES-HB for large datasets).
        engine: EngineKind,
    },
    /// auto-sklearn style joint BO; `meta` adds warm starts.
    Ausk {
        /// Meta-learning on/off.
        meta: bool,
    },
    /// TPOT-style genetic programming.
    Tpot,
    /// One of the commercial-platform simulacra.
    Platform(Platform),
    /// An arbitrary VolcanoML plan under a custom name (plan/blocks
    /// ablations).
    Plan {
        /// Display name.
        name: String,
        /// The plan to execute.
        plan: PlanSpec,
    },
}

impl SystemSpec {
    /// Display name matching the paper's table columns.
    pub fn name(&self) -> String {
        match self {
            SystemSpec::VolcanoMl { meta: true, .. } => "VolcanoML".to_string(),
            SystemSpec::VolcanoMl { meta: false, .. } => "VolcanoML-".to_string(),
            SystemSpec::Ausk { meta: true } => "AUSK".to_string(),
            SystemSpec::Ausk { meta: false } => "AUSK-".to_string(),
            SystemSpec::Tpot => "TPOT".to_string(),
            SystemSpec::Platform(p) => p.name().to_string(),
            SystemSpec::Plan { name, .. } => name.clone(),
        }
    }

    /// The five-system lineup of Table 1.
    pub fn table1_lineup() -> Vec<SystemSpec> {
        vec![
            SystemSpec::Tpot,
            SystemSpec::Ausk { meta: false },
            SystemSpec::Ausk { meta: true },
            SystemSpec::VolcanoMl {
                meta: false,
                engine: EngineKind::Bo,
            },
            SystemSpec::VolcanoMl {
                meta: true,
                engine: EngineKind::Bo,
            },
        ]
    }
}

/// Outcome of one (system, dataset) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// System name.
    pub system: String,
    /// Dataset name.
    pub dataset: String,
    /// Best validation loss during search.
    pub valid_loss: f64,
    /// Test loss of the refit winner.
    pub test_loss: f64,
    /// The raw search record.
    pub run: SearchRun,
}

/// Runs one system on a pre-split dataset.
#[allow(clippy::too_many_arguments)]
pub fn run_system(
    spec: &SystemSpec,
    space: &SpaceDef,
    train: &Dataset,
    test: &Dataset,
    metric: Metric,
    max_evaluations: usize,
    seed: u64,
    meta_base: Option<&MetaBase>,
) -> volcanoml_core::Result<RunOutcome> {
    let run = match spec {
        SystemSpec::VolcanoMl { meta, engine } => {
            let mut engine_obj = VolcanoML::new(
                space.clone(),
                VolcanoMlOptions {
                    plan: p3_volcano(*engine),
                    metric: Some(metric),
                    max_evaluations,
                    seed,
                    ..Default::default()
                },
            );
            if *meta {
                if let Some(base) = meta_base {
                    engine_obj.warm_start_from(base, train);
                }
            }
            let fitted = engine_obj.fit(train)?;
            SearchRun::from_report(spec.name(), &fitted.report)
        }
        SystemSpec::Ausk { meta } => run_ausk(
            space,
            train,
            metric,
            &AuskOptions {
                max_evaluations,
                meta_learning: *meta,
                ensemble_size: 1,
                seed,
            },
            meta_base,
        )?,
        SystemSpec::Tpot => run_tpot(
            space,
            train,
            metric,
            &TpotOptions {
                max_evaluations,
                seed,
                ..Default::default()
            },
        )?,
        SystemSpec::Platform(p) => {
            run_platform(*p, space, train, metric, max_evaluations, seed)?
        }
        SystemSpec::Plan { name, plan } => {
            let engine_obj = VolcanoML::new(
                space.clone(),
                VolcanoMlOptions {
                    plan: plan.clone(),
                    metric: Some(metric),
                    max_evaluations,
                    seed,
                    ..Default::default()
                },
            );
            let fitted = engine_obj.fit(train)?;
            SearchRun::from_report(name.clone(), &fitted.report)
        }
    };
    let test_loss = run.final_test_loss(space, train, test, metric, seed)?;
    Ok(RunOutcome {
        system: spec.name(),
        dataset: train.name.clone(),
        valid_loss: run.best_loss,
        test_loss,
        run,
    })
}

/// Splits a dataset 80/20 as the paper does (§5.1) and runs one system.
pub fn split_and_run(
    spec: &SystemSpec,
    space: &SpaceDef,
    dataset: &Dataset,
    metric: Metric,
    max_evaluations: usize,
    seed: u64,
    meta_base: Option<&MetaBase>,
) -> volcanoml_core::Result<RunOutcome> {
    let (train, test) = train_test_split(dataset, 0.2, derive_seed(seed, 0xdead))?;
    run_system(spec, space, &train, &test, metric, max_evaluations, seed, meta_base)
}

/// Ranks one dataset's losses (1 = best; ties share the average rank).
pub fn rank_losses(losses: &[f64]) -> Vec<f64> {
    let n = losses.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| losses[a].partial_cmp(&losses[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (losses[idx[j + 1]] - losses[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Average ranks across datasets: `losses[dataset][system]` → mean rank per
/// system (the paper's Table 1 metric).
pub fn average_ranks(losses: &[Vec<f64>]) -> Vec<f64> {
    if losses.is_empty() {
        return Vec::new();
    }
    let n_systems = losses[0].len();
    let mut sums = vec![0.0; n_systems];
    for per_dataset in losses {
        for (s, r) in sums.iter_mut().zip(rank_losses(per_dataset)) {
            *s += r;
        }
    }
    for s in &mut sums {
        *s /= losses.len() as f64;
    }
    sums
}

/// Prints an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    println!("{out}");
}

/// Writes a CSV under `results/` (relative to the workspace root).
pub fn write_csv(file: &str, headers: &[String], rows: &[Vec<String>]) {
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(file);
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Builds a leave-one-out meta-base from VolcanoML⁻ runs: used by the
/// meta-learning variants in Table 1. `top[dataset_name]` are the best
/// assignments found on that dataset.
pub fn build_meta_base(
    datasets: &[Dataset],
    top: &HashMap<String, Vec<volcanoml_core::Assignment>>,
) -> MetaBase {
    let mut base = MetaBase::new();
    for d in datasets {
        if let Some(assignments) = top.get(&d.name) {
            base.record(d, assignments.clone());
        }
    }
    base
}

/// Formats a float with three decimals for table cells.
pub fn fmt3(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_basic_and_ties() {
        assert_eq!(rank_losses(&[0.3, 0.1, 0.2]), vec![3.0, 1.0, 2.0]);
        assert_eq!(rank_losses(&[0.1, 0.1, 0.2]), vec![1.5, 1.5, 3.0]);
        assert_eq!(rank_losses(&[0.5]), vec![1.0]);
    }

    #[test]
    fn average_ranks_over_datasets() {
        let losses = vec![vec![0.1, 0.2], vec![0.2, 0.1]];
        assert_eq!(average_ranks(&losses), vec![1.5, 1.5]);
        let lopsided = vec![vec![0.1, 0.2], vec![0.1, 0.2]];
        assert_eq!(average_ranks(&lopsided), vec![1.0, 2.0]);
    }

    #[test]
    fn lineup_matches_paper_columns() {
        let names: Vec<String> = SystemSpec::table1_lineup()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, vec!["TPOT", "AUSK-", "AUSK", "VolcanoML-", "VolcanoML"]);
    }

    #[test]
    fn quick_scaling() {
        // Cannot set env vars safely in tests; just exercise both branches
        // of `scaled` through the current environment value.
        let v = scaled(100, 10);
        assert!(v == 100 || v == 10);
    }

    #[test]
    fn smoke_run_one_system() {
        let d = volcanoml_data::synthetic::make_classification(
            &volcanoml_data::synthetic::ClassificationSpec {
                n_samples: 200,
                n_features: 6,
                n_informative: 4,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.5,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            1,
        );
        let space = SpaceDef::tiered(volcanoml_data::Task::Classification, volcanoml_core::SpaceTier::Small);
        let out = split_and_run(
            &SystemSpec::Tpot,
            &space,
            &d,
            Metric::BalancedAccuracy,
            8,
            0,
            None,
        )
        .unwrap();
        assert!(out.test_loss.is_finite());
        assert_eq!(out.system, "TPOT");
    }
}
