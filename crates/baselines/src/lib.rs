//! Baseline AutoML systems used in the paper's evaluation (§5):
//!
//! - [`ausk`] — an auto-sklearn-style system: one joint BO block over the
//!   whole space, optional meta-learning warm start and ensemble post-pass;
//! - [`tpot`] — a TPOT-style genetic-programming optimizer over pipeline
//!   assignments (tournament selection, uniform crossover, neighbor
//!   mutation);
//! - [`platforms`] — four anonymized "commercial platform" simulacra with
//!   heterogeneous strategies (the paper anonymizes the real platforms and
//!   only uses their time-vs-error curves, so faithful identity is neither
//!   possible nor needed — see DESIGN.md).
//!
//! All systems run through the same [`SearchRun`] result type, which the
//! bench harness consumes uniformly.

pub mod ausk;
pub mod platforms;
pub mod tpot;

use std::collections::HashMap;
use volcanoml_core::evaluator::refit_assignment;
use volcanoml_core::{Assignment, SpaceDef};
use volcanoml_data::{Dataset, Metric};

/// Errors from baseline systems (re-exported core errors).
pub type Error = volcanoml_core::CoreError;
/// Convenience alias.
pub type Result<T> = volcanoml_core::Result<T>;

/// A uniform record of one system's search on one dataset.
#[derive(Debug, Clone)]
pub struct SearchRun {
    /// System display name.
    pub system: String,
    /// `(evaluation_index, cumulative_cost_seconds, validation_loss,
    /// assignment)` at each incumbent change.
    pub incumbent_steps: Vec<(usize, f64, f64, Assignment)>,
    /// Total evaluations executed.
    pub n_evaluations: usize,
    /// Total evaluation wall time (seconds).
    pub total_cost: f64,
    /// Final best assignment.
    pub best_assignment: Assignment,
    /// Final best validation loss.
    pub best_loss: f64,
}

impl SearchRun {
    /// Builds a run record from a core [`volcanoml_core::AutoMlReport`].
    pub fn from_report(system: impl Into<String>, report: &volcanoml_core::AutoMlReport) -> Self {
        SearchRun {
            system: system.into(),
            incumbent_steps: report.incumbent_steps.clone(),
            n_evaluations: report.n_evaluations,
            total_cost: report.total_cost,
            best_assignment: report.best_assignment.clone(),
            best_loss: report.best_loss,
        }
    }

    /// Refits the final best assignment on `train` and scores on `test`.
    /// Returns the metric *loss* (lower is better).
    pub fn final_test_loss(
        &self,
        space: &SpaceDef,
        train: &Dataset,
        test: &Dataset,
        metric: Metric,
        seed: u64,
    ) -> Result<f64> {
        let (pipeline, model) = refit_assignment(space, &self.best_assignment, train, seed)?;
        let xt = pipeline
            .transform(&test.x)
            .map_err(|e| Error::Substrate(e.to_string()))?;
        let preds = volcanoml_models::Estimator::predict(&model, &xt)
            .map_err(|e| Error::Substrate(e.to_string()))?;
        Ok(metric.loss(&test.y, &preds))
    }

    /// Test-error-vs-cost curve: each incumbent is refit on `train` and
    /// scored on `test`, yielding `(cumulative_cost, test_loss)` steps.
    pub fn test_error_curve(
        &self,
        space: &SpaceDef,
        train: &Dataset,
        test: &Dataset,
        metric: Metric,
        seed: u64,
    ) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.incumbent_steps.len());
        for (_, cost, _, assignment) in &self.incumbent_steps {
            let Ok((pipeline, model)) = refit_assignment(space, assignment, train, seed) else {
                continue;
            };
            let Ok(xt) = pipeline.transform(&test.x) else {
                continue;
            };
            let Ok(preds) = volcanoml_models::Estimator::predict(&model, &xt) else {
                continue;
            };
            out.push((*cost, metric.loss(&test.y, &preds)));
        }
        out
    }
}

/// Helper shared by the handwritten searchers: track incumbents from a
/// sequence of `(loss, cost, assignment)` evaluations.
#[derive(Debug, Clone, Default)]
pub(crate) struct IncumbentTracker {
    pub steps: Vec<(usize, f64, f64, Assignment)>,
    pub best_loss: f64,
    pub best_assignment: Option<Assignment>,
    pub cum_cost: f64,
    pub evals: usize,
}

impl IncumbentTracker {
    pub fn new() -> Self {
        IncumbentTracker {
            steps: Vec::new(),
            best_loss: f64::INFINITY,
            best_assignment: None,
            cum_cost: 0.0,
            evals: 0,
        }
    }

    pub fn record(&mut self, assignment: &HashMap<String, f64>, loss: f64, cost: f64) {
        self.evals += 1;
        self.cum_cost += cost;
        if loss.is_finite() && loss < self.best_loss {
            self.best_loss = loss;
            self.best_assignment = Some(assignment.clone());
            self.steps
                .push((self.evals, self.cum_cost, loss, assignment.clone()));
        }
    }

    pub fn into_run(self, system: impl Into<String>) -> Result<SearchRun> {
        let best_assignment = self.best_assignment.ok_or_else(|| {
            Error::Invalid("search produced no successful evaluation".into())
        })?;
        Ok(SearchRun {
            system: system.into(),
            incumbent_steps: self.steps,
            n_evaluations: self.evals,
            total_cost: self.cum_cost,
            best_assignment,
            best_loss: self.best_loss,
        })
    }
}
