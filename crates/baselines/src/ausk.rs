//! The auto-sklearn-style baseline (`AUSK` in the paper's tables): a single
//! joint Bayesian-optimization block over the entire composite space —
//! exactly the decomposition-free strategy VolcanoML's Figure 1 "Plan 1"
//! describes — plus auto-sklearn's two signature extras, meta-learning warm
//! starts and greedy ensemble selection.

use crate::{Result, SearchRun};
use volcanoml_core::metalearn::MetaBase;
use volcanoml_core::plans::p1_joint;
use volcanoml_core::{EngineKind, SpaceDef, VolcanoML, VolcanoMlOptions};
use volcanoml_data::{Dataset, Metric};

/// Configuration of the AUSK baseline.
#[derive(Debug, Clone)]
pub struct AuskOptions {
    /// Maximum pipeline evaluations.
    pub max_evaluations: usize,
    /// Enable meta-learning warm starts (`AUSK` vs `AUSK⁻` in the paper).
    pub meta_learning: bool,
    /// Ensemble size (1 = single best, matching the table runs).
    pub ensemble_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for AuskOptions {
    fn default() -> Self {
        AuskOptions {
            max_evaluations: 60,
            meta_learning: false,
            ensemble_size: 1,
            seed: 0,
        }
    }
}

/// Runs the AUSK baseline on `train`, returning the uniform run record.
pub fn run_ausk(
    space: &SpaceDef,
    train: &Dataset,
    metric: Metric,
    options: &AuskOptions,
    meta_base: Option<&MetaBase>,
) -> Result<SearchRun> {
    let core_options = VolcanoMlOptions {
        plan: p1_joint(EngineKind::Bo),
        metric: Some(metric),
        max_evaluations: options.max_evaluations,
        time_budget: None,
        seed: options.seed,
        warm_start: Vec::new(),
        ensemble_size: options.ensemble_size,
        validation: Default::default(),
        ..Default::default()
    };
    let mut engine = VolcanoML::new(space.clone(), core_options);
    let name = if options.meta_learning { "AUSK" } else { "AUSK-" };
    if options.meta_learning {
        if let Some(base) = meta_base {
            engine.warm_start_from(base, train);
        }
    }
    let fitted = engine.fit(train)?;
    Ok(SearchRun::from_report(name, &fitted.report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_core::SpaceTier;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::{train_test_split, Task};

    fn data(seed: u64) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 260,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.3,
                flip_y: 0.03,
                weights: Vec::new(),
            },
            seed,
        )
    }

    #[test]
    fn ausk_runs_and_improves() {
        let d = data(1);
        let (train, test) = train_test_split(&d, 0.25, 0).unwrap();
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let run = run_ausk(
            &space,
            &train,
            Metric::BalancedAccuracy,
            &AuskOptions {
                max_evaluations: 20,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(run.system, "AUSK-");
        assert!(run.best_loss < 0.5);
        assert!(run.n_evaluations <= 20);
        let test_loss = run
            .final_test_loss(&space, &train, &test, Metric::BalancedAccuracy, 0)
            .unwrap();
        assert!(test_loss < 0.5, "test loss {test_loss}");
    }

    #[test]
    fn meta_learning_changes_name_and_uses_base() {
        let d = data(2);
        let other = data(3);
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let mut base = MetaBase::new();
        let mut good = volcanoml_core::Assignment::new();
        good.insert("algorithm".to_string(), 1.0);
        base.record(&other, vec![good]);
        let run = run_ausk(
            &space,
            &d,
            Metric::BalancedAccuracy,
            &AuskOptions {
                max_evaluations: 8,
                meta_learning: true,
                ..Default::default()
            },
            Some(&base),
        )
        .unwrap();
        assert_eq!(run.system, "AUSK");
    }

    #[test]
    fn test_error_curve_is_nonempty() {
        let d = data(4);
        let (train, test) = train_test_split(&d, 0.25, 0).unwrap();
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let run = run_ausk(
            &space,
            &train,
            Metric::BalancedAccuracy,
            &AuskOptions {
                max_evaluations: 12,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let curve = run.test_error_curve(&space, &train, &test, Metric::BalancedAccuracy, 0);
        assert!(!curve.is_empty());
        assert!(curve.windows(2).all(|w| w[1].0 >= w[0].0));
    }
}
