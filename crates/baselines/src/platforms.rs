//! Four anonymized "commercial AutoML platform" simulacra (Figure 6).
//!
//! The paper compares against Google / Azure / Oracle / AWS AutoML but
//! anonymizes them as Platform 1–4 and uses only their test-error-vs-time
//! curves. We therefore substitute four *strategically distinct* AutoML
//! services (documented in DESIGN.md):
//!
//! - **Platform 1** — pure random search over the full space;
//! - **Platform 2** — "grid-ish" search: random draws snapped to a coarse
//!   per-variable grid (the discretized-service archetype);
//! - **Platform 3** — joint BO over algorithms + HPs with feature
//!   engineering frozen at defaults (the no-FE-search archetype);
//! - **Platform 4** — a small-population evolutionary searcher with heavy
//!   elitism (the evolutionary-service archetype).

use crate::tpot::{run_tpot, TpotOptions};
use crate::{IncumbentTracker, Result, SearchRun};
use rand::RngExt;
use volcanoml_core::plans::p1_joint;
use volcanoml_core::{Assignment, EngineKind, Evaluator, SpaceDef, VolcanoML, VolcanoMlOptions};
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_data::{Dataset, Metric};
use volcanoml_models::AlgorithmKind;

/// One of the four simulated platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Random search.
    One,
    /// Grid-snapped random search.
    Two,
    /// Joint BO without FE search.
    Three,
    /// Evolutionary, heavy elitism.
    Four,
}

impl Platform {
    /// All four platforms.
    pub fn all() -> [Platform; 4] {
        [Platform::One, Platform::Two, Platform::Three, Platform::Four]
    }

    /// Display name used in the Figure 6 reproduction.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::One => "Platform-1",
            Platform::Two => "Platform-2",
            Platform::Three => "Platform-3",
            Platform::Four => "Platform-4",
        }
    }
}

/// Runs a simulated platform on `train`.
pub fn run_platform(
    platform: Platform,
    space: &SpaceDef,
    train: &Dataset,
    metric: Metric,
    max_evaluations: usize,
    seed: u64,
) -> Result<SearchRun> {
    match platform {
        Platform::One => run_random(space, train, metric, max_evaluations, seed, false)
            .map(|mut r| {
                r.system = platform.name().to_string();
                r
            }),
        Platform::Two => run_random(space, train, metric, max_evaluations, seed, true)
            .map(|mut r| {
                r.system = platform.name().to_string();
                r
            }),
        Platform::Three => {
            // Rebuild the space without FE parameters.
            let algorithms: Vec<AlgorithmKind> = space.algorithms.clone();
            let no_fe = SpaceDef::build(
                space.task,
                algorithms,
                Vec::new(),
                space.fe_options.clone(),
            )?;
            let engine = VolcanoML::new(
                no_fe,
                VolcanoMlOptions {
                    plan: p1_joint(EngineKind::Bo),
                    metric: Some(metric),
                    max_evaluations,
                    seed,
                    ..Default::default()
                },
            );
            let fitted = engine.fit(train)?;
            Ok(SearchRun::from_report(platform.name(), &fitted.report))
        }
        Platform::Four => {
            let run = run_tpot(
                space,
                train,
                metric,
                &TpotOptions {
                    max_evaluations,
                    population: 6,
                    tournament: 4,
                    crossover_rate: 0.4,
                    mutation_rate: 0.9,
                    elites: 3,
                    seed,
                },
            )?;
            Ok(SearchRun {
                system: platform.name().to_string(),
                ..run
            })
        }
    }
}

/// Random search, optionally snapping every variable to a 4-point grid.
fn run_random(
    space: &SpaceDef,
    train: &Dataset,
    metric: Metric,
    max_evaluations: usize,
    seed: u64,
    grid: bool,
) -> Result<SearchRun> {
    let cs = space.compile_subspace(&space.var_names(), &Assignment::new())?;
    let evaluator = Evaluator::new(space.clone(), train, metric, seed)?;
    let mut rng = rng_from_seed(seed ^ 0x9a7f);
    let mut tracker = IncumbentTracker::new();
    while tracker.evals < max_evaluations {
        let cfg = cs.sample(&mut rng);
        let mut assignment = Assignment::new();
        for (param, value) in cs.params().iter().zip(cfg.values.iter()) {
            let Some(v) = value else { continue };
            let v = if grid {
                // Snap to 4 evenly spaced grid points in unit space.
                let u = param.domain.to_unit(*v);
                let snapped = (u * 3.0).round() / 3.0;
                param.domain.from_unit(snapped)
            } else {
                *v
            };
            assignment.insert(param.name.clone(), v);
        }
        let out = evaluator.evaluate(&assignment, 1.0);
        tracker.record(&assignment, out.loss, out.cost);
        // Deduplicated grid points can stall the budget loop because cached
        // hits do not increase `evaluator.evaluations`; the tracker counts
        // every attempt instead.
        let _ = rng.random::<u64>();
    }
    tracker.into_run(if grid { "grid" } else { "random" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_core::SpaceTier;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::Task;

    fn data(seed: u64) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 240,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.4,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            seed,
        )
    }

    #[test]
    fn all_platforms_run() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let d = data(1);
        for p in Platform::all() {
            let run = run_platform(p, &space, &d, Metric::BalancedAccuracy, 10, 0)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert_eq!(run.system, p.name());
            assert!(run.best_loss.is_finite(), "{}", p.name());
            assert!(run.n_evaluations <= 10, "{}", p.name());
        }
    }

    #[test]
    fn platforms_differ_in_behavior() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        // A hard task so strategies do not all hit the accuracy ceiling.
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 260,
                n_features: 12,
                n_informative: 4,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 0.6,
                flip_y: 0.1,
                weights: Vec::new(),
            },
            2,
        );
        let runs: Vec<_> = Platform::all()
            .iter()
            .map(|&p| run_platform(p, &space, &d, Metric::BalancedAccuracy, 12, 0).unwrap())
            .collect();
        // Not all four strategies follow the identical search trace: compare
        // the winning assignments.
        let distinct: std::collections::HashSet<String> = runs
            .iter()
            .map(|r| {
                let mut kv: Vec<String> = r
                    .best_assignment
                    .iter()
                    .map(|(k, v)| format!("{k}={v:.6}"))
                    .collect();
                kv.sort();
                kv.join(",")
            })
            .collect();
        assert!(distinct.len() >= 2, "all platforms found the same pipeline");
    }

    #[test]
    fn grid_snapping_limits_distinct_values() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let d = data(3);
        let run = run_platform(Platform::Two, &space, &d, Metric::BalancedAccuracy, 15, 0)
            .unwrap();
        // Snapped alpha values must lie on the 4-point grid (unit positions
        // 0, 1/3, 2/3, 1 of the log range).
        for (_, _, _, a) in &run.incumbent_steps {
            if let Some(v) = a.get("alg:logistic:alpha") {
                let u = ((v.ln() - 1e-6f64.ln()) / (1e-1f64.ln() - 1e-6f64.ln())).clamp(0.0, 1.0);
                let nearest = (u * 3.0).round() / 3.0;
                assert!((u - nearest).abs() < 1e-6, "alpha {v} off-grid (u={u})");
            }
        }
    }
}
