//! TPOT-style genetic programming over pipeline assignments.
//!
//! TPOT evolves tree-shaped sklearn pipelines with genetic operators. Our
//! pipelines have a fixed stage structure, so the genome is the full
//! variable assignment; evolution uses tournament selection, uniform
//! crossover (per-variable mixing, re-projected onto the conditional space),
//! and neighbor mutation. Like TPOT, it requires no surrogate model and
//! discretizes nothing away — but pays for the large joint genome on big
//! spaces, which is exactly the scalability contrast the paper draws.

use crate::{IncumbentTracker, Result, SearchRun};
use rand::rngs::StdRng;
use rand::RngExt;
use volcanoml_bo::{ConfigSpace, Configuration};
use volcanoml_core::{Assignment, Evaluator, SpaceDef};
use volcanoml_data::rand_util::rng_from_seed;
use volcanoml_data::{Dataset, Metric};

/// GP hyper-parameters.
#[derive(Debug, Clone)]
pub struct TpotOptions {
    /// Maximum pipeline evaluations (generations stop when exhausted).
    pub max_evaluations: usize,
    /// Population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-offspring crossover probability (otherwise cloning).
    pub crossover_rate: f64,
    /// Per-offspring mutation probability.
    pub mutation_rate: f64,
    /// Elitism: top-k carried over unchanged.
    pub elites: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TpotOptions {
    fn default() -> Self {
        TpotOptions {
            max_evaluations: 60,
            population: 12,
            tournament: 3,
            crossover_rate: 0.7,
            mutation_rate: 0.6,
            elites: 2,
            seed: 0,
        }
    }
}

/// Uniform crossover of two configurations, re-projected onto the space so
/// conditional activity stays consistent.
fn crossover(
    space: &ConfigSpace,
    a: &Configuration,
    b: &Configuration,
    rng: &mut StdRng,
) -> Configuration {
    let map_a = space.to_map(a);
    let map_b = space.to_map(b);
    let mut child = Assignment::new();
    for p in space.params() {
        let pick_a: bool = rng.random::<bool>();
        let source = if pick_a { &map_a } else { &map_b };
        let fallback = if pick_a { &map_b } else { &map_a };
        if let Some(v) = source.get(&p.name).or_else(|| fallback.get(&p.name)) {
            child.insert(p.name.clone(), *v);
        }
    }
    space.from_map(&child)
}

/// Runs the TPOT-style baseline.
pub fn run_tpot(
    space: &SpaceDef,
    train: &Dataset,
    metric: Metric,
    options: &TpotOptions,
) -> Result<SearchRun> {
    let cs = space.compile_subspace(&space.var_names(), &Assignment::new())?;
    let evaluator = Evaluator::new(space.clone(), train, metric, options.seed)?;
    let mut rng = rng_from_seed(options.seed ^ 0x7907);
    let mut tracker = IncumbentTracker::new();

    let pop_size = options.population.max(4);
    let mut population: Vec<(Configuration, f64)> = Vec::with_capacity(pop_size);

    let evaluate = |cfg: &Configuration,
                        evaluator: &Evaluator,
                        tracker: &mut IncumbentTracker|
     -> f64 {
        let assignment = {
            let own = evaluator.space().compile_first_map(cfg);
            own
        };
        let out = evaluator.evaluate(&assignment, 1.0);
        tracker.record(&assignment, out.loss, out.cost);
        out.loss
    };

    // Initial population: default + random.
    let mut initial: Vec<Configuration> = vec![cs.default_configuration()];
    while initial.len() < pop_size {
        initial.push(cs.sample(&mut rng));
    }
    for cfg in initial {
        if tracker.evals >= options.max_evaluations {
            break;
        }
        let loss = evaluate(&cfg, &evaluator, &mut tracker);
        population.push((cfg, loss));
    }

    // Generations.
    while tracker.evals < options.max_evaluations {
        population.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut next: Vec<(Configuration, f64)> = population
            .iter()
            .take(options.elites.min(population.len()))
            .cloned()
            .collect();
        while next.len() < pop_size && tracker.evals < options.max_evaluations {
            // Tournament selection.
            let pick = |rng: &mut StdRng| -> &(Configuration, f64) {
                let mut best: Option<&(Configuration, f64)> = None;
                for _ in 0..options.tournament.max(1) {
                    let c = &population[rng.random_range(0..population.len())];
                    if best.is_none_or(|b| c.1 < b.1) {
                        best = Some(c);
                    }
                }
                best.expect("non-empty population")
            };
            let parent_a = pick(&mut rng).0.clone();
            let parent_b = pick(&mut rng).0.clone();
            let mut child = if rng.random::<f64>() < options.crossover_rate {
                crossover(&cs, &parent_a, &parent_b, &mut rng)
            } else {
                parent_a.clone()
            };
            if rng.random::<f64>() < options.mutation_rate {
                child = cs.neighbor(&child, &mut rng);
            }
            let loss = evaluate(&child, &evaluator, &mut tracker);
            next.push((child, loss));
        }
        population = next;
    }

    tracker.into_run("TPOT")
}

/// Extension trait wiring `SpaceDef` + configuration to a full assignment
/// (the space's map plus the tier defaults for anything inactive is not
/// needed — the evaluator reads only active prefixes).
trait SpaceDefExt {
    fn compile_first_map(&self, cfg: &Configuration) -> Assignment;
}

impl SpaceDefExt for SpaceDef {
    fn compile_first_map(&self, cfg: &Configuration) -> Assignment {
        // The configuration belongs to the full-space compile, whose variable
        // order matches `self.vars`; rebuild the name→value map directly.
        let mut out = Assignment::new();
        for (var, value) in self.vars.iter().zip(cfg.values.iter()) {
            if let Some(v) = value {
                out.insert(var.name.clone(), *v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_core::SpaceTier;
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::Task;

    fn data(seed: u64) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: 240,
                n_features: 8,
                n_informative: 5,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.4,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            seed,
        )
    }

    #[test]
    fn tpot_runs_within_budget() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let run = run_tpot(
            &space,
            &data(1),
            Metric::BalancedAccuracy,
            &TpotOptions {
                max_evaluations: 25,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(run.system, "TPOT");
        assert!(run.n_evaluations <= 25);
        assert!(run.best_loss < 0.5, "loss {}", run.best_loss);
    }

    #[test]
    fn tpot_is_deterministic_given_seed() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let opts = TpotOptions {
            max_evaluations: 15,
            ..Default::default()
        };
        let a = run_tpot(&space, &data(2), Metric::BalancedAccuracy, &opts).unwrap();
        let b = run_tpot(&space, &data(2), Metric::BalancedAccuracy, &opts).unwrap();
        assert_eq!(a.best_loss, b.best_loss);
        assert_eq!(a.n_evaluations, b.n_evaluations);
    }

    #[test]
    fn crossover_produces_valid_configs() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
        let cs = space
            .compile_subspace(&space.var_names(), &Assignment::new())
            .unwrap();
        let mut rng = rng_from_seed(0);
        for _ in 0..50 {
            let a = cs.sample(&mut rng);
            let b = cs.sample(&mut rng);
            let child = crossover(&cs, &a, &b, &mut rng);
            cs.validate(&child).unwrap();
        }
    }

    #[test]
    fn tpot_improves_over_generations() {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let short = run_tpot(
            &space,
            &data(3),
            Metric::BalancedAccuracy,
            &TpotOptions {
                max_evaluations: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let long = run_tpot(
            &space,
            &data(3),
            Metric::BalancedAccuracy,
            &TpotOptions {
                max_evaluations: 40,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(long.best_loss <= short.best_loss + 1e-12);
    }
}
