//! Descriptive statistics over slices and matrix columns.

use crate::Matrix;

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); 0.0 for fewer than 2 elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample skewness (Fisher-Pearson, biased); 0.0 when the variance vanishes.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n as f64
}

/// Excess kurtosis (biased); 0.0 when the variance vanishes.
pub fn kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 {
        return 0.0;
    }
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n as f64 - 3.0
}

/// `q`-quantile (0 ≤ q ≤ 1) with linear interpolation; NaN-free input assumed.
///
/// Returns 0.0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    quantile_sorted(&sorted, q)
}

/// `q`-quantile of an already ascending-sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median via [`quantile`].
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation; 0.0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx < 1e-24 || vy < 1e-24 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Per-column means of a matrix.
pub fn column_means(m: &Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let mut sums = vec![0.0; cols];
    for row in m.iter_rows() {
        for (s, &v) in sums.iter_mut().zip(row.iter()) {
            *s += v;
        }
    }
    if rows > 0 {
        for s in &mut sums {
            *s /= rows as f64;
        }
    }
    sums
}

/// Per-column population standard deviations of a matrix.
pub fn column_stds(m: &Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    if rows == 0 {
        return vec![0.0; cols];
    }
    let means = column_means(m);
    let mut sums = vec![0.0; cols];
    for row in m.iter_rows() {
        for ((s, &v), &mu) in sums.iter_mut().zip(row.iter()).zip(means.iter()) {
            let d = v - mu;
            *s += d * d;
        }
    }
    sums.iter().map(|s| (s / rows as f64).sqrt()).collect()
}

/// Covariance matrix of the columns of `m` (population normalization).
pub fn covariance_matrix(m: &Matrix) -> Matrix {
    let rows = m.rows();
    let means = column_means(m);
    let mut centered = m.clone();
    for r in 0..rows {
        let row = centered.row_mut(r);
        for (v, &mu) in row.iter_mut().zip(means.iter()) {
            *v -= mu;
        }
    }
    let mut cov = centered.gram();
    if rows > 1 {
        cov.scale(1.0 / rows as f64);
    }
    cov
}

/// Index of the maximum element (first occurrence); `None` for empty input.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence); `None` for empty input.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, &v)| match best {
            Some((_, bv)) if bv <= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_insensitive() {
        let a = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&a, 0.5), 2.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn skew_and_kurtosis_of_symmetric_data() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
        // Uniform-ish data is platykurtic (negative excess kurtosis).
        assert!(kurtosis(&xs) < 0.0);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 30.0]).unwrap();
        assert_eq!(column_means(&m), vec![2.0, 20.0]);
        let stds = column_stds(&m);
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!((stds[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0]).unwrap();
        let cov = covariance_matrix(&m);
        // var(x) = 2/3, cov(x, 2x) = 4/3, var(2x) = 8/3.
        assert!((cov.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 4.0 / 3.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_argmin_first_occurrence() {
        let xs = [1.0, 3.0, 3.0, 0.0, 0.0];
        assert_eq!(argmax(&xs), Some(1));
        assert_eq!(argmin(&xs), Some(3));
    }
}
