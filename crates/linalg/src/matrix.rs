//! Row-major dense matrix.

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64`.
///
/// Rows are contiguous in memory, which makes per-sample access (the dominant
/// pattern in ML training loops) a single slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of shape `rows x cols` filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "from_vec expects {} elements for {}x{}, got {}",
                    rows * cols,
                    rows,
                    cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    context: format!("row {i} has length {}, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the raw row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its row-major buffer. Lets callers
    /// recycle the allocation (e.g. the dataset-view gather pool).
    #[inline]
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Mutable view of the raw row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor (debug-asserted bounds; use [`Matrix::row`] in hot loops).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Contiguous slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable contiguous slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Classic ikj loop order so the inner loop walks both operands
    /// contiguously.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "matmul {}x{} by {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("matvec {}x{} by len {}", self.rows, self.cols, v.len()),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| dot(row, v))
            .collect())
    }

    /// `selfᵀ * self`, the Gram matrix of the columns. Exploits symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for row in self.iter_rows() {
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..i * n + n];
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    out_row[j] += ri * rj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
        out
    }

    /// Element-wise in-place scaling.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise sum with another matrix of the same shape.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("add {:?} and {:?}", self.shape(), other.shape()),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix keeping only the listed rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix keeping only the listed columns (in the given order).
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in indices {
                data.push(row[c]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        }
    }

    /// Horizontally concatenates `self` with `other` (same row count).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                context: format!("hstack row counts {} vs {}", self.rows, other.rows),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Chunked accumulation gives the optimizer room to vectorize.
    let mut acc = 0.0;
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let base = i * 4;
        s0 += a[base] * b[base];
        s1 += a[base + 1] * b[base + 1];
        s2 += a[base + 2] * b[base + 2];
        s3 += a[base + 3] * b[base + 3];
    }
    for i in chunks * 4..n {
        acc += a[i] * b[i];
    }
    acc + s0 + s1 + s2 + s3
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5]).unwrap();
        let v = vec![1.0, 2.0, 3.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![-2.0, 5.5]);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, 1.0, -1.0, 0.5]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g.get(i, j) - expected.get(i, j)).abs() < 1e-12);
                assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_vec(3, 3, (1..=9).map(|v| v as f64).collect()).unwrap();
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = a.hstack(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f64> = (0..7).map(|v| v as f64).collect();
        let b = vec![1.0; 7];
        assert_eq!(dot(&a, &b), 21.0);
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
