//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA, kernel approximations, and discriminant analysis all need the
//! eigensystem of small symmetric matrices (dimension = feature count, which
//! the FE pipeline keeps modest). Jacobi is simple, numerically robust, and
//! produces orthonormal eigenvectors — a good fit for that regime.

use crate::{LinalgError, Matrix, Result};

/// Eigenvalues and eigenvectors of a symmetric matrix, sorted by descending
/// eigenvalue.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Column `i` of this matrix is the eigenvector for `values[i]`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of symmetric `a` using cyclic Jacobi
/// rotations.
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NoConvergence`] if the off-diagonal mass does not vanish
/// within the sweep cap (which does not happen for genuinely symmetric
/// matrices of the sizes used here).
pub fn symmetric_eigen(a: &Matrix) -> Result<EigenDecomposition> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if n == 0 {
        return Ok(EigenDecomposition {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;

    for sweep in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j).abs();
            }
        }
        if off < 1e-12 {
            return Ok(sorted(m, v, n));
        }
        let _ = sweep;

        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // One last convergence check after the final sweep.
    let mut off = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            off += m.get(i, j).abs();
        }
    }
    if off < 1e-8 {
        Ok(sorted(m, v, n))
    } else {
        Err(LinalgError::NoConvergence {
            iterations: max_sweeps,
        })
    }
}

fn sorted(m: Matrix, v: Matrix, n: usize) -> EigenDecomposition {
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap_or(std::cmp::Ordering::Equal));

    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    EigenDecomposition { values, vectors }
}

/// Returns the top-`k` principal directions (columns) of the symmetric matrix
/// `a`, i.e. the eigenvectors with the largest eigenvalues.
pub fn top_k_eigenvectors(a: &Matrix, k: usize) -> Result<(Vec<f64>, Matrix)> {
    let eig = symmetric_eigen(a)?;
    let n = a.rows();
    let k = k.min(n);
    let cols: Vec<usize> = (0..k).collect();
    Ok((eig.values[..k].to_vec(), eig.vectors.select_cols(&cols)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0])
            .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2_eigensystem() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = Matrix::from_vec(
            3,
            3,
            vec![4.0, 1.0, 0.5, 1.0, 3.0, -0.2, 0.5, -0.2, 2.0],
        )
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        for k in 0..3 {
            let vk = e.vectors.col(k);
            let av = a.matvec(&vk).unwrap();
            for i in 0..3 {
                assert!(
                    (av[i] - e.values[k] * vk[i]).abs() < 1e-9,
                    "A v != lambda v at ({k},{i})"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_vec(
            3,
            3,
            vec![5.0, 2.0, 1.0, 2.0, 4.0, 0.5, 1.0, 0.5, 3.0],
        )
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(&e.vectors.col(i), &e.vectors.col(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                2.0, 0.3, 0.1, 0.0, 0.3, 1.5, -0.2, 0.4, 0.1, -0.2, 3.0, 0.2, 0.0, 0.4, 0.2, 2.5,
            ],
        )
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..4).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn top_k_truncates() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0])
            .unwrap();
        let (vals, vecs) = top_k_eigenvectors(&a, 2).unwrap();
        assert_eq!(vals, vec![3.0, 2.0]);
        assert_eq!(vecs.shape(), (3, 2));
    }

    #[test]
    fn rejects_non_square() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix_is_ok() {
        let e = symmetric_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }
}
