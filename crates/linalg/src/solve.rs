//! Linear solvers: Cholesky for symmetric positive-definite systems and LU
//! with partial pivoting for general square systems.

use crate::{LinalgError, Matrix, Result};

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// `A` must be square, symmetric, and positive definite (within a small
/// tolerance); otherwise [`LinalgError::Singular`] is returned. Only the lower
/// triangle of `A` is read.
pub fn cholesky_decompose(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 1e-14 {
                    return Err(LinalgError::Singular);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then
/// backward substitution).
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = l.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            context: format!("cholesky_solve rhs len {} for {}x{}", b.len(), n, n),
        });
    }
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        let row = l.row(i);
        for (k, yk) in y.iter().enumerate().take(i) {
            sum -= row[k] * yk;
        }
        y[i] = sum / row[i];
    }
    // Backward: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for (k, xk) in x.iter().enumerate().skip(i + 1) {
            sum -= l.get(k, i) * xk;
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

/// Solves the SPD system `A x = b` via Cholesky; adds `ridge` to the diagonal
/// first (0.0 for none), which is how callers regularize near-singular normal
/// equations.
pub fn solve_spd(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
    let n = a.rows();
    let mut reg = a.clone();
    if ridge != 0.0 {
        for i in 0..n {
            let v = reg.get(i, i) + ridge;
            reg.set(i, i, v);
        }
    }
    let l = cholesky_decompose(&reg)?;
    cholesky_solve(&l, b)
}

/// Solves `A x = b` for general square `A` using LU decomposition with
/// partial pivoting. Returns [`LinalgError::Singular`] when a pivot collapses.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            context: format!("lu_solve rhs len {} for {}x{}", b.len(), n, n),
        });
    }
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot: find the largest magnitude entry in this column.
        let mut pivot_row = col;
        let mut pivot_val = lu.get(col, col).abs();
        for r in col + 1..n {
            let v = lu.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-13 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = lu.get(col, c);
                lu.set(col, c, lu.get(pivot_row, c));
                lu.set(pivot_row, c, tmp);
            }
            perm.swap(col, pivot_row);
            x.swap(col, pivot_row);
        }
        let pivot = lu.get(col, col);
        for r in col + 1..n {
            let factor = lu.get(r, col) / pivot;
            lu.set(r, col, factor);
            if factor == 0.0 {
                continue;
            }
            for c in col + 1..n {
                let v = lu.get(r, c) - factor * lu.get(col, c);
                lu.set(r, c, v);
            }
        }
    }

    // Forward substitution with implicit unit diagonal.
    for i in 1..n {
        let mut sum = x[i];
        let row = lu.row(i);
        for (k, xk) in x.iter().enumerate().take(i) {
            sum -= row[k] * xk;
        }
        x[i] = sum;
    }
    // Backward substitution.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for (k, xk) in x.iter().enumerate().skip(i + 1) {
            sum -= lu.get(i, k) * xk;
        }
        x[i] = sum / lu.get(i, i);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    fn spd_matrix() -> Matrix {
        // A = Bᵀ B + I is SPD for any B.
        let b = Matrix::from_vec(3, 3, vec![1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.0, 1.0, 1.0])
            .unwrap();
        let mut a = b.gram();
        for i in 0..3 {
            let v = a.get(i, i) + 1.0;
            a.set(i, i, v);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd_matrix();
        let l = cholesky_decompose(&a).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        let a = spd_matrix();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let l = cholesky_decompose(&a).unwrap();
        let x = cholesky_solve(&l, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert_eq!(cholesky_decompose(&a), Err(LinalgError::Singular));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            cholesky_decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_spd_with_ridge_handles_singular() {
        // Rank-deficient Gram matrix becomes solvable with ridge.
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(solve_spd(&a, &[1.0, 1.0], 0.0).is_err());
        let x = solve_spd(&a, &[1.0, 1.0], 1e-3).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lu_solves_general_system() {
        let a = Matrix::from_vec(3, 3, vec![0.0, 2.0, 1.0, 1.0, -1.0, 0.0, 3.0, 0.0, -2.0])
            .unwrap();
        let x_true = vec![2.0, -1.0, 4.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lu_solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn lu_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(lu_solve(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn lu_pivots_on_zero_diagonal() {
        // Leading zero forces a pivot swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = lu_solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_spd() {
        // Deterministic pseudo-random SPD check without external RNG.
        let mut vals = Vec::with_capacity(25);
        let mut state = 42u64;
        for _ in 0..25 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            vals.push(((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5);
        }
        let b = Matrix::from_vec(5, 5, vals).unwrap();
        let mut a = b.gram();
        for i in 0..5 {
            let v = a.get(i, i) + 0.5;
            a.set(i, i, v);
        }
        let rhs: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let x = solve_spd(&a, &rhs, 0.0).unwrap();
        for (i, r) in rhs.iter().enumerate() {
            let got = dot(a.row(i), &x);
            assert!((got - r).abs() < 1e-8);
        }
    }
}
