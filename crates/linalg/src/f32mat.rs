//! Single-precision dense matrix storage.
//!
//! [`MatrixF32`] is a bandwidth-lean sibling of [`Matrix`](crate::Matrix):
//! same row-major layout, half the bytes per cell. It is *storage*, not a
//! compute substrate — the numeric stack stays `f64`; `MatrixF32` exists for
//! memory-bound paths (histogram binning, tree prediction, out-of-core
//! staging) where halving raw-matrix traffic matters more than the last
//! ~7 decimal digits. Values are widened to `f64` on read.

use crate::Matrix;

/// Row-major `f32` matrix. See the module docs for when to use it.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Builds from a raw row-major buffer; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Option<MatrixF32> {
        (data.len() == rows * cols).then_some(MatrixF32 { rows, cols, data })
    }

    /// Narrows an `f64` matrix to `f32` storage (one pass, values rounded to
    /// nearest representable `f32`).
    pub fn from_matrix(m: &Matrix) -> MatrixF32 {
        MatrixF32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.data().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Widens back to an `f64` matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| v as f64).collect(),
        )
        .expect("shape preserved")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell `(r, c)` widened to `f64`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c] as f64
    }

    /// Row `r` as a contiguous `f32` slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_f32() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.5, -3.0, 0.125, 7.0, -0.5]).unwrap();
        let f = MatrixF32::from_matrix(&m);
        assert_eq!(f.rows(), 2);
        assert_eq!(f.cols(), 3);
        // Dyadic values survive the narrowing exactly.
        assert_eq!(f.to_matrix().data(), m.data());
        assert_eq!(f.get(1, 0), 0.125);
        assert_eq!(f.row(0), &[1.0f32, 2.5, -3.0]);
    }

    #[test]
    fn narrowing_loses_at_most_f32_precision() {
        let v = 0.1f64 + 1e-12;
        let m = Matrix::from_vec(1, 1, vec![v]).unwrap();
        let f = MatrixF32::from_matrix(&m);
        assert!((f.get(0, 0) - v).abs() < 1e-7);
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(MatrixF32::from_vec(2, 2, vec![0.0; 3]).is_none());
        assert!(MatrixF32::from_vec(2, 2, vec![0.0; 4]).is_some());
    }
}
