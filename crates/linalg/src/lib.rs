//! Minimal dense linear-algebra substrate for VolcanoML.
//!
//! The AutoML stack above this crate needs a small, predictable set of
//! numerical primitives: a row-major dense [`Matrix`], linear solvers
//! (Cholesky for SPD systems such as ridge regression normal equations, LU
//! with partial pivoting for general square systems), a symmetric
//! eigendecomposition (cyclic Jacobi, used by PCA and discriminant analysis),
//! and descriptive statistics. Everything is implemented from scratch so the
//! reproduction controls every substrate end to end.
//!
//! Design notes (following the Rust performance-book idioms):
//! - storage is a single `Vec<f64>` per matrix, row-major, so row slices are
//!   contiguous and iteration is cache-friendly;
//! - hot loops avoid bounds checks by slicing rows once;
//! - all fallible operations return [`LinalgError`] rather than panicking.

pub mod eigen;
pub mod f32mat;
pub mod matrix;
pub mod solve;
pub mod stats;

pub use eigen::{symmetric_eigen, EigenDecomposition};
pub use f32mat::MatrixF32;
pub use matrix::Matrix;
pub use solve::{cholesky_decompose, cholesky_solve, lu_solve, solve_spd};

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected/actual shapes.
        context: String,
    },
    /// A matrix required to be square was not.
    NotSquare {
        /// Observed number of rows.
        rows: usize,
        /// Observed number of columns.
        cols: usize,
    },
    /// Decomposition failed because the matrix is singular (or not positive
    /// definite for Cholesky) within numerical tolerance.
    Singular,
    /// An iterative routine failed to converge within its iteration cap.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular or not positive definite"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} steps")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for linalg results.
pub type Result<T> = std::result::Result<T, LinalgError>;
