//! The joint block (§3.3.1): optimizes its whole subspace with one engine —
//! SMAC-style BO by default, random search or MFES-HB/Hyperband/Successive
//! Halving as alternatives.

use crate::block::{Assignment, BestSolution, BuildingBlock, LossInterval};
use crate::eu::{eu_interval, eui};
use crate::evaluator::{Evaluator, TrialTag};
use crate::spaces::SpaceDef;
use crate::Result;
use std::sync::Arc;
use volcanoml_bo::{
    ConfigSpace, Configuration, Hyperband, MfesHb, ObserveEvent, RandomSearch, Smac,
    SuccessiveHalving, Suggest,
};
use volcanoml_obs::{span, EventFields, Tracer};

/// Canonical bitwise rendering of a configuration for state snapshots: one
/// 16-hex-digit word per value, `-` for inactive conditionals.
fn config_bits(c: &Configuration) -> String {
    c.values
        .iter()
        .map(|v| match v {
            Some(x) => format!("{:016x}", x.to_bits()),
            None => "-".to_string(),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Scheduling attribution for a freshly suggested trial: the engine's
/// in-flight `(rung, bracket)` when it has a bracket schedule, else
/// [`TrialTag::NONE`]. Must run *before* `observe` (observing clears the
/// in-flight entry).
fn trial_tag(engine: &dyn Suggest, config: &Configuration, fidelity: f64) -> TrialTag {
    engine
        .in_flight_meta(config, fidelity)
        .map_or(TrialTag::NONE, |(rung, bracket)| TrialTag {
            rung: rung as i64,
            bracket: bracket as i64,
        })
}

/// Which engine a joint block runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JointEngine {
    /// SMAC-style Bayesian optimization (the default).
    Bo,
    /// Uniform random search.
    Random,
    /// Successive Halving over subsampling fidelities.
    SuccessiveHalving,
    /// Hyperband.
    Hyperband,
    /// MFES-HB (multi-fidelity ensemble surrogate Hyperband).
    MfesHb,
}

impl JointEngine {
    fn build(self, space: ConfigSpace, seed: u64) -> Box<dyn Suggest> {
        match self {
            JointEngine::Bo => Box::new(Smac::new(space, seed)),
            JointEngine::Random => Box::new(RandomSearch::new(space, seed)),
            JointEngine::SuccessiveHalving => {
                Box::new(SuccessiveHalving::new(space, 9, 1.0 / 9.0, 3, seed))
            }
            JointEngine::Hyperband => Box::new(Hyperband::new(space, 1.0 / 9.0, 3, seed)),
            JointEngine::MfesHb => Box::new(MfesHb::new(space, 1.0 / 9.0, 3, seed)),
        }
    }

    /// Short name for plan rendering.
    pub fn name(self) -> &'static str {
        match self {
            JointEngine::Bo => "bo",
            JointEngine::Random => "random",
            JointEngine::SuccessiveHalving => "sh",
            JointEngine::Hyperband => "hyperband",
            JointEngine::MfesHb => "mfes-hb",
        }
    }
}

/// A leaf block running one optimizer over its own `ConfigSpace`.
pub struct JointBlock {
    label: String,
    engine_kind: JointEngine,
    engine: Box<dyn Suggest>,
    /// Variables resolved at plan-compile time (e.g. `algorithm = 3` inside
    /// a conditioning child). Merged into every evaluation and result.
    context: Assignment,
    /// Variables pinned at runtime via `set_fixed` (alternating siblings).
    fixed: Assignment,
    /// Meta-learning seed configurations evaluated before the engine runs.
    seed_queue: Vec<Configuration>,
    best: Option<BestSolution>,
    trajectory: Vec<f64>,
    evaluations: usize,
    /// Whether the engine's observe hook has been wired to a tracer.
    hook_installed: bool,
}

impl JointBlock {
    /// Creates a joint block over `space` with pinned `context` variables.
    pub fn new(
        label: impl Into<String>,
        space: ConfigSpace,
        engine: JointEngine,
        context: Assignment,
        seed: u64,
    ) -> JointBlock {
        JointBlock {
            label: label.into(),
            engine_kind: engine,
            engine: engine.build(space, seed),
            context,
            fixed: Assignment::new(),
            seed_queue: Vec::new(),
            best: None,
            trajectory: Vec::new(),
            evaluations: 0,
            hook_installed: false,
        }
    }

    /// Wires the engine's observe hook to an enabled tracer (once): every
    /// real optimizer observation becomes a `bo-observe` trace event,
    /// parented to whatever span is open when the engine observes.
    fn ensure_observe_hook(&mut self, tracer: &Arc<Tracer>) {
        if self.hook_installed || !tracer.enabled() {
            return;
        }
        self.hook_installed = true;
        let t = Arc::clone(tracer);
        self.engine.set_observe_hook(Arc::new(move |e: &ObserveEvent| {
            t.event(
                "bo-observe",
                EventFields {
                    fidelity: e.fidelity,
                    loss: e.loss,
                    detail: format!(
                        "n={} incumbent={:.6} cost={:.4}",
                        e.n_observations, e.incumbent_loss, e.cost
                    ),
                    ..EventFields::default()
                },
            );
        }));
    }

    /// Queues warm-start configurations (from meta-learning) that will be
    /// evaluated before the engine's own suggestions. Assignments may cover
    /// more variables than this block's space; extras are ignored.
    pub fn push_seed_assignments(&mut self, assignments: &[Assignment]) {
        for a in assignments {
            let cfg = self.engine.space().from_map(a);
            self.seed_queue.push(cfg);
        }
        // Evaluate in push order.
        self.seed_queue.reverse();
    }

    /// The block's own search space.
    pub fn space(&self) -> &ConfigSpace {
        self.engine.space()
    }

    fn merged(&self, own: &Assignment) -> Assignment {
        let mut merged = self.context.clone();
        for (k, v) in &self.fixed {
            merged.insert(k.clone(), *v);
        }
        for (k, v) in own {
            merged.insert(k.clone(), *v);
        }
        merged
    }

    /// Feeds one completed trial back into the engine and incumbent state —
    /// shared by the serial and batch paths.
    fn record_outcome(
        &mut self,
        config: Configuration,
        fidelity: f64,
        assignment: Assignment,
        loss: f64,
        cost: f64,
    ) {
        self.engine.observe(config, fidelity, loss, cost);
        self.evaluations += 1;
        if fidelity >= 1.0 - 1e-9 && loss.is_finite() {
            let improved = self.best.as_ref().is_none_or(|b| loss < b.loss);
            if improved {
                self.best = Some(BestSolution { assignment, loss });
            }
            let cur = self.best.as_ref().map(|b| b.loss).unwrap_or(loss);
            self.trajectory.push(cur);
        }
    }
}

impl BuildingBlock for JointBlock {
    fn do_next(&mut self, evaluator: &Evaluator) -> Result<()> {
        let tracer = evaluator.tracer();
        self.ensure_observe_hook(&tracer);
        let mut pull = span(&tracer, "pull", &self.label, "");
        let (config, fidelity) = match self.seed_queue.pop() {
            Some(cfg) => {
                pull.set_detail("seed");
                (cfg, 1.0)
            }
            None => {
                let mut s = span(&tracer, "suggest", &self.label, "");
                s.set_detail(format!("engine={}", self.engine_kind.name()));
                self.engine.suggest()
            }
        };
        // Scheduling attribution must be read before `observe` clears the
        // engine's in-flight entry.
        let tag = trial_tag(self.engine.as_ref(), &config, fidelity);
        let own = self.engine.space().to_map(&config);
        let assignment = self.merged(&own);
        let outcome = evaluator.evaluate_tagged(&assignment, fidelity, tag);
        pull.set_fidelity(fidelity);
        pull.set_loss(outcome.loss);
        pull.set_cost(outcome.cost);
        self.record_outcome(config, fidelity, assignment, outcome.loss, outcome.cost);
        Ok(())
    }

    /// Batch path: seeds first, then the engine's batch suggestion
    /// (constant-liar for SMAC), all evaluated concurrently on the pool.
    fn do_next_batch(
        &mut self,
        evaluator: &Evaluator,
        pool: &volcanoml_exec::ExecPool,
        k: usize,
    ) -> Result<()> {
        if k == 0 {
            return Ok(());
        }
        let tracer = evaluator.tracer();
        self.ensure_observe_hook(&tracer);
        let mut pull = span(&tracer, "pull", &self.label, "");
        pull.set_detail(format!("batch k={k}"));
        let mut picks: Vec<(Configuration, f64)> = Vec::with_capacity(k);
        while picks.len() < k {
            match self.seed_queue.pop() {
                Some(cfg) => picks.push((cfg, 1.0)),
                None => break,
            }
        }
        if picks.len() < k {
            let mut s = span(&tracer, "suggest", &self.label, "");
            s.set_detail(format!(
                "engine={} batch k={}",
                self.engine_kind.name(),
                k - picks.len()
            ));
            picks.extend(self.engine.suggest_batch(k - picks.len()));
        }
        let trials: Vec<(Assignment, f64, TrialTag)> = picks
            .iter()
            .map(|(cfg, fidelity)| {
                let own = self.engine.space().to_map(cfg);
                let tag = trial_tag(self.engine.as_ref(), cfg, *fidelity);
                (self.merged(&own), *fidelity, tag)
            })
            .collect();
        let outcomes = evaluator.evaluate_batch_tagged(pool, &trials);
        let mut batch_cost = 0.0;
        let mut batch_best = f64::INFINITY;
        for (((config, fidelity), (assignment, _, _)), outcome) in
            picks.into_iter().zip(trials).zip(outcomes)
        {
            batch_cost += outcome.cost;
            batch_best = batch_best.min(outcome.loss);
            self.record_outcome(config, fidelity, assignment, outcome.loss, outcome.cost);
        }
        pull.set_loss(batch_best);
        pull.set_cost(batch_cost);
        Ok(())
    }

    fn current_best(&self) -> Option<BestSolution> {
        self.best.clone()
    }

    fn own_best(&self) -> Option<Assignment> {
        let best_cfg = self.engine.history().best()?.config.clone();
        Some(self.engine.space().to_map(&best_cfg))
    }

    fn expected_utility(&self, k: usize) -> LossInterval {
        eu_interval(&self.trajectory, k, 0.0)
    }

    fn expected_utility_improvement(&self) -> f64 {
        eui(&self.trajectory, 4)
    }

    fn set_cost_aware(&mut self, enabled: bool) {
        self.engine.set_cost_aware(enabled);
    }

    /// Re-derives this leaf's `ConfigSpace` from the grown `space` — its
    /// current parameter set plus whichever `new_vars` are not pinned in the
    /// context — and extends the live engine in place. Widened choice lists
    /// need no mention in `new_vars`: the recompiled domains pick them up.
    fn grow(&mut self, space: &SpaceDef, new_vars: &[String]) -> Result<()> {
        let mut include: Vec<String> = self
            .engine
            .space()
            .params()
            .iter()
            .map(|p| p.name.clone())
            .collect();
        for name in new_vars {
            if !include.contains(name) && !self.context.contains_key(name) {
                include.push(name.clone());
            }
        }
        let cs = space.compile_subspace(&include, &self.context)?;
        self.engine.grow_space(cs);
        Ok(())
    }

    fn set_fixed(&mut self, fixed: &Assignment) {
        for (k, v) in fixed {
            self.fixed.insert(k.clone(), *v);
        }
        // The incumbent's recorded assignment must reflect the new context
        // for downstream consumers; its loss stays (stale context losses are
        // the alternating block's accepted approximation).
        if let Some(best) = &mut self.best {
            for (k, v) in fixed {
                best.assignment.insert(k.clone(), *v);
            }
        }
    }

    fn trajectory(&self) -> Vec<f64> {
        self.trajectory.clone()
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn describe(&self, indent: usize, out: &mut String) {
        out.push_str(&" ".repeat(indent));
        out.push_str(&format!(
            "Joint[{}] engine={} vars={} evals={}\n",
            self.label,
            self.engine_kind.name(),
            self.engine.space().len(),
            self.evaluations
        ));
    }

    fn capture_state(&self, path: &str, out: &mut Vec<String>) {
        out.push(format!(
            "{path} joint engine={} evaluations={} seeds_pending={}",
            self.engine_kind.name(),
            self.evaluations,
            self.seed_queue.len()
        ));
        if let Some(best) = &self.best {
            out.push(format!("{path} joint best_loss={:016x}", best.loss.to_bits()));
        }
        let traj = self
            .trajectory
            .iter()
            .map(|l| format!("{:016x}", l.to_bits()))
            .collect::<Vec<_>>()
            .join(",");
        out.push(format!("{path} joint trajectory={traj}"));
        // History rows drive every future suggestion — including, in
        // cost-aware mode, the cost surrogate and promotion ranking — so
        // cost is pinned bitwise alongside loss. This is safe for replay:
        // cached trials now resolve to their memoized true cost on both the
        // live and the replayed path (the journal row's cost-0 accounting
        // is an accounting convention, not what the optimizer observes).
        for (i, obs) in self.engine.history().observations().iter().enumerate() {
            out.push(format!(
                "{path} joint history[{i}] fidelity={:016x} loss={:016x} cost={:016x} config={}",
                obs.fidelity.to_bits(),
                obs.loss.to_bits(),
                obs.cost.to_bits(),
                config_bits(&obs.config)
            ));
        }
        self.engine
            .capture_scheduler_state(&format!("{path} engine"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::{SpaceDef, SpaceTier};
    use volcanoml_data::synthetic::{make_classification, ClassificationSpec};
    use volcanoml_data::{Metric, Task};

    fn setup() -> (Evaluator, SpaceDef) {
        let space = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let d = make_classification(
            &ClassificationSpec {
                n_samples: 220,
                n_features: 6,
                n_informative: 4,
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.5,
                flip_y: 0.02,
                weights: Vec::new(),
            },
            3,
        );
        let ev = Evaluator::new(space.clone(), &d, Metric::BalancedAccuracy, 0).unwrap();
        (ev, space)
    }

    fn full_joint(space: &SpaceDef, engine: JointEngine) -> JointBlock {
        let cs = space
            .compile_subspace(&space.var_names(), &Assignment::new())
            .unwrap();
        JointBlock::new("full", cs, engine, Assignment::new(), 0)
    }

    #[test]
    fn joint_block_improves_over_iterations() {
        let (ev, space) = setup();
        let mut block = full_joint(&space, JointEngine::Bo);
        for _ in 0..12 {
            block.do_next(&ev).unwrap();
        }
        let best = block.current_best().expect("has a best");
        assert!(best.loss < 0.5, "loss {}", best.loss);
        assert!(best.assignment.contains_key("algorithm"));
        let traj = block.trajectory();
        assert!(!traj.is_empty());
        assert!(traj.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn context_is_merged_into_results() {
        let (ev, space) = setup();
        let mut fixed = Assignment::new();
        fixed.insert("algorithm".to_string(), 1.0);
        let cs = space.compile_subspace(&space.var_names(), &fixed).unwrap();
        let mut block = JointBlock::new("rf-only", cs, JointEngine::Bo, fixed, 0);
        for _ in 0..4 {
            block.do_next(&ev).unwrap();
        }
        let best = block.current_best().unwrap();
        assert_eq!(best.assignment.get("algorithm"), Some(&1.0));
    }

    #[test]
    fn set_fixed_updates_future_evaluations() {
        let (ev, space) = setup();
        // Block over FE vars only; algorithm comes from set_fixed.
        let fe_vars: Vec<String> = space
            .vars
            .iter()
            .filter(|v| v.group == crate::spaces::VarGroup::Fe)
            .map(|v| v.name.clone())
            .collect();
        let cs = space.compile_subspace(&fe_vars, &Assignment::new()).unwrap();
        let mut block = JointBlock::new("fe", cs, JointEngine::Random, Assignment::new(), 0);
        let mut ctx = space.defaults();
        ctx.insert("algorithm".to_string(), 2.0);
        block.set_fixed(&ctx);
        block.do_next(&ev).unwrap();
        let best = block.current_best().unwrap();
        assert_eq!(best.assignment.get("algorithm"), Some(&2.0));
    }

    #[test]
    fn seed_assignments_are_evaluated_first() {
        let (ev, space) = setup();
        let mut block = full_joint(&space, JointEngine::Bo);
        let mut seed = space.defaults();
        seed.insert("algorithm".to_string(), 1.0);
        block.push_seed_assignments(&[seed]);
        block.do_next(&ev).unwrap();
        let best = block.current_best().unwrap();
        assert_eq!(best.assignment.get("algorithm"), Some(&1.0));
    }

    #[test]
    fn own_best_excludes_context() {
        let (ev, space) = setup();
        let mut fixed = Assignment::new();
        fixed.insert("algorithm".to_string(), 0.0);
        let cs = space.compile_subspace(&space.var_names(), &fixed).unwrap();
        let mut block = JointBlock::new("x", cs, JointEngine::Random, fixed, 0);
        block.do_next(&ev).unwrap();
        let own = block.own_best().unwrap();
        assert!(!own.contains_key("algorithm"));
    }

    #[test]
    fn mfes_engine_runs_mixed_fidelities() {
        let (ev, space) = setup();
        let mut block = full_joint(&space, JointEngine::MfesHb);
        for _ in 0..20 {
            block.do_next(&ev).unwrap();
        }
        // Trajectory only counts full-fidelity evaluations.
        assert!(block.trajectory().len() < 20);
        assert!(block.evaluations() == 20);
    }
}
