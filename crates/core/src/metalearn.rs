//! Meta-learning (§4 "Further Optimization with Meta-learning"): dataset
//! meta-features plus a k-NN meta-base that recommends warm-start
//! configurations from previous runs on similar datasets — the same
//! mechanism auto-sklearn ships.

use crate::block::Assignment;
use volcanoml_data::{Dataset, Task};
use volcanoml_linalg::stats;

/// Number of meta-features produced by [`meta_features`].
pub const N_META_FEATURES: usize = 10;

/// Computes a fixed-length meta-feature vector for a dataset:
/// `[log n, log d, classes, class entropy, imbalance, mean |skew|,
///   mean kurtosis, categorical fraction, missing fraction, target spread]`.
pub fn meta_features(d: &Dataset) -> Vec<f64> {
    let n = d.n_samples() as f64;
    let dim = d.n_features() as f64;
    let counts = d.class_counts();
    let (classes, entropy, imbalance) = if d.task == Task::Classification {
        let total: usize = counts.iter().sum();
        let entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total.max(1) as f64;
                -p * p.log2()
            })
            .sum();
        let imb = d.imbalance_ratio();
        (
            d.n_classes as f64,
            entropy,
            if imb.is_finite() { imb.min(100.0) } else { 100.0 },
        )
    } else {
        (0.0, 0.0, 1.0)
    };
    let mut skew_sum = 0.0;
    let mut kurt_sum = 0.0;
    let mut finite_cols = 0usize;
    for c in 0..d.n_features() {
        let col: Vec<f64> = d.x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
        if col.len() > 3 {
            skew_sum += stats::skewness(&col).abs();
            kurt_sum += stats::kurtosis(&col);
            finite_cols += 1;
        }
    }
    let denom = finite_cols.max(1) as f64;
    let cat_fraction = d.categorical_columns().len() as f64 / dim.max(1.0);
    let missing = d.x.data().iter().filter(|v| v.is_nan()).count() as f64
        / (n * dim).max(1.0);
    let target_spread = if d.task == Task::Regression {
        stats::std_dev(&d.y)
    } else {
        0.0
    };
    vec![
        n.max(1.0).ln(),
        dim.max(1.0).ln(),
        classes,
        entropy,
        imbalance,
        skew_sum / denom,
        (kurt_sum / denom).clamp(-10.0, 10.0),
        cat_fraction,
        missing,
        target_spread.min(100.0),
    ]
}

/// One remembered run: where it happened and what worked.
#[derive(Debug, Clone)]
pub struct MetaEntry {
    /// Dataset name (for reporting).
    pub dataset: String,
    /// Meta-feature vector of the dataset.
    pub features: Vec<f64>,
    /// Best assignments found there, best first.
    pub best_assignments: Vec<Assignment>,
}

/// A collection of remembered runs with k-NN recommendation.
#[derive(Debug, Clone, Default)]
pub struct MetaBase {
    entries: Vec<MetaEntry>,
}

impl MetaBase {
    /// Creates an empty meta-base.
    pub fn new() -> Self {
        MetaBase::default()
    }

    /// Records a run's outcome.
    pub fn record(&mut self, dataset: &Dataset, best_assignments: Vec<Assignment>) {
        self.entries.push(MetaEntry {
            dataset: dataset.name.clone(),
            features: meta_features(dataset),
            best_assignments,
        });
    }

    /// Number of remembered runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries accessor (reports/tests).
    pub fn entries(&self) -> &[MetaEntry] {
        &self.entries
    }

    /// Recommends up to `max_configs` warm-start assignments from the
    /// `k` most similar remembered datasets (standardized Euclidean
    /// distance over meta-features). Entries recorded for the *same* dataset
    /// name are excluded (leave-one-out semantics for benchmarks).
    pub fn recommend(&self, dataset: &Dataset, k: usize, max_configs: usize) -> Vec<Assignment> {
        if self.entries.is_empty() || max_configs == 0 {
            return Vec::new();
        }
        let query = meta_features(dataset);
        // Standardize each feature across entries + query for a fair metric.
        let dims = query.len();
        let mut all: Vec<&[f64]> = self.entries.iter().map(|e| e.features.as_slice()).collect();
        all.push(&query);
        let mut means = vec![0.0; dims];
        let mut stds = vec![0.0; dims];
        for j in 0..dims {
            let col: Vec<f64> = all.iter().map(|f| f[j]).collect();
            means[j] = stats::mean(&col);
            let s = stats::std_dev(&col);
            stds[j] = if s < 1e-9 { 1.0 } else { s };
        }
        let dist = |f: &[f64]| -> f64 {
            f.iter()
                .zip(query.iter())
                .zip(means.iter().zip(stds.iter()))
                .map(|((a, b), (m, s))| {
                    let da = (a - m) / s;
                    let db = (b - m) / s;
                    (da - db) * (da - db)
                })
                .sum()
        };
        let mut scored: Vec<(f64, &MetaEntry)> = self
            .entries
            .iter()
            .filter(|e| e.dataset != dataset.name)
            .map(|e| (dist(&e.features), e))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut out = Vec::new();
        'outer: for (_, entry) in scored.into_iter().take(k.max(1)) {
            for a in &entry.best_assignments {
                out.push(a.clone());
                if out.len() >= max_configs {
                    break 'outer;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volcanoml_data::synthetic::{
        make_classification, make_regression, ClassificationSpec, RegressionSpec,
    };

    fn cls(seed: u64, n: usize, d: usize) -> Dataset {
        make_classification(
            &ClassificationSpec {
                n_samples: n,
                n_features: d,
                n_informative: d.min(4),
                n_redundant: 0,
                n_classes: 2,
                class_sep: 1.0,
                flip_y: 0.0,
                weights: Vec::new(),
            },
            seed,
        )
    }

    #[test]
    fn meta_features_have_fixed_length() {
        let d = cls(0, 100, 5);
        assert_eq!(meta_features(&d).len(), N_META_FEATURES);
        let r = make_regression(&RegressionSpec::default(), 0);
        assert_eq!(meta_features(&r).len(), N_META_FEATURES);
    }

    #[test]
    fn meta_features_are_finite() {
        let d = volcanoml_data::synthetic::inject_missing(&cls(1, 150, 6), 0.2, 2);
        assert!(meta_features(&d).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn similar_datasets_are_closer() {
        let mut base = MetaBase::new();
        let small_a = cls(1, 100, 5);
        let small_b = cls(2, 110, 5);
        let big = cls(3, 2000, 60);
        let mut good_small = Assignment::new();
        good_small.insert("algorithm".to_string(), 1.0);
        let mut good_big = Assignment::new();
        good_big.insert("algorithm".to_string(), 2.0);
        base.record(&small_a, vec![good_small.clone()]);
        base.record(&big, vec![good_big]);
        let rec = base.recommend(&small_b, 1, 2);
        assert_eq!(rec[0].get("algorithm"), Some(&1.0));
    }

    #[test]
    fn same_dataset_is_excluded() {
        let mut base = MetaBase::new();
        let d = cls(5, 100, 5);
        base.record(&d, vec![Assignment::new()]);
        assert!(base.recommend(&d, 3, 5).is_empty());
    }

    #[test]
    fn recommendation_respects_limits() {
        let mut base = MetaBase::new();
        for seed in 0..4 {
            let d = cls(seed, 100 + seed as usize, 5);
            base.record(&d, vec![Assignment::new(), Assignment::new()]);
        }
        let query = cls(99, 105, 5);
        assert_eq!(base.recommend(&query, 2, 3).len(), 3);
        assert!(base.recommend(&query, 2, 0).is_empty());
    }

    #[test]
    fn empty_base_recommends_nothing() {
        let base = MetaBase::new();
        assert!(base.recommend(&cls(0, 50, 3), 5, 5).is_empty());
    }
}
