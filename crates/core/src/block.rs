//! The building-block interface (§3.2 of the paper).
//!
//! Blocks form a tree; `do_next` on the root recursively descends to a leaf
//! and performs (roughly) one pipeline evaluation — the Volcano-style
//! pull-based execution model. All methods mirror the paper's primitives:
//!
//! | paper | here |
//! |---|---|
//! | `do_next!(B)` | [`BuildingBlock::do_next`] |
//! | `get_current_best(B)` | [`BuildingBlock::current_best`] |
//! | `get_eu(B, K)` | [`BuildingBlock::expected_utility`] |
//! | `get_eui(B)` | [`BuildingBlock::expected_utility_improvement`] |
//! | `set_var(B, x̄, c̄)` | [`BuildingBlock::set_fixed`] |

use crate::evaluator::Evaluator;
use crate::spaces::SpaceDef;
use crate::Result;
use std::collections::HashMap;
use volcanoml_exec::ExecPool;

pub use crate::eu::LossInterval;

/// A full or partial variable assignment (name → value).
pub type Assignment = HashMap<String, f64>;

/// The best solution a block has found.
#[derive(Debug, Clone)]
pub struct BestSolution {
    /// Assignment over the block's own variables plus its fixed context.
    pub assignment: Assignment,
    /// Loss achieved by that assignment at full fidelity.
    pub loss: f64,
}

/// One node of a VolcanoML execution plan.
pub trait BuildingBlock {
    /// Advances the optimization by (approximately) one evaluation of the
    /// underlying objective, recursively delegating to child blocks.
    fn do_next(&mut self, evaluator: &Evaluator) -> Result<()>;

    /// Advances the optimization by (approximately) `k` evaluations,
    /// dispatching them onto `pool`'s workers where the block can propose
    /// independent trials. The default falls back to `k` serial `do_next`
    /// calls; blocks with a natural batch decomposition (joint leaves via
    /// constant-liar batch suggestion, conditioning via round-robin arm
    /// scheduling, alternating via one scheduling decision per batch)
    /// override it.
    fn do_next_batch(&mut self, evaluator: &Evaluator, pool: &ExecPool, k: usize) -> Result<()> {
        let _ = pool;
        for _ in 0..k {
            self.do_next(evaluator)?;
        }
        Ok(())
    }

    /// The best full-fidelity solution found so far, if any.
    fn current_best(&self) -> Option<BestSolution>;

    /// The best assignment restricted to the block's *own* variables
    /// (excluding pinned context) — what an alternating sibling pins via
    /// `set_var`. The default returns the full best assignment.
    fn own_best(&self) -> Option<Assignment> {
        self.current_best().map(|b| b.assignment)
    }

    /// Rising-bandit expected-utility interval given `k` more iterations.
    fn expected_utility(&self, k: usize) -> LossInterval;

    /// Rotting-bandit expected utility improvement (mean recent improvement).
    fn expected_utility_improvement(&self) -> f64;

    /// Pins context variables (the paper's `set_var`): the block must use
    /// these values for variables outside its own subspace from now on.
    fn set_fixed(&mut self, fixed: &Assignment);

    /// Enables cost-aware scheduling in this block's subtree: joint leaves
    /// forward to their engine (EI-per-second acquisition, loss-per-second
    /// rung promotion), interior blocks forward to every child. Must be
    /// called before the first `do_next` — engines do not support switching
    /// modes mid-run. The default ignores the call (leaf engines without a
    /// cost model are legitimately cost-blind).
    fn set_cost_aware(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Grows this block's subtree to cover an expanded search space:
    /// interior blocks forward to every child (extending their variable
    /// partitions with the new variables), joint leaves re-derive their
    /// per-block `ConfigSpace` against `space` and extend the live engine
    /// in place, so existing observations stay valid and new variables
    /// backfill defaults. `new_vars` lists the variable names the
    /// expansion appended (widened choice lists need no mention — the
    /// recompiled domains pick them up). Must be called only between a
    /// fully observed batch and the next suggestion. The default ignores
    /// the call (blocks that hold no space of their own).
    fn grow(&mut self, space: &SpaceDef, new_vars: &[String]) -> Result<()> {
        let _ = (space, new_vars);
        Ok(())
    }

    /// The EUI signal used as plateau evidence for incremental space
    /// construction. Interior bandit blocks report the *maximum* EUI over
    /// surviving children — the space has plateaued only once every
    /// surviving arm has. The default is the block's own EUI.
    fn plateau_eui(&self) -> f64 {
        self.expected_utility_improvement()
    }

    /// Best-so-far loss trajectory (one entry per full-fidelity evaluation
    /// this block performed) — the raw signal behind EU/EUI.
    fn trajectory(&self) -> Vec<f64>;

    /// Total evaluations this block (and its children) have triggered.
    fn evaluations(&self) -> usize;

    /// Human-readable tree rendering for reports (one line per node).
    fn describe(&self, indent: usize, out: &mut String);

    /// Appends canonical, bitwise-stable lines describing this block's
    /// search state — incumbents, trajectories, bandit occupancy, engine
    /// scheduler internals — to `out`, each prefixed with `path` (the
    /// block's position in the plan tree). Two blocks that would schedule
    /// identical futures must dump identical lines; crash-resume
    /// verification ([`crate::study::StudyState`]) relies on this to prove
    /// a journal-replayed tree reached exactly the interrupted run's
    /// state. The default captures nothing.
    fn capture_state(&self, path: &str, out: &mut Vec<String>) {
        let _ = (path, out);
    }
}

/// Renders a block tree as a string (the "EXPLAIN" of an execution plan).
pub fn explain(block: &dyn BuildingBlock) -> String {
    let mut out = String::new();
    block.describe(0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-memory block for interface-level tests.
    struct StubBlock {
        losses: Vec<f64>,
        cursor: usize,
        best: Option<f64>,
        fixed: Assignment,
    }

    impl StubBlock {
        fn new(losses: Vec<f64>) -> Self {
            StubBlock {
                losses,
                cursor: 0,
                best: None,
                fixed: Assignment::new(),
            }
        }
    }

    impl BuildingBlock for StubBlock {
        fn do_next(&mut self, _evaluator: &Evaluator) -> Result<()> {
            if self.cursor < self.losses.len() {
                let l = self.losses[self.cursor];
                self.cursor += 1;
                self.best = Some(self.best.map_or(l, |b: f64| b.min(l)));
            }
            Ok(())
        }

        fn current_best(&self) -> Option<BestSolution> {
            self.best.map(|loss| BestSolution {
                assignment: self.fixed.clone(),
                loss,
            })
        }

        fn expected_utility(&self, k: usize) -> LossInterval {
            crate::eu::eu_interval(&self.trajectory(), k, 0.0)
        }

        fn expected_utility_improvement(&self) -> f64 {
            crate::eu::eui(&self.trajectory(), 4)
        }

        fn set_fixed(&mut self, fixed: &Assignment) {
            self.fixed = fixed.clone();
        }

        fn trajectory(&self) -> Vec<f64> {
            let mut best = f64::INFINITY;
            self.losses[..self.cursor]
                .iter()
                .map(|&l| {
                    best = best.min(l);
                    best
                })
                .collect()
        }

        fn evaluations(&self) -> usize {
            self.cursor
        }

        fn describe(&self, indent: usize, out: &mut String) {
            out.push_str(&" ".repeat(indent));
            out.push_str("Stub\n");
        }
    }

    fn evaluator() -> Evaluator {
        let space =
            crate::spaces::SpaceDef::tiered(volcanoml_data::Task::Classification, crate::spaces::SpaceTier::Small);
        let d = volcanoml_data::synthetic::make_classification(
            &volcanoml_data::synthetic::ClassificationSpec::default(),
            0,
        );
        Evaluator::new(space, &d, volcanoml_data::Metric::BalancedAccuracy, 0).unwrap()
    }

    #[test]
    fn stub_block_tracks_best_and_trajectory() {
        let ev = evaluator();
        let mut b = StubBlock::new(vec![0.5, 0.3, 0.4]);
        assert!(b.current_best().is_none());
        for _ in 0..3 {
            b.do_next(&ev).unwrap();
        }
        assert_eq!(b.current_best().unwrap().loss, 0.3);
        assert_eq!(b.trajectory(), vec![0.5, 0.3, 0.3]);
        assert_eq!(b.evaluations(), 3);
    }

    #[test]
    fn explain_renders_tree() {
        let b = StubBlock::new(vec![]);
        assert_eq!(explain(&b), "Stub\n");
    }
}
