//! Assembly of the joint AutoML search space.
//!
//! A [`SpaceDef`] is the *logical* variable list — algorithm selector,
//! per-algorithm hyper-parameters (conditioned on the selector), and FE
//! parameters — from which execution plans carve out per-block
//! [`volcanoml_bo::ConfigSpace`]s. Variable naming convention:
//!
//! - `algorithm` — categorical over the tier's algorithm list;
//! - `alg:<name>:<param>` — hyper-parameter of one algorithm, active iff
//!   `algorithm` selects it;
//! - `fe:<param>` — feature-engineering parameter (conditions between FE
//!   parameters use the same prefix).

use crate::{CoreError, Result};
use std::collections::HashMap;
use volcanoml_bo::{Condition, ConfigSpace, Domain};
use volcanoml_data::Task;
use volcanoml_fe::pipeline::FeSpaceOptions;
use volcanoml_fe::space::{fe_param_defs, fe_param_defs_minimal, FeExpansion, FeParam};
use volcanoml_models::{AlgorithmKind, ParamKind};

/// Which logical part of the space a variable belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarGroup {
    /// The algorithm selector.
    Algorithm,
    /// Hyper-parameter of algorithm `index` in the tier's list.
    Hp(usize),
    /// Feature-engineering parameter.
    Fe,
}

/// One logical search-space variable.
#[derive(Debug, Clone)]
pub struct VarDef {
    /// Fully-qualified name (see module docs).
    pub name: String,
    /// Value domain.
    pub domain: Domain,
    /// Default value.
    pub default: f64,
    /// `Some((parent_name, activating_values))`.
    pub condition: Option<(String, Vec<usize>)>,
    /// Group tag used by plan split rules.
    pub group: VarGroup,
}

/// The paper's three search-space tiers (§5.1: 20 / 29 / 100
/// hyper-parameters; our actual counts are reported by [`SpaceDef::len`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceTier {
    /// Few algorithms, minimal FE.
    Small,
    /// Half the zoo, full FE.
    Medium,
    /// The entire zoo, full FE.
    Large,
}

/// The logical AutoML search space.
#[derive(Debug, Clone)]
pub struct SpaceDef {
    /// Task the space targets.
    pub task: Task,
    /// Algorithms selectable via the `algorithm` variable (index = choice).
    pub algorithms: Vec<AlgorithmKind>,
    /// All variables, parents before children.
    pub vars: Vec<VarDef>,
    /// FE enrichment options (needed to rebuild pipelines from values).
    pub fe_options: FeSpaceOptions,
}

fn param_kind_to_domain(kind: &ParamKind) -> (Domain, f64) {
    match kind {
        ParamKind::Float { lo, hi, default, log } => (
            Domain::Float {
                lo: *lo,
                hi: *hi,
                log: *log,
            },
            *default,
        ),
        ParamKind::Int { lo, hi, default, log } => (
            Domain::Int {
                lo: *lo,
                hi: *hi,
                log: *log,
            },
            *default as f64,
        ),
        ParamKind::Cat { choices, default } => (Domain::Cat { n: choices.len() }, *default as f64),
    }
}

impl SpaceDef {
    /// Builds a space over the given algorithms and FE parameters.
    pub fn build(
        task: Task,
        algorithms: Vec<AlgorithmKind>,
        fe_params: Vec<FeParam>,
        fe_options: FeSpaceOptions,
    ) -> Result<SpaceDef> {
        if algorithms.is_empty() {
            return Err(CoreError::Invalid("no algorithms in space".into()));
        }
        for a in &algorithms {
            if a.task() != task {
                return Err(CoreError::Invalid(format!(
                    "algorithm {} does not solve {:?}",
                    a.name(),
                    task
                )));
            }
        }
        let mut vars = Vec::new();
        vars.push(VarDef {
            name: "algorithm".to_string(),
            domain: Domain::Cat {
                n: algorithms.len(),
            },
            default: 0.0,
            condition: None,
            group: VarGroup::Algorithm,
        });
        for (idx, alg) in algorithms.iter().enumerate() {
            for def in alg.param_defs() {
                let (domain, default) = param_kind_to_domain(&def.kind);
                vars.push(VarDef {
                    name: format!("alg:{}:{}", alg.name(), def.name),
                    domain,
                    default,
                    condition: Some(("algorithm".to_string(), vec![idx])),
                    group: VarGroup::Hp(idx),
                });
            }
        }
        for fe in fe_params {
            let (domain, default) = param_kind_to_domain(&fe.def.kind);
            vars.push(VarDef {
                name: format!("fe:{}", fe.def.name),
                domain,
                default,
                condition: fe
                    .condition
                    .map(|(parent, values)| (format!("fe:{parent}"), values)),
                group: VarGroup::Fe,
            });
        }
        Ok(SpaceDef {
            task,
            algorithms,
            vars,
            fe_options,
        })
    }

    /// The tiered spaces used in the scalability study.
    pub fn tiered(task: Task, tier: SpaceTier) -> SpaceDef {
        use AlgorithmKind::*;
        let algorithms = match (task, tier) {
            (Task::Classification, SpaceTier::Small) => {
                vec![Logistic, RandomForest, Knn]
            }
            (Task::Classification, SpaceTier::Medium) => vec![
                Logistic,
                LinearSvm,
                RandomForest,
                GradientBoosting,
                Knn,
                GaussianNb,
            ],
            (Task::Classification, SpaceTier::Large) => AlgorithmKind::for_task(task),
            (Task::Regression, SpaceTier::Small) => vec![Ridge, RandomForestReg, KnnReg],
            (Task::Regression, SpaceTier::Medium) => vec![
                Ridge,
                Lasso,
                RandomForestReg,
                GradientBoostingReg,
                KnnReg,
                SgdRegressor,
            ],
            (Task::Regression, SpaceTier::Large) => AlgorithmKind::for_task(task),
        };
        let fe_options = FeSpaceOptions::default();
        let fe = match tier {
            SpaceTier::Small => fe_param_defs_minimal(task),
            _ => fe_param_defs(task, &fe_options),
        };
        SpaceDef::build(task, algorithms, fe, fe_options)
            .expect("tiered spaces are internally consistent")
    }

    /// The auto-sklearn-equivalent space (§5.2): the large tier.
    pub fn auto_sklearn_equivalent(task: Task) -> SpaceDef {
        SpaceDef::tiered(task, SpaceTier::Large)
    }

    /// A space with enriched FE (SMOTE and/or embedding stage, §5.3).
    pub fn enriched(task: Task, fe_options: FeSpaceOptions) -> SpaceDef {
        let fe = fe_param_defs(task, &fe_options);
        SpaceDef::build(task, AlgorithmKind::for_task(task), fe, fe_options)
            .expect("enriched spaces are internally consistent")
    }

    /// Number of variables (the paper's "hyper-parameter count").
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variables exist (never for built spaces).
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Variable lookup by name.
    pub fn var(&self, name: &str) -> Option<&VarDef> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Compiles a subset of the variables into a `ConfigSpace`.
    ///
    /// `fixed` maps variable names to pinned values (these are excluded from
    /// the space). Conditions whose parent is pinned are resolved: child
    /// variables inactive under the pinned parent value are dropped, active
    /// ones become unconditional. Conditions whose parent is also in the
    /// subset are preserved.
    pub fn compile_subspace(
        &self,
        include: &[String],
        fixed: &HashMap<String, f64>,
    ) -> Result<ConfigSpace> {
        let mut space = ConfigSpace::new();
        let mut index_of: HashMap<String, usize> = HashMap::new();
        for var in &self.vars {
            if !include.contains(&var.name) || fixed.contains_key(&var.name) {
                continue;
            }
            let condition = match &var.condition {
                None => None,
                Some((parent, values)) => {
                    if let Some(pinned) = fixed.get(parent) {
                        let pv = pinned.round().max(0.0) as usize;
                        if values.contains(&pv) {
                            None // unconditionally active
                        } else {
                            continue; // inactive under the pinned parent
                        }
                    } else if let Some(&pidx) = index_of.get(parent) {
                        Some(Condition {
                            parent: pidx,
                            values: values.clone(),
                        })
                    } else {
                        // Parent excluded but not pinned: treat the child as
                        // unconditional (its activity is governed elsewhere).
                        None
                    }
                }
            };
            let idx = space
                .add_conditional(var.name.clone(), var.domain.clone(), var.default, condition)
                .map_err(CoreError::from)?;
            index_of.insert(var.name.clone(), idx);
        }
        Ok(space)
    }

    /// Applies one FE expansion in place: first widens existing categorical
    /// FE variables with extra trailing choices (existing choice indices are
    /// untouched, so observed values stay valid), then appends the
    /// expansion's new variables at the end of `vars` (preserving the
    /// parents-before-children invariant — earlier variables never move).
    /// Returns the names of the appended variables.
    pub fn apply_fe_expansion(&mut self, exp: &FeExpansion) -> Result<Vec<String>> {
        for (name, extra) in &exp.widen {
            let full = format!("fe:{name}");
            let var = self
                .vars
                .iter_mut()
                .find(|v| v.name == full)
                .ok_or_else(|| {
                    CoreError::Invalid(format!(
                        "expansion {} widens unknown variable {full}",
                        exp.name
                    ))
                })?;
            match &mut var.domain {
                Domain::Cat { n } => *n += extra.len(),
                _ => {
                    return Err(CoreError::Invalid(format!(
                        "expansion {} widens non-categorical {full}",
                        exp.name
                    )))
                }
            }
        }
        let mut added = Vec::new();
        for fe in &exp.params {
            let (domain, default) = param_kind_to_domain(&fe.def.kind);
            let name = format!("fe:{}", fe.def.name);
            if self.var(&name).is_some() {
                return Err(CoreError::Invalid(format!(
                    "expansion {} re-adds variable {name}",
                    exp.name
                )));
            }
            let condition = fe
                .condition
                .clone()
                .map(|(parent, values)| (format!("fe:{parent}"), values));
            if let Some((parent, values)) = &condition {
                match self.var(parent).map(|p| &p.domain) {
                    Some(Domain::Cat { n }) => {
                        if values.iter().any(|v| v >= n) {
                            return Err(CoreError::Invalid(format!(
                                "expansion {}: {name} condition value out of range for {parent}",
                                exp.name
                            )));
                        }
                    }
                    Some(_) => {
                        return Err(CoreError::Invalid(format!(
                            "expansion {}: {name} parent {parent} is not categorical",
                            exp.name
                        )))
                    }
                    None => {
                        return Err(CoreError::Invalid(format!(
                            "expansion {}: {name} parent {parent} does not exist",
                            exp.name
                        )))
                    }
                }
            }
            self.vars.push(VarDef {
                name: name.clone(),
                domain,
                default,
                condition,
                group: VarGroup::Fe,
            });
            added.push(name);
        }
        Ok(added)
    }

    /// Names of all variables, in order.
    pub fn var_names(&self) -> Vec<String> {
        self.vars.iter().map(|v| v.name.clone()).collect()
    }

    /// Default assignment over all variables (used to seed `set_var` before
    /// any evaluation).
    pub fn defaults(&self) -> HashMap<String, f64> {
        self.vars
            .iter()
            .map(|v| (v.name.clone(), v.default))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_sizes_are_increasing() {
        for task in [Task::Classification, Task::Regression] {
            let s = SpaceDef::tiered(task, SpaceTier::Small).len();
            let m = SpaceDef::tiered(task, SpaceTier::Medium).len();
            let l = SpaceDef::tiered(task, SpaceTier::Large).len();
            assert!(s < m && m < l, "{task:?}: {s} {m} {l}");
        }
    }

    #[test]
    fn large_space_has_many_vars() {
        let l = SpaceDef::tiered(Task::Classification, SpaceTier::Large);
        assert!(l.len() >= 50, "{}", l.len());
        assert_eq!(l.algorithms.len(), 13);
    }

    #[test]
    fn var_naming_convention() {
        let s = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        assert!(s.var("algorithm").is_some());
        assert!(s.var("alg:logistic:alpha").is_some());
        assert!(s.var("fe:rescaler").is_some());
        // HP variables are conditioned on the algorithm selector.
        let hp = s.var("alg:logistic:alpha").unwrap();
        assert_eq!(hp.condition.as_ref().unwrap().0, "algorithm");
    }

    #[test]
    fn compile_full_space_preserves_conditions() {
        let def = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let space = def
            .compile_subspace(&def.var_names(), &HashMap::new())
            .unwrap();
        assert_eq!(space.len(), def.len());
        // Sampling produces valid configurations with exactly one active
        // algorithm's HPs.
        let mut rng = volcanoml_data::rand_util::rng_from_seed(0);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            space.validate(&c).unwrap();
            let map = space.to_map(&c);
            let alg_idx = map["algorithm"] as usize;
            let alg = def.algorithms[alg_idx].name();
            for key in map.keys() {
                if let Some(rest) = key.strip_prefix("alg:") {
                    assert!(
                        rest.starts_with(alg),
                        "inactive algorithm param {key} for algorithm {alg}"
                    );
                }
            }
        }
    }

    #[test]
    fn compile_with_pinned_algorithm_drops_other_hps() {
        let def = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let mut fixed = HashMap::new();
        fixed.insert("algorithm".to_string(), 1.0); // random_forest
        let space = def
            .compile_subspace(&def.var_names(), &fixed)
            .unwrap();
        let names: Vec<&str> = space.params().iter().map(|p| p.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("alg:random_forest:")));
        assert!(!names.iter().any(|n| n.starts_with("alg:logistic:")));
        assert!(!names.contains(&"algorithm"));
    }

    #[test]
    fn compile_fe_only_subspace() {
        let def = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
        let fe_vars: Vec<String> = def
            .vars
            .iter()
            .filter(|v| v.group == VarGroup::Fe)
            .map(|v| v.name.clone())
            .collect();
        let space = def.compile_subspace(&fe_vars, &HashMap::new()).unwrap();
        assert_eq!(space.len(), fe_vars.len());
        // FE-internal conditions survive.
        let quantiles = space.index_of("fe:rescaler_quantiles").unwrap();
        assert!(space.params()[quantiles].condition.is_some());
    }

    #[test]
    fn enriched_space_contains_smote() {
        let fe_options = FeSpaceOptions {
            include_smote: true,
            embedding: None,
        };
        let def = SpaceDef::enriched(Task::Classification, fe_options);
        assert!(def.var("fe:smote_k").is_some());
        let base = SpaceDef::auto_sklearn_equivalent(Task::Classification);
        assert_eq!(def.len(), base.len() + 1);
    }

    #[test]
    fn fe_expansion_appends_vars_and_widens_in_place() {
        use volcanoml_fe::space::fe_expansions;
        let mut def = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let before_names = def.var_names();
        let expansions = fe_expansions(Task::Classification, &def.fe_options);
        // Stage 1: the dormant transform stage appears, everything existing
        // keeps its position.
        let added = def.apply_fe_expansion(&expansions[0]).unwrap();
        assert!(added.contains(&"fe:transform".to_string()));
        assert_eq!(&def.var_names()[..before_names.len()], &before_names[..]);
        let transform = def.var("fe:transform").unwrap();
        assert_eq!(transform.domain, Domain::Cat { n: 7 });
        // Stage 2: operator families widen `fe:transform` to 8 choices and
        // append the encoder family.
        let added2 = def.apply_fe_expansion(&expansions[1]).unwrap();
        assert!(added2.contains(&"fe:cat_encoder".to_string()));
        assert!(added2.contains(&"fe:binning_bins".to_string()));
        assert_eq!(def.var("fe:transform").unwrap().domain, Domain::Cat { n: 8 });
        // The grown space still compiles with valid conditions, and the new
        // children condition on their new parents.
        let space = def.compile_subspace(&def.var_names(), &HashMap::new()).unwrap();
        assert_eq!(space.len(), def.len());
        let bins = space.index_of("fe:binning_bins").unwrap();
        let cond = space.params()[bins].condition.as_ref().unwrap();
        assert_eq!(space.params()[cond.parent].name, "fe:transform");
        assert_eq!(cond.values, vec![7]);
        let mut rng = volcanoml_data::rand_util::rng_from_seed(1);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            space.validate(&c).unwrap();
        }
    }

    #[test]
    fn fully_grown_space_is_superset_of_fixed_space() {
        use volcanoml_fe::space::fe_expansions;
        let fixed = SpaceDef::tiered(Task::Classification, SpaceTier::Medium);
        let mut grown = SpaceDef::build(
            fixed.task,
            fixed.algorithms.clone(),
            volcanoml_fe::space::fe_param_defs_minimal(fixed.task),
            fixed.fe_options.clone(),
        )
        .unwrap();
        assert!(grown.len() < fixed.len(), "stage 0 must run fewer variables");
        for exp in fe_expansions(fixed.task, &fixed.fe_options) {
            grown.apply_fe_expansion(&exp).unwrap();
        }
        // Every fixed-space variable exists in the grown space with the same
        // default and condition; Cat domains may only be wider.
        for v in &fixed.vars {
            let g = grown.var(&v.name).unwrap_or_else(|| panic!("{} missing", v.name));
            assert_eq!(g.default.to_bits(), v.default.to_bits(), "{}", v.name);
            assert_eq!(g.condition, v.condition, "{}", v.name);
            match (&g.domain, &v.domain) {
                (Domain::Cat { n: gn }, Domain::Cat { n: fnn }) => assert!(gn >= fnn, "{}", v.name),
                (gd, fd) => assert_eq!(gd, fd, "{}", v.name),
            }
        }
        assert!(grown.len() > fixed.len(), "operator families extend the template");
    }

    #[test]
    fn fe_expansion_rejects_bad_shapes() {
        use volcanoml_fe::space::fe_expansions;
        let mut def = SpaceDef::tiered(Task::Classification, SpaceTier::Small);
        let expansions = fe_expansions(Task::Classification, &def.fe_options);
        // Applying the second expansion without the first fails: `transform`
        // (the widening target and `binning_bins` parent) does not exist yet.
        assert!(def.apply_fe_expansion(&expansions[1]).is_err());
        // Applying the same expansion twice fails on the duplicate name.
        def.apply_fe_expansion(&expansions[0]).unwrap();
        assert!(def.apply_fe_expansion(&expansions[0]).is_err());
    }

    #[test]
    fn build_rejects_task_mismatch() {
        let r = SpaceDef::build(
            Task::Regression,
            vec![AlgorithmKind::Logistic],
            vec![],
            FeSpaceOptions::default(),
        );
        assert!(r.is_err());
    }
}
